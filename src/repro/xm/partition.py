"""Partition control blocks.

A partition is the unit of both isolation pillars: it owns an address
space (spatial) and schedule slots (temporal).  XtratuM distinguishes
*normal* partitions from *system* partitions; only the latter may manage
the state of the system and of other partitions — the reason the paper
used EagleEye's FDIR system partition as the test partition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.sparc.memory import AddressSpace
from repro.xm.config import PartitionConfig


class PartitionState(enum.Enum):
    """Lifecycle states of a partition."""

    BOOT = "boot"
    NORMAL = "normal"
    IDLE = "idle"
    SUSPENDED = "suspended"
    HALTED = "halted"
    SHUTDOWN = "shutdown"

    def runnable(self) -> bool:
        """Whether the scheduler should give the partition its slots."""
        return self in (PartitionState.BOOT, PartitionState.NORMAL)


@dataclass
class VTimer:
    """A partition's virtual timer on one clock."""

    clock_id: int
    armed: bool = False
    next_expiry_us: int = 0
    interval_us: int = 0
    expirations: int = 0


@dataclass
class Partition:
    """Runtime state of one partition."""

    config: PartitionConfig
    address_space: AddressSpace
    state: PartitionState = PartitionState.BOOT
    app: Any = None
    reset_counter: int = 0
    reset_status: int = 0
    exec_clock_us: int = 0
    vtimers: dict[int, VTimer] = field(default_factory=dict)
    open_ports: dict[int, str] = field(default_factory=dict)
    virq_pending: int = 0
    virq_mask: int = 0
    halted_by: str | None = None

    @property
    def ident(self) -> int:
        """The configured partition id."""
        return self.config.ident

    @property
    def name(self) -> str:
        """The configured partition name."""
        return self.config.name

    @property
    def is_system(self) -> bool:
        """Whether the partition holds system privileges."""
        return self.config.system

    def set_state(self, state: PartitionState, reason: str | None = None) -> None:
        """Transition the partition; remembers who halted it."""
        self.state = state
        if state in (PartitionState.HALTED, PartitionState.SHUTDOWN):
            self.halted_by = reason or "unspecified"

    def reset(self, warm: bool, status: int = 0) -> None:
        """Partition-level reset: counters bump, timers and ports clear."""
        self.reset_counter += 1
        self.reset_status = status
        self.state = PartitionState.BOOT
        self.vtimers.clear()
        self.open_ports.clear()
        self.virq_pending = 0
        self.virq_mask = 0
        self.halted_by = None
        if not warm:
            self.exec_clock_us = 0

    def timer(self, clock_id: int) -> VTimer:
        """The partition's timer on the given clock, created on demand."""
        if clock_id not in self.vtimers:
            self.vtimers[clock_id] = VTimer(clock_id)
        return self.vtimers[clock_id]

    def owns_area(self, address: int, size: int = 1) -> bool:
        """Whether the byte range lies inside one of its memory areas."""
        for area in self.config.memory_areas:
            if area.start <= address and address + size <= area.end:
                return True
        return False
