"""XtratuM hypercall return codes.

Negative values are errors; ``XM_OK`` (0) is success.  Some services
return non-negative descriptors (port ids) instead of ``XM_OK``.
"""

from __future__ import annotations

XM_OK = 0
XM_NO_ACTION = -1
XM_UNKNOWN_HYPERCALL = -2
XM_INVALID_PARAM = -3
XM_PERM_ERROR = -4
XM_INVALID_CONFIG = -5
XM_INVALID_MODE = -6
XM_NOT_AVAILABLE = -7
XM_OP_NOT_ALLOWED = -8
XM_MULTICALL_ERROR = -9
XM_NO_SERVICE = -10
XM_NO_SPACE = -11
XM_INVALID_ADDRESS = -12

#: Name table for logs and reports.
NAMES: dict[int, str] = {
    XM_OK: "XM_OK",
    XM_NO_ACTION: "XM_NO_ACTION",
    XM_UNKNOWN_HYPERCALL: "XM_UNKNOWN_HYPERCALL",
    XM_INVALID_PARAM: "XM_INVALID_PARAM",
    XM_PERM_ERROR: "XM_PERM_ERROR",
    XM_INVALID_CONFIG: "XM_INVALID_CONFIG",
    XM_INVALID_MODE: "XM_INVALID_MODE",
    XM_NOT_AVAILABLE: "XM_NOT_AVAILABLE",
    XM_OP_NOT_ALLOWED: "XM_OP_NOT_ALLOWED",
    XM_MULTICALL_ERROR: "XM_MULTICALL_ERROR",
    XM_NO_SERVICE: "XM_NO_SERVICE",
    XM_NO_SPACE: "XM_NO_SPACE",
    XM_INVALID_ADDRESS: "XM_INVALID_ADDRESS",
}


def name_of(code: int) -> str:
    """Symbolic name of a return code (descriptors print as themselves)."""
    if code in NAMES:
        return NAMES[code]
    if code > 0:
        return f"DESCRIPTOR({code})"
    return f"UNKNOWN_RC({code})"


def is_error(code: int) -> bool:
    """Whether the code signals an error."""
    return code < 0


# Reset modes (XM_reset_system / XM_reset_partition).
XM_COLD_RESET = 0
XM_WARM_RESET = 1

# Clock identifiers.
XM_HW_CLOCK = 0
XM_EXEC_CLOCK = 1

# Port directions.
XM_SOURCE_PORT = 0
XM_DESTINATION_PORT = 1

# Self partition id alias.
XM_PARTITION_SELF = -1
