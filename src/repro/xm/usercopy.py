"""Validated user-memory accessors.

Robust hypercall services never touch a partition-supplied pointer
directly: they go through these helpers, which validate the whole range
against the *calling partition's* address space and convert any fault
into a clean ``None``/``False`` the service maps to ``XM_INVALID_PARAM``.

The paper's ``XM_multicall`` defect is exactly a service that skipped
this layer — see :mod:`repro.xm.svc_misc`.
"""

from __future__ import annotations

from repro.sparc.memory import AddressSpace, MemoryFault


def copy_from_user(space: AddressSpace, address: int, size: int) -> bytes | None:
    """Read ``size`` bytes from the partition; None when invalid."""
    if size < 0:
        return None
    if size == 0:
        return b""
    try:
        return space.read(address, size)
    except MemoryFault:
        return None


def copy_to_user(space: AddressSpace, address: int, data: bytes) -> bool:
    """Write into the partition; False when the range is invalid."""
    try:
        space.write(address, data)
    except MemoryFault:
        return False
    return True


def read_user_string(space: AddressSpace, address: int, max_len: int = 64) -> str | None:
    """Read a bounded NUL-terminated ASCII string; None when invalid.

    A string that is unterminated within ``max_len`` bytes is treated as
    invalid, as the real kernel bounds identifier lengths.
    """
    try:
        raw = space.read_cstring(address, max_len + 1)
    except MemoryFault:
        return None
    if len(raw) > max_len:
        return None
    try:
        return raw.decode("ascii")
    except UnicodeDecodeError:
        return None
