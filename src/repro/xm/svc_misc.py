"""Miscellaneous hypercalls, including the vulnerable ``XM_multicall``.

``XM_multicall(void *startAddr, void *endAddr)`` packs several hypercalls
in a buffer and executes them as a batch.  The kernel under test (3.4.0)
carries the paper's last three findings:

- **XM-MC-1/2** — neither pointer is validated: the kernel touches the
  first word at ``startAddr`` and the last word at ``endAddr - 4``
  directly, so an invalid pointer raises an unhandled data-access
  exception in kernel context (the HM then halts the partition).
- **XM-MC-3** — batch execution is not preempted: a large batch runs past
  the partition's slot, breaking temporal isolation.

The revised kernel removed the service (``XM_NO_SERVICE``).

Batch wire format (32-bit big-endian words)::

    [ hypercall_number, nargs, arg0 … argN-1 ] … repeated …
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.xm import rc
from repro.xm.api import hypercall_by_number
from repro.xm.partition import Partition
from repro.xm.usercopy import copy_from_user, copy_to_user, read_user_string

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel

#: Sane bound on per-entry argument count inside a batch.
MAX_BATCH_ARGS = 8
#: Bound on console writes per call.
MAX_CONSOLE_WRITE = 1024

#: ``entity`` values for ``XM_get_gid_by_name``.
ENTITY_PARTITION = 0
ENTITY_CHANNEL = 1


class MiscManager:
    """Owner of the miscellaneous services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.batches_executed = 0

    # -- multicall -------------------------------------------------------------

    def svc_multicall(self, caller: Partition, start_addr: int, end_addr: int) -> int:
        """``XM_multicall(void *startAddr, void *endAddr)``."""
        kernel = self.kernel
        if not kernel.features.multicall_available:
            return rc.XM_NO_SERVICE
        # Defect XM-MC-1/2: the 3.4.0 kernel probes both ends of the
        # batch with *kernel* rights and no validation; a bad pointer
        # faults right here, in kernel context.
        kspace = kernel.kernel_space
        kspace.read_u32(start_addr & ~0x3)
        kspace.read_u32((end_addr - 4) & 0xFFFFFFFF & ~0x3)
        executed = 0
        addr = start_addr
        while addr + 8 <= end_addr:
            number = kspace.read_u32(addr)
            nargs = kspace.read_u32(addr + 4)
            if nargs > MAX_BATCH_ARGS:
                return rc.XM_MULTICALL_ERROR
            if addr + 8 + 4 * nargs > end_addr:
                return rc.XM_MULTICALL_ERROR
            args = tuple(kspace.read_u32(addr + 8 + 4 * i) for i in range(nargs))
            hdef = hypercall_by_number(number)
            if hdef is None or hdef.name == "XM_multicall":
                # Unknown or recursive entries are skipped with an error
                # note; the batch itself continues (defect XM-MC-3: no
                # preemption point either way).
                kernel.sched.consume(kernel.HYPERCALL_COST_US)
            else:
                kernel.hypercall(caller, hdef.name, args)
            executed += 1
            addr += 8 + 4 * nargs
        self.batches_executed += 1
        return executed

    # -- console ------------------------------------------------------------------

    def svc_write_console(self, caller: Partition, buffer_ptr: int, length: int) -> int:
        """``XM_write_console(char *buffer, xmSize_t length)``."""
        if length == 0:
            return 0
        if length > MAX_CONSOLE_WRITE:
            return rc.XM_INVALID_PARAM
        data = copy_from_user(caller.address_space, buffer_ptr, length)
        if data is None:
            return rc.XM_INVALID_PARAM
        text = data.decode("ascii", errors="replace")
        self.kernel.machine.uart.write(text, self.kernel.sim.now_us, source=caller.name)
        return length

    # -- name resolution --------------------------------------------------------------

    def svc_get_gid_by_name(self, caller: Partition, name_ptr: int, entity: int) -> int:
        """``XM_get_gid_by_name(char *name, xm_u32_t entity)``.

        Returns the global id of a partition (entity 0) or channel
        (entity 1) by name.
        """
        name = read_user_string(caller.address_space, name_ptr)
        if name is None:
            return rc.XM_INVALID_PARAM
        if entity == ENTITY_PARTITION:
            for part in self.kernel.config.partitions:
                if part.name == name:
                    return part.ident
            return rc.XM_INVALID_CONFIG
        if entity == ENTITY_CHANNEL:
            for index, chan in enumerate(self.kernel.config.channels):
                if chan.name == name:
                    return index
            return rc.XM_INVALID_CONFIG
        return rc.XM_INVALID_PARAM

    # -- info services ------------------------------------------------------------------

    def svc_get_hpv_info(self, caller: Partition, info_ptr: int) -> int:
        """``XM_get_hpv_info(xmHpvInfo_t *info)``: hypervisor build info."""
        numeric = self.kernel.version.split("-")[0]
        major, minor, patch = (int(x) for x in numeric.split("."))
        info = struct.pack(
            ">IIII",
            major,
            minor,
            patch,
            len(self.kernel.partitions),
        )
        if not copy_to_user(caller.address_space, info_ptr, info):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    def svc_params_get_pct(self, caller: Partition, pct_ptr: int) -> int:
        """``XM_params_get_pct(xmAddress_t *pct)``.

        Writes the address of the caller's partition control table (the
        base of its first memory area in this model).
        """
        if not caller.config.memory_areas:
            return rc.XM_INVALID_CONFIG
        base = caller.config.memory_areas[0].start
        if not copy_to_user(caller.address_space, pct_ptr, struct.pack(">I", base)):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK
