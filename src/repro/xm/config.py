"""XM_CF system configuration.

XtratuM is statically configured: partitions, their memory areas and I/O
grants, communication channels/ports, and the cyclic scheduling plans are
all fixed at integration time.  :class:`XMConfig` is that configuration;
:meth:`XMConfig.validate` enforces the integration rules the real
configuration compiler enforces (non-overlapping memory, slots inside the
major frame, port/channel consistency).

The configuration can round-trip through an XM_CF-like XML document via
:func:`config_to_xml` / :func:`config_from_xml`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.sparc.memory import Access


class ConfigError(ValueError):
    """The configuration violates an integration rule."""


@dataclass(frozen=True)
class MemoryAreaConfig:
    """One memory area assigned to a partition (or the kernel)."""

    name: str
    start: int
    size: int
    rights: Access = Access.RW

    @property
    def end(self) -> int:
        """First address past the area."""
        return self.start + self.size


@dataclass(frozen=True)
class PortConfig:
    """One communication port of a partition."""

    name: str
    channel: str
    direction: int  # rc.XM_SOURCE_PORT or rc.XM_DESTINATION_PORT


@dataclass(frozen=True)
class ChannelConfig:
    """One inter-partition channel.

    ``kind`` is ``"sampling"`` or ``"queuing"``; ``depth`` applies to
    queuing channels, ``refresh_us`` to sampling channels.
    """

    name: str
    kind: str
    max_message_size: int
    depth: int = 1
    refresh_us: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("sampling", "queuing"):
            raise ConfigError(f"channel {self.name}: bad kind {self.kind!r}")
        if self.max_message_size <= 0:
            raise ConfigError(f"channel {self.name}: bad max message size")
        if self.kind == "queuing" and self.depth <= 0:
            raise ConfigError(f"channel {self.name}: queuing depth must be positive")


@dataclass(frozen=True)
class PartitionConfig:
    """Static description of one partition."""

    ident: int
    name: str
    system: bool = False
    memory_areas: tuple[MemoryAreaConfig, ...] = ()
    ports: tuple[PortConfig, ...] = ()
    io_grants: tuple[str, ...] = ()
    console: bool = True


@dataclass(frozen=True)
class SlotConfig:
    """One slot of a cyclic plan: a partition window inside the frame."""

    slot_id: int
    partition_id: int
    start_us: int
    duration_us: int

    @property
    def end_us(self) -> int:
        """First microsecond past the slot."""
        return self.start_us + self.duration_us


@dataclass(frozen=True)
class PlanConfig:
    """One cyclic scheduling plan."""

    ident: int
    major_frame_us: int
    slots: tuple[SlotConfig, ...]


@dataclass
class XMConfig:
    """The full system configuration."""

    partitions: list[PartitionConfig] = field(default_factory=list)
    channels: list[ChannelConfig] = field(default_factory=list)
    plans: list[PlanConfig] = field(default_factory=list)
    kernel_areas: list[MemoryAreaConfig] = field(default_factory=list)
    hm_actions: dict[str, str] = field(default_factory=dict)

    # -- lookups -----------------------------------------------------------

    def partition(self, ident: int) -> PartitionConfig:
        """Partition config by id; ConfigError when absent."""
        for part in self.partitions:
            if part.ident == ident:
                return part
        raise ConfigError(f"no partition with id {ident}")

    def has_partition(self, ident: int) -> bool:
        """Whether a partition id exists."""
        return any(p.ident == ident for p in self.partitions)

    def channel(self, name: str) -> ChannelConfig:
        """Channel config by name; ConfigError when absent."""
        for chan in self.channels:
            if chan.name == name:
                return chan
        raise ConfigError(f"no channel named {name!r}")

    def plan(self, ident: int) -> PlanConfig:
        """Plan config by id; ConfigError when absent."""
        for plan in self.plans:
            if plan.ident == ident:
                return plan
        raise ConfigError(f"no plan with id {ident}")

    def has_plan(self, ident: int) -> bool:
        """Whether a plan id exists."""
        return any(p.ident == ident for p in self.plans)

    def system_partitions(self) -> list[PartitionConfig]:
        """Partitions with system privileges."""
        return [p for p in self.partitions if p.system]

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Enforce integration rules; raises ConfigError on violation."""
        if not self.partitions:
            raise ConfigError("a TSP system needs at least one partition")
        if not self.plans:
            raise ConfigError("a TSP system needs at least one scheduling plan")

        ids = [p.ident for p in self.partitions]
        if len(set(ids)) != len(ids):
            raise ConfigError("duplicate partition ids")
        names = [p.name for p in self.partitions]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate partition names")

        self._validate_memory()
        self._validate_plans()
        self._validate_ports()

    def _validate_memory(self) -> None:
        all_areas: list[tuple[str, MemoryAreaConfig]] = [
            ("kernel", a) for a in self.kernel_areas
        ]
        for part in self.partitions:
            if not part.memory_areas:
                raise ConfigError(f"partition {part.name}: no memory areas")
            all_areas.extend((part.name, a) for a in part.memory_areas)
        for i, (owner_a, a) in enumerate(all_areas):
            for owner_b, b in all_areas[i + 1 :]:
                if a.start < b.end and b.start < a.end:
                    raise ConfigError(
                        f"memory overlap: {owner_a}/{a.name} and {owner_b}/{b.name}"
                    )

    def _validate_plans(self) -> None:
        plan_ids = [p.ident for p in self.plans]
        if len(set(plan_ids)) != len(plan_ids):
            raise ConfigError("duplicate plan ids")
        for plan in self.plans:
            if plan.major_frame_us <= 0:
                raise ConfigError(f"plan {plan.ident}: non-positive major frame")
            prev_end = 0
            for slot in sorted(plan.slots, key=lambda s: s.start_us):
                if slot.duration_us <= 0:
                    raise ConfigError(f"plan {plan.ident}: empty slot {slot.slot_id}")
                if not self.has_partition(slot.partition_id):
                    raise ConfigError(
                        f"plan {plan.ident}: slot {slot.slot_id} references "
                        f"unknown partition {slot.partition_id}"
                    )
                if slot.start_us < prev_end:
                    raise ConfigError(f"plan {plan.ident}: overlapping slots")
                if slot.end_us > plan.major_frame_us:
                    raise ConfigError(
                        f"plan {plan.ident}: slot {slot.slot_id} exceeds major frame"
                    )
                prev_end = slot.end_us

    def _validate_ports(self) -> None:
        for part in self.partitions:
            port_names = [p.name for p in part.ports]
            if len(set(port_names)) != len(port_names):
                raise ConfigError(f"partition {part.name}: duplicate port names")
            for port in part.ports:
                chan = self.channel(port.channel)  # raises when missing
                if port.direction not in (0, 1):
                    raise ConfigError(
                        f"partition {part.name}: port {port.name} bad direction"
                    )
                del chan


# -- XML round trip ----------------------------------------------------------


def config_to_xml(config: XMConfig) -> str:
    """Serialise to an XM_CF-like XML document."""
    root = ET.Element("SystemDescription")
    hw = ET.SubElement(root, "HwDescription")
    for area in config.kernel_areas:
        ET.SubElement(
            hw,
            "Region",
            name=area.name,
            start=f"{area.start:#x}",
            size=str(area.size),
        )
    parts = ET.SubElement(root, "PartitionTable")
    for part in config.partitions:
        pel = ET.SubElement(
            parts,
            "Partition",
            id=str(part.ident),
            name=part.name,
            flags="system" if part.system else "none",
            console="Uart" if part.console else "None",
        )
        mem = ET.SubElement(pel, "PhysicalMemoryAreas")
        for area in part.memory_areas:
            ET.SubElement(
                mem,
                "Area",
                name=area.name,
                start=f"{area.start:#x}",
                size=str(area.size),
                flags=str(area.rights.value),
            )
        ports = ET.SubElement(pel, "PortTable")
        for port in part.ports:
            ET.SubElement(
                ports,
                "Port",
                name=port.name,
                channel=port.channel,
                direction="source" if port.direction == 0 else "destination",
            )
        io = ET.SubElement(pel, "IoPorts")
        for grant in part.io_grants:
            ET.SubElement(io, "Device", name=grant)
    chans = ET.SubElement(root, "Channels")
    for chan in config.channels:
        ET.SubElement(
            chans,
            "Channel",
            name=chan.name,
            kind=chan.kind,
            maxMessageSize=str(chan.max_message_size),
            depth=str(chan.depth),
            refreshUs=str(chan.refresh_us),
        )
    hm = ET.SubElement(root, "HealthMonitor")
    for event_name, action_name in config.hm_actions.items():
        ET.SubElement(hm, "Event", name=event_name, action=action_name)
    sched = ET.SubElement(root, "CyclicPlanTable")
    for plan in config.plans:
        plel = ET.SubElement(
            sched, "Plan", id=str(plan.ident), majorFrame=str(plan.major_frame_us)
        )
        for slot in plan.slots:
            ET.SubElement(
                plel,
                "Slot",
                id=str(slot.slot_id),
                partitionId=str(slot.partition_id),
                start=str(slot.start_us),
                duration=str(slot.duration_us),
            )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def config_from_xml(text: str) -> XMConfig:
    """Parse an XM_CF-like XML document back into an :class:`XMConfig`."""
    root = ET.fromstring(text)
    config = XMConfig()
    hw = root.find("HwDescription")
    if hw is not None:
        for region in hw.findall("Region"):
            config.kernel_areas.append(
                MemoryAreaConfig(
                    name=region.get("name", "region"),
                    start=int(region.get("start", "0"), 0),
                    size=int(region.get("size", "0")),
                )
            )
    parts = root.find("PartitionTable")
    if parts is not None:
        for pel in parts.findall("Partition"):
            areas = tuple(
                MemoryAreaConfig(
                    name=a.get("name", "area"),
                    start=int(a.get("start", "0"), 0),
                    size=int(a.get("size", "0")),
                    rights=Access(int(a.get("flags", str(Access.RW.value)))),
                )
                for a in pel.findall("PhysicalMemoryAreas/Area")
            )
            ports = tuple(
                PortConfig(
                    name=p.get("name", "port"),
                    channel=p.get("channel", ""),
                    direction=0 if p.get("direction") == "source" else 1,
                )
                for p in pel.findall("PortTable/Port")
            )
            grants = tuple(
                d.get("name", "") for d in pel.findall("IoPorts/Device")
            )
            config.partitions.append(
                PartitionConfig(
                    ident=int(pel.get("id", "0")),
                    name=pel.get("name", "partition"),
                    system=pel.get("flags") == "system",
                    memory_areas=areas,
                    ports=ports,
                    io_grants=grants,
                    console=pel.get("console") != "None",
                )
            )
    chans = root.find("Channels")
    if chans is not None:
        for cel in chans.findall("Channel"):
            config.channels.append(
                ChannelConfig(
                    name=cel.get("name", "channel"),
                    kind=cel.get("kind", "sampling"),
                    max_message_size=int(cel.get("maxMessageSize", "1")),
                    depth=int(cel.get("depth", "1")),
                    refresh_us=int(cel.get("refreshUs", "0")),
                )
            )
    hm = root.find("HealthMonitor")
    if hm is not None:
        for event in hm.findall("Event"):
            name = event.get("name")
            action = event.get("action")
            if name and action:
                config.hm_actions[name] = action
    sched = root.find("CyclicPlanTable")
    if sched is not None:
        for plel in sched.findall("Plan"):
            slots = tuple(
                SlotConfig(
                    slot_id=int(s.get("id", "0")),
                    partition_id=int(s.get("partitionId", "0")),
                    start_us=int(s.get("start", "0")),
                    duration_us=int(s.get("duration", "0")),
                )
                for s in plel.findall("Slot")
            )
            config.plans.append(
                PlanConfig(
                    ident=int(plel.get("id", "0")),
                    major_frame_us=int(plel.get("majorFrame", "0")),
                    slots=slots,
                )
            )
    return config
