"""Health Monitor Management hypercalls (system partitions only)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xm import rc
from repro.xm.hm import HmEvent
from repro.xm.partition import Partition
from repro.xm.status import XmHmLogEntry, XmHmStatus
from repro.xm.usercopy import copy_from_user, copy_to_user

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel

#: Upper bound on one hm_read batch.
MAX_HM_READ = 64


class HmManager:
    """Owner of the HM log services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def svc_hm_status(self, caller: Partition, status_ptr: int) -> int:
        """``XM_hm_status(xmHmStatus_t *status)``."""
        hm = self.kernel.hm
        status = XmHmStatus(
            total_events=hm.total_events,
            unread_events=len(hm.unread()),
            lost_events=hm.lost_events,
        )
        if not copy_to_user(caller.address_space, status_ptr, status.pack()):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    def svc_hm_read(self, caller: Partition, log_ptr: int, no_logs: int) -> int:
        """``XM_hm_read(xmHmLog_t *log, xm_u32_t noLogs)``.

        Returns the number of records copied out (0 when none unread).
        """
        if no_logs == 0 or no_logs > MAX_HM_READ:
            return rc.XM_INVALID_PARAM
        hm = self.kernel.hm
        unread = hm.unread()
        count = min(no_logs, len(unread))
        data = b"".join(r.to_log_entry().pack() for r in unread[:count])
        if count == 0:
            # Validate the buffer anyway: a single entry must fit.
            if not copy_to_user(
                caller.address_space, log_ptr, bytes(XmHmLogEntry.SIZE)
            ):
                return rc.XM_INVALID_PARAM
            return 0
        if not copy_to_user(caller.address_space, log_ptr, data):
            return rc.XM_INVALID_PARAM
        hm.consume(count)
        return count

    def svc_hm_seek(self, caller: Partition, offset: int, whence: int) -> int:
        """``XM_hm_seek(xm_u32_t offset, xm_u32_t whence)``."""
        result = self.kernel.hm.seek(offset, whence)
        if result is None:
            if self.kernel.features.hm_seek_wrong_error_code:
                # Synthetic 3.4.0-beta defect: the documented code is
                # XM_INVALID_PARAM; the beta reports XM_NO_ACTION — a
                # Hindering failure on the CRASH scale.
                return rc.XM_NO_ACTION
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    def svc_hm_reset_events(self, caller: Partition) -> int:
        """``XM_hm_reset_events(void)`` — parameter-less, out of scope."""
        self.kernel.hm.clear()
        return rc.XM_OK

    def svc_hm_raise_event(self, caller: Partition, event_ptr: int) -> int:
        """``XM_hm_raise_event(xmHmLog_t *event)``.

        A system partition can inject an HM event (e.g. FDIR escalation);
        excluded from campaign scope as a struct-input service.
        """
        raw = copy_from_user(caller.address_space, event_ptr, XmHmLogEntry.SIZE)
        if raw is None:
            return rc.XM_INVALID_PARAM
        entry = XmHmLogEntry.unpack(raw)
        try:
            event = HmEvent(entry.event_code)
        except ValueError:
            return rc.XM_INVALID_PARAM
        self.kernel.hm_raise(
            event,
            caller.ident,
            detail="raised via XM_hm_raise_event",
            payload=entry.payload,
        )
        return rc.XM_OK
