"""Behavioural model of the XtratuM separation kernel for LEON3.

XtratuM is a bare-metal hypervisor providing time and space partitioning:
a cyclic scheduler (temporal isolation), per-partition memory maps
(spatial isolation), inter-partition communication ports, a health
monitor, tracing, clocks/timers and interrupt management, all exposed to
partitions through hypercalls.

This package models the kernel at the hypercall/behaviour level — the
level the paper's black-box data-type fault model exercises.  The 61
hypercalls of Table III are registered in :mod:`repro.xm.api`; the
historical robustness defects the paper uncovered are implemented
verbatim and gated by kernel version in :mod:`repro.xm.vulns`
(``3.4.0`` = the vulnerable kernel under test, ``3.4.1`` = the revised
kernel the XM development team produced after the campaign).
"""

from repro.xm import rc
from repro.xm.api import (
    HYPERCALL_TABLE,
    Category,
    HypercallDef,
    ParamDef,
    hypercall_by_name,
)
from repro.xm.config import (
    ChannelConfig,
    MemoryAreaConfig,
    PartitionConfig,
    PlanConfig,
    PortConfig,
    SlotConfig,
    XMConfig,
)
from repro.xm.kernel import Kernel, KernelPanic, NoReturnFromHypercall
from repro.xm.partition import Partition, PartitionState
from repro.xm.vulns import KNOWN_VULNERABILITIES, KernelFeatures, Vulnerability

__all__ = [
    "rc",
    "HYPERCALL_TABLE",
    "Category",
    "HypercallDef",
    "ParamDef",
    "hypercall_by_name",
    "ChannelConfig",
    "MemoryAreaConfig",
    "PartitionConfig",
    "PlanConfig",
    "PortConfig",
    "SlotConfig",
    "XMConfig",
    "Kernel",
    "KernelPanic",
    "NoReturnFromHypercall",
    "Partition",
    "PartitionState",
    "KNOWN_VULNERABILITIES",
    "KernelFeatures",
    "Vulnerability",
]
