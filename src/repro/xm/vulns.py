"""Known defect registry and kernel feature gating.

The paper's campaign ran against the then-current XtratuM for LEON3 and
uncovered nine robustness issues in three hypercalls; the paper also
records how the XM development team revised each service afterwards.
Both behaviours are implemented: :class:`KernelFeatures` selects between
the *vulnerable* kernel (version ``3.4.0``, as tested) and the *revised*
kernel (``3.4.1``).  The registry below documents each defect and is used
by the issue-matching benches to check that the campaign rediscovers all
of them and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The version of the kernel the paper tested (defects present).
VULNERABLE_VERSION = "3.4.0"
#: The revised kernel after the campaign's findings were fixed.
FIXED_VERSION = "3.4.1"
#: A synthetic pre-release with one additional seeded defect: an
#: incorrect error code (XM_NO_ACTION where XM_INVALID_PARAM is
#: documented) from ``XM_hm_seek`` on a bad whence/offset.  The paper found
#: no Hindering failures and left their systematic detection as future
#: work; this variant exists so the oracle's Hindering path can be
#: demonstrated end to end (see DESIGN.md).
BETA_VERSION = "3.4.0-beta"


@dataclass(frozen=True)
class KernelFeatures:
    """Validation behaviour toggles, derived from the kernel version.

    Attributes correspond one-to-one to the fixes the paper reports:

    - ``reset_system_mode_check`` — ``XM_reset_system`` rejects modes
      other than cold(0)/warm(1) with ``XM_INVALID_PARAM``.
    - ``set_timer_min_interval_us`` — minimum accepted timer interval;
      the revised kernel rejects intervals under 50 µs.
    - ``set_timer_negative_check`` — negative intervals rejected.
    - ``multicall_available`` — the revised kernel removed the service.
    """

    version: str
    reset_system_mode_check: bool
    set_timer_min_interval_us: int
    set_timer_negative_check: bool
    multicall_available: bool
    hm_seek_wrong_error_code: bool = False

    @classmethod
    def for_version(cls, version: str) -> "KernelFeatures":
        """Feature set for a kernel version string."""
        if version == VULNERABLE_VERSION:
            return cls(
                version=version,
                reset_system_mode_check=False,
                set_timer_min_interval_us=0,
                set_timer_negative_check=False,
                multicall_available=True,
            )
        if version == BETA_VERSION:
            return cls(
                version=version,
                reset_system_mode_check=False,
                set_timer_min_interval_us=0,
                set_timer_negative_check=False,
                multicall_available=True,
                hm_seek_wrong_error_code=True,
            )
        if version == FIXED_VERSION:
            return cls(
                version=version,
                reset_system_mode_check=True,
                set_timer_min_interval_us=50,
                set_timer_negative_check=True,
                multicall_available=False,
            )
        raise ValueError(f"unknown kernel version: {version!r}")

    @property
    def is_vulnerable(self) -> bool:
        """True for the kernel as the paper tested it."""
        return self.version == VULNERABLE_VERSION


@dataclass(frozen=True)
class Vulnerability:
    """One documented defect (ground truth for the benches)."""

    ident: str
    hypercall: str
    category: str
    summary: str
    crash_class: str
    paper_fix: str


#: Ground truth: the nine issues of Section IV, in paper order.
KNOWN_VULNERABILITIES: tuple[Vulnerability, ...] = (
    Vulnerability(
        ident="XM-RS-1",
        hypercall="XM_reset_system",
        category="System Management",
        summary="XM_reset_system(2) performs an unexpected kernel cold reset "
        "instead of returning XM_INVALID_PARAM",
        crash_class="Restart",
        paper_fix="mode parameter now validated; XM_INVALID_PARAM for invalid modes",
    ),
    Vulnerability(
        ident="XM-RS-2",
        hypercall="XM_reset_system",
        category="System Management",
        summary="XM_reset_system(16) performs an unexpected kernel cold reset "
        "instead of returning XM_INVALID_PARAM",
        crash_class="Restart",
        paper_fix="mode parameter now validated; XM_INVALID_PARAM for invalid modes",
    ),
    Vulnerability(
        ident="XM-RS-3",
        hypercall="XM_reset_system",
        category="System Management",
        summary="XM_reset_system(4294967295) performs an unexpected kernel warm "
        "reset instead of returning XM_INVALID_PARAM",
        crash_class="Restart",
        paper_fix="mode parameter now validated; XM_INVALID_PARAM for invalid modes",
    ),
    Vulnerability(
        ident="XM-ST-1",
        hypercall="XM_set_timer",
        category="Time Management",
        summary="XM_set_timer on the HW clock with a 1 us interval re-enters the "
        "timer handler recursively (next expiry always already past), "
        "overflowing the kernel stack: system fatal error, XM halt",
        crash_class="Catastrophic",
        paper_fix="minimum interval defined; XM_INVALID_PARAM under 50 us",
    ),
    Vulnerability(
        ident="XM-ST-2",
        hypercall="XM_set_timer",
        category="Time Management",
        summary="XM_set_timer on the execution clock with a 1 us interval races "
        "with the timer trap and crashes the TSIM simulator itself",
        crash_class="Catastrophic",
        paper_fix="minimum interval defined; XM_INVALID_PARAM under 50 us",
    ),
    Vulnerability(
        ident="XM-ST-3",
        hypercall="XM_set_timer",
        category="Time Management",
        summary="XM_set_timer accepts a negative interval (LLONG_MIN) and returns "
        "success where XM_INVALID_PARAM is expected",
        crash_class="Silent",
        paper_fix="interval parameter now validated; XM_INVALID_PARAM for "
        "invalid (negative) intervals",
    ),
    Vulnerability(
        ident="XM-MC-1",
        hypercall="XM_multicall",
        category="Miscellaneous",
        summary="XM_multicall with an invalid startAddr pointer is executed "
        "without validation, causing unhandled data access exceptions",
        crash_class="Abort",
        paper_fix="service temporarily removed",
    ),
    Vulnerability(
        ident="XM-MC-2",
        hypercall="XM_multicall",
        category="Miscellaneous",
        summary="XM_multicall with an invalid endAddr pointer is executed "
        "without validation, causing unhandled data access exceptions",
        crash_class="Abort",
        paper_fix="service temporarily removed",
    ),
    Vulnerability(
        ident="XM-MC-3",
        hypercall="XM_multicall",
        category="Miscellaneous",
        summary="a large XM_multicall batch executes past the partition's slot, "
        "preventing nominal context switching: temporal isolation break",
        crash_class="Catastrophic",
        paper_fix="service temporarily removed",
    ),
)


def vulnerabilities_for(hypercall: str) -> tuple[Vulnerability, ...]:
    """Ground-truth defects attached to one hypercall."""
    return tuple(v for v in KNOWN_VULNERABILITIES if v.hypercall == hypercall)
