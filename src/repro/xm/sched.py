"""The cyclic scheduler: XtratuM's temporal-isolation pillar.

Partitions execute inside fixed slots of a cyclic plan; at any instant at
most one partition owns the CPU.  The scheduler runs each slot as a
discrete event, accounts the virtual CPU time the partition consumes
(application work plus hypercall costs), and raises a Health Monitor
``TEMPORAL_VIOLATION`` when a slot is overrun — which is precisely how
the paper's ``XM_multicall`` temporal-isolation break becomes observable.

Plan switches requested via ``XM_switch_sched_plan`` take effect at the
next major-frame boundary, as in the real kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

from repro.sparc.memory import MemoryFault
from repro.tsim.delta import Fields, capture_fields, restore_fields
from repro.xm.config import PlanConfig, SlotConfig
from repro.xm.hm import HmEvent
from repro.xm.partition import PartitionState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel


class SlotContext:
    """Execution context handed to a partition application for one slot.

    Slotted and flat: one is built for every slot of every frame, so the
    scheduler hands it the partition control block it already resolved
    instead of a property re-doing the ``kernel.partitions`` lookup on
    each access.
    """

    __slots__ = ("kernel", "partition", "partition_id", "slot", "start_us")

    def __init__(
        self,
        kernel: "Kernel",
        partition,  # noqa: ANN001 - avoids circular import in hints
        slot: SlotConfig,
        start_us: int,
    ) -> None:
        self.kernel = kernel
        #: The running partition's control block.
        self.partition = partition
        self.partition_id = partition.ident
        self.slot = slot
        self.start_us = start_us

    @property
    def now_us(self) -> int:
        """Virtual time at slot start."""
        return self.start_us

    def consume(self, us: int) -> None:
        """Model the application burning CPU time."""
        self.kernel.sched.consume(us)

    def hypercall(self, name: str, *args: int):  # noqa: ANN201
        """Invoke a hypercall as this partition."""
        return self.kernel.hypercall(self.partition, name, args)

    def console(self, text: str) -> None:
        """Partition-level console output (via the UART)."""
        self.kernel.machine.uart.write(
            text + "\n", self.kernel.sim.now_us, source=self.partition.name
        )


@dataclass
class CyclicScheduler:
    """Cyclic plan execution over the simulator's event queue."""

    kernel: "Kernel"
    current_plan_id: int = 0
    requested_plan_id: int | None = None
    major_frame_count: int = 0
    current_slot: SlotConfig | None = None
    slot_consumed_us: int = 0
    overruns: list[tuple[int, int, int]] = field(default_factory=list)
    #: Per-plan prebuilt (offset, callback, name) slot events — the slot
    #: callbacks and event names are constant per plan, so they are built
    #: once instead of per major frame.  Never snapshotted.
    _frame_cache: dict[int, list] = field(
        default_factory=dict, repr=False, compare=False
    )

    #: Frame-cache entries are partials over *this* scheduler and the
    #: (frozen) slot configs — still valid after an in-place reset.
    __delta_skip__ = ("_frame_cache",)

    def __getstate__(self) -> dict:
        """Pickle without the frame cache (rebuilt on demand)."""
        state = self.__dict__.copy()
        state["_frame_cache"] = {}
        return state

    def snapshot_delta(self) -> Fields:
        """Baseline for in-place delta resets (frame cache preserved)."""
        return capture_fields(self, skip=self.__delta_skip__)

    def reset_from_delta(self, baseline: Fields) -> None:
        """Revert plan/slot/overrun state to an armed baseline."""
        restore_fields(self, baseline)

    @property
    def plan(self) -> PlanConfig:
        """The active plan's configuration."""
        return self.kernel.config.plan(self.current_plan_id)

    @property
    def major_frame_us(self) -> int:
        """Active plan major frame length."""
        return self.plan.major_frame_us

    def start(self) -> None:
        """Kick off the cyclic schedule at the current virtual time."""
        self._on_frame_start(self.kernel.sim.now_us)

    def request_plan_switch(self, plan_id: int) -> None:
        """Record a switch; applied at the next major frame boundary."""
        self.requested_plan_id = plan_id

    def consume(self, us: int) -> None:
        """Account CPU time against the running slot."""
        if us < 0:
            raise ValueError("cannot consume negative time")
        self.slot_consumed_us += us

    # -- event callbacks -----------------------------------------------------

    def _on_frame_start(self, now: int) -> None:
        if self.kernel.is_halted():
            return
        if self.requested_plan_id is not None:
            self.current_plan_id = self.requested_plan_id
            self.requested_plan_id = None
        self.major_frame_count += 1
        plan = self.plan
        events = self._frame_cache.get(self.current_plan_id)
        if events is None:
            # A partial over a bound method (not a closure) keeps the
            # scheduled callbacks picklable and deep-copy-safe, which
            # the simulator's snapshot/restore fast path relies on.
            events = [
                (
                    slot.start_us,
                    partial(self._slot_event, slot),
                    f"slot{slot.slot_id}.p{slot.partition_id}",
                )
                for slot in plan.slots
            ]
            self._frame_cache[self.current_plan_id] = events
        # Slot offsets are non-negative, so the schedule_at past-check
        # can never fire — schedule straight into the event queue (this
        # loop runs for every slot of every major frame).
        schedule = self.kernel.sim.events.schedule
        for offset, callback, name in events:
            schedule(now + offset, callback, name)
        schedule(now + plan.major_frame_us, self._on_frame_start, "frame")

    def _slot_event(self, slot: SlotConfig, now: int) -> None:
        self._on_slot_start(now, slot)

    def restart(self, _now: int) -> None:
        """Event-queue entry point for the post-reset schedule restart."""
        self.start()

    def _on_slot_start(self, now: int, slot: SlotConfig) -> None:
        kernel = self.kernel
        if kernel.is_halted():
            return
        epoch = kernel.boot_epoch
        partition = kernel.partitions.get(slot.partition_id)
        if partition is None or not partition.state.runnable():
            return
        if partition.state is PartitionState.BOOT:
            partition.set_state(PartitionState.NORMAL)
        self.current_slot = slot
        self.slot_consumed_us = 0
        ctx = SlotContext(kernel, partition, slot, now)
        try:
            if partition.app is not None:
                partition.app.step(ctx)
        except kernel.NoReturn:
            # The partition halted/suspended/reset itself (or the system
            # reset under it); nothing more runs in this slot.
            pass
        except MemoryFault as fault:
            # The application itself touched memory it does not own:
            # spatial isolation violation, contained by the HM.
            if kernel.boot_epoch == epoch:
                kernel.hm_raise(
                    HmEvent.MEM_PROTECTION,
                    slot.partition_id,
                    detail=f"partition access fault: {fault}",
                )
        if kernel.boot_epoch != epoch or kernel.is_halted():
            self.current_slot = None
            return
        consumed = self.slot_consumed_us
        partition = kernel.partitions.get(slot.partition_id)
        if partition is not None:
            partition.exec_clock_us += consumed
        if consumed > slot.duration_us:
            overrun = consumed - slot.duration_us
            self.overruns.append((now, slot.partition_id, overrun))
            kernel.hm_raise(
                HmEvent.TEMPORAL_VIOLATION,
                slot.partition_id,
                detail=f"slot {slot.slot_id} overrun by {overrun}us",
                payload=overrun,
            )
        self.current_slot = None
        self.slot_consumed_us = 0

    def reset(self) -> None:
        """Forget in-flight slot state (system reset path)."""
        self.current_slot = None
        self.slot_consumed_us = 0
        self.requested_plan_id = None
