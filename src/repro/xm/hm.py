"""The XtratuM Health Monitor.

The HM detects and handles irregular events in partitions or the kernel
itself, as early as possible, so offending processes are dealt with and
faults contained.  Every event is matched against a configured action
table; the log is what the robustness campaign mines to classify
failures, so event codes here map directly onto the CRASH-scale
classifier in :mod:`repro.fault.classify`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.tsim.delta import Fields, capture_fields, restore_fields
from repro.xm.status import XmHmLogEntry


class HmEvent(enum.Enum):
    """Health monitor event codes."""

    PARTITION_ERROR = 0x01
    MEM_PROTECTION = 0x02
    UNHANDLED_TRAP = 0x03
    TEMPORAL_VIOLATION = 0x04
    FATAL_ERROR = 0x05
    PARTITION_HALTED = 0x06
    PARTITION_RESET = 0x07
    SYSTEM_RESET = 0x08
    WATCHDOG = 0x09
    SCHED_ERROR = 0x0A


class HmAction(enum.Enum):
    """Configured reactions."""

    IGNORE = "ignore"
    LOG = "log"
    HALT_PARTITION = "halt_partition"
    RESET_PARTITION_WARM = "reset_partition_warm"
    RESET_PARTITION_COLD = "reset_partition_cold"
    HALT_SYSTEM = "halt_system"
    RESET_SYSTEM = "reset_system"
    PROPAGATE = "propagate"


#: Default action table: conservative fault containment.
DEFAULT_ACTIONS: dict[HmEvent, HmAction] = {
    HmEvent.PARTITION_ERROR: HmAction.LOG,
    HmEvent.MEM_PROTECTION: HmAction.HALT_PARTITION,
    HmEvent.UNHANDLED_TRAP: HmAction.HALT_PARTITION,
    HmEvent.TEMPORAL_VIOLATION: HmAction.LOG,
    HmEvent.FATAL_ERROR: HmAction.HALT_SYSTEM,
    HmEvent.PARTITION_HALTED: HmAction.LOG,
    HmEvent.PARTITION_RESET: HmAction.LOG,
    HmEvent.SYSTEM_RESET: HmAction.LOG,
    HmEvent.WATCHDOG: HmAction.LOG,
    HmEvent.SCHED_ERROR: HmAction.LOG,
}

#: Kernel-scope event records use this partition id.
KERNEL_SCOPE = -1


@dataclass(frozen=True)
class HmRecord:
    """One logged health monitor event."""

    event: HmEvent
    partition_id: int
    timestamp_us: int
    detail: str = ""
    payload: int = 0
    action: HmAction = HmAction.LOG

    def to_log_entry(self) -> XmHmLogEntry:
        """Wire representation for the ``XM_hm_read`` hypercall."""
        return XmHmLogEntry(
            event_code=self.event.value,
            partition_id=self.partition_id,
            timestamp_us=self.timestamp_us,
            payload=self.payload,
        )


@dataclass
class HealthMonitor:
    """Event log plus action lookup.

    The log is a bounded ring: on overflow the oldest record is dropped
    and ``lost_events`` counts it, mirroring the real HM's behaviour of
    never blocking the kernel on logging.
    """

    capacity: int = 256
    actions: dict[HmEvent, HmAction] = field(default_factory=lambda: dict(DEFAULT_ACTIONS))
    records: list[HmRecord] = field(default_factory=list)
    lost_events: int = 0
    read_cursor: int = 0
    total_events: int = 0

    def action_for(self, event: HmEvent) -> HmAction:
        """Configured action for an event (LOG when unconfigured)."""
        return self.actions.get(event, HmAction.LOG)

    def snapshot_delta(self) -> Fields:
        """Baseline (log, cursor, counters) for in-place delta resets."""
        return capture_fields(self)

    def reset_from_delta(self, baseline: Fields) -> None:
        """Revert the event log and counters to an armed baseline."""
        restore_fields(self, baseline)

    def raise_event(
        self,
        event: HmEvent,
        partition_id: int,
        timestamp_us: int,
        detail: str = "",
        payload: int = 0,
    ) -> HmRecord:
        """Record an event and return it with its resolved action.

        The *caller* (the kernel) executes the action; the HM only decides
        and logs, which keeps the decision auditable in the record.
        """
        action = self.action_for(event)
        record = HmRecord(event, partition_id, timestamp_us, detail, payload, action)
        self.records.append(record)
        self.total_events += 1
        if len(self.records) > self.capacity:
            self.records.pop(0)
            self.lost_events += 1
            if self.read_cursor > 0:
                self.read_cursor -= 1
        return record

    def unread(self) -> list[HmRecord]:
        """Records not yet consumed through ``XM_hm_read``."""
        return self.records[self.read_cursor :]

    def consume(self, count: int) -> list[HmRecord]:
        """Read and advance the cursor by up to ``count`` records."""
        out = self.records[self.read_cursor : self.read_cursor + count]
        self.read_cursor += len(out)
        return out

    def seek(self, offset: int, whence: int) -> int | None:
        """Move the read cursor; returns the new cursor or None if invalid.

        ``whence``: 0 = absolute, 1 = relative to cursor, 2 = from end.
        """
        if whence == 0:
            target = offset
        elif whence == 1:
            target = self.read_cursor + offset
        elif whence == 2:
            target = len(self.records) + offset
        else:
            return None
        if not 0 <= target <= len(self.records):
            return None
        self.read_cursor = target
        return target

    def events_of(self, event: HmEvent) -> list[HmRecord]:
        """All logged records with the given code."""
        return [r for r in self.records if r.event is event]

    def clear(self) -> None:
        """Reset the log (``XM_hm_reset_events`` / system cold reset)."""
        self.records.clear()
        self.read_cursor = 0
        self.lost_events = 0
        self.total_events = 0
