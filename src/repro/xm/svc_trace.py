"""Trace Management hypercalls.

Each partition owns one trace stream; the kernel owns stream -1.  Normal
partitions may only open their own stream, system partitions may open
any.  Streams are bounded rings, like the HM log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.xm import rc
from repro.xm.partition import Partition
from repro.xm.status import XmTraceEvent, XmTraceStatus
from repro.xm.usercopy import copy_to_user

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel

#: Kernel trace stream id.
KERNEL_STREAM = -1
#: Per-stream ring capacity.
STREAM_CAPACITY = 128
#: Upper bound on one trace_read batch.
MAX_TRACE_READ = 64


@dataclass
class TraceStream:
    """One bounded trace ring."""

    stream_id: int
    events: list[XmTraceEvent] = field(default_factory=list)
    cursor: int = 0
    total: int = 0
    lost: int = 0

    def record(self, opcode: int, partition_id: int, now_us: int, word: int = 0) -> None:
        """Append one event, dropping the oldest on overflow."""
        self.events.append(
            XmTraceEvent(opcode=opcode, partition_id=partition_id,
                         timestamp_us=now_us, word=word)
        )
        self.total += 1
        if len(self.events) > STREAM_CAPACITY:
            self.events.pop(0)
            self.lost += 1
            if self.cursor > 0:
                self.cursor -= 1

    def unread(self) -> list[XmTraceEvent]:
        """Events past the read cursor."""
        return self.events[self.cursor :]

    def seek(self, offset: int, whence: int) -> bool:
        """Move the cursor; False when the target is out of range."""
        if whence == 0:
            target = offset
        elif whence == 1:
            target = self.cursor + offset
        elif whence == 2:
            target = len(self.events) + offset
        else:
            return False
        if not 0 <= target <= len(self.events):
            return False
        self.cursor = target
        return True


class TraceManager:
    """Owner of the trace streams and services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.streams: dict[int, TraceStream] = {KERNEL_STREAM: TraceStream(KERNEL_STREAM)}
        for part in kernel.config.partitions:
            self.streams[part.ident] = TraceStream(part.ident)
        self.opened: set[tuple[int, int]] = set()

    def record(self, stream_id: int, opcode: int, partition_id: int, word: int = 0) -> None:
        """Kernel-side helper to trace an event."""
        stream = self.streams.get(stream_id)
        if stream is not None:
            stream.record(opcode, partition_id, self.kernel.sim.now_us, word)

    def _accessible(self, caller: Partition, stream_id: int) -> TraceStream | None:
        stream = self.streams.get(stream_id)
        if stream is None:
            return None
        if not caller.is_system and stream_id != caller.ident:
            return None
        return stream

    def svc_trace_open(self, caller: Partition, stream_id: int) -> int:
        """``XM_trace_open(xm_s32_t streamId)``: returns the descriptor."""
        stream = self._accessible(caller, stream_id)
        if stream is None:
            return rc.XM_INVALID_PARAM if stream_id not in self.streams else rc.XM_PERM_ERROR
        self.opened.add((caller.ident, stream_id))
        return stream_id & 0x7FFFFFFF if stream_id >= 0 else 0x7FFFFFFF

    def svc_trace_read(
        self, caller: Partition, stream_id: int, events_ptr: int, no_events: int
    ) -> int:
        """``XM_trace_read(xm_s32_t, xmTraceEvent_t *, xm_u32_t)``.

        Returns the number of events copied out.
        """
        stream = self._accessible(caller, stream_id)
        if stream is None:
            return rc.XM_INVALID_PARAM if stream_id not in self.streams else rc.XM_PERM_ERROR
        if no_events == 0 or no_events > MAX_TRACE_READ:
            return rc.XM_INVALID_PARAM
        unread = stream.unread()
        count = min(no_events, len(unread))
        if count == 0:
            if not copy_to_user(
                caller.address_space, events_ptr, bytes(XmTraceEvent.SIZE)
            ):
                return rc.XM_INVALID_PARAM
            return 0
        data = b"".join(ev.pack() for ev in unread[:count])
        if not copy_to_user(caller.address_space, events_ptr, data):
            return rc.XM_INVALID_PARAM
        stream.cursor += count
        return count

    def svc_trace_seek(
        self, caller: Partition, stream_id: int, offset: int, whence: int
    ) -> int:
        """``XM_trace_seek(xm_s32_t, xm_u32_t offset, xm_u32_t whence)``."""
        stream = self._accessible(caller, stream_id)
        if stream is None:
            return rc.XM_INVALID_PARAM if stream_id not in self.streams else rc.XM_PERM_ERROR
        if not stream.seek(offset, whence):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    def svc_trace_status(self, caller: Partition, stream_id: int, status_ptr: int) -> int:
        """``XM_trace_status(xm_s32_t, xmTraceStatus_t *)``."""
        stream = self._accessible(caller, stream_id)
        if stream is None:
            return rc.XM_INVALID_PARAM if stream_id not in self.streams else rc.XM_PERM_ERROR
        status = XmTraceStatus(
            total_events=stream.total,
            unread_events=len(stream.unread()),
            lost_events=stream.lost,
        )
        if not copy_to_user(caller.address_space, status_ptr, status.pack()):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    def svc_trace_flush(self, caller: Partition) -> int:
        """``XM_trace_flush(void)``: clear the caller's own stream."""
        stream = self.streams.get(caller.ident)
        if stream is None:
            return rc.XM_NO_ACTION
        stream.events.clear()
        stream.cursor = 0
        return rc.XM_OK
