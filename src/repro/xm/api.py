"""The XtratuM hypercall API: 61 services in 11 categories (Table III).

Every hypercall the kernel exposes is declared here once; the declaration
drives three consumers:

1. the kernel's dispatcher (``service`` names the handler method),
2. the fault model's API-header generation (parameter names/types,
   pointer-ness, and per-parameter *dictionary hints* — the paper's §V
   context-specific test value sets),
3. the campaign scoping of Table III (``tested`` / ``untested_reason``).

Untested calls fall into the two groups Fig. 8 identifies: parameter-less
hypercalls (10 of 61 ≈ 16 %), and calls excluded for cause on this
testbed (struct-heavy inputs, single-core target, or operations that
would corrupt the test harness itself).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Category(enum.Enum):
    """Hypercall categories, in Table III order."""

    SYSTEM = "System Management"
    PARTITION = "Partition Management"
    TIME = "Time Management"
    PLAN = "Plan Management"
    IPC = "Inter-Partition Communication"
    MEMORY = "Memory Management"
    HM = "Health Monitor Management"
    TRACE = "Trace Management"
    IRQ = "Interrupt Management"
    MISC = "Miscellaneous"
    SPARC = "Sparc V8 Specific"


@dataclass(frozen=True)
class ParamDef:
    """One hypercall parameter.

    ``dict_hint`` names the test-value dictionary the fault model should
    use; None means "the default dictionary of the declared type".
    ``out`` marks write-only (result) pointers.
    """

    name: str
    type_name: str
    is_pointer: bool = False
    out: bool = False
    dict_hint: str | None = None

    @property
    def dictionary_key(self) -> str:
        """Resolved dictionary name for the fault model."""
        return self.dict_hint if self.dict_hint is not None else self.type_name


@dataclass(frozen=True)
class HypercallDef:
    """One hypercall declaration."""

    number: int
    name: str
    category: Category
    params: tuple[ParamDef, ...]
    service: str
    return_type: str = "xm_s32_t"
    system_only: bool = False
    tested: bool = True
    untested_reason: str | None = None

    @property
    def has_params(self) -> bool:
        """Whether the call takes any parameter (Fig. 8 grouping)."""
        return bool(self.params)

    @property
    def arity(self) -> int:
        """Number of parameters."""
        return len(self.params)

    def __post_init__(self) -> None:
        if not self.tested and self.untested_reason is None:
            raise ValueError(f"{self.name}: untested calls need a reason")
        if self.tested and not self.params:
            raise ValueError(f"{self.name}: parameter-less calls are untested in scope")


NO_PARAMS = "parameter-less hypercall (out of data-type fault model scope)"
STRUCT_HEAVY = "requires composite struct input outside the data-type dictionaries"
SINGLE_CORE = "multicore/vCPU service; LEON3 testbed is single-core"
HARNESS_RISK = "would corrupt the test harness/testbed itself"


def _p(name: str, type_name: str, **kw: object) -> ParamDef:
    return ParamDef(name, type_name, **kw)  # type: ignore[arg-type]


def _ptr(name: str, type_name: str, hint: str, out: bool = False) -> ParamDef:
    return ParamDef(name, type_name, is_pointer=True, out=out, dict_hint=hint)


def _build_table() -> tuple[HypercallDef, ...]:
    table: list[HypercallDef] = []
    num = iter(range(1, 200))

    def add(
        name: str,
        category: Category,
        params: tuple[ParamDef, ...],
        service: str,
        **kw: object,
    ) -> None:
        table.append(
            HypercallDef(next(num), name, category, params, service, **kw)  # type: ignore[arg-type]
        )

    # -- System Management (3) ---------------------------------------------
    add(
        "XM_get_system_status",
        Category.SYSTEM,
        (_ptr("status", "xmSystemStatus_t", "struct_ptr", out=True),),
        "sysmgr.svc_get_system_status",
        system_only=True,
    )
    add(
        "XM_reset_system",
        Category.SYSTEM,
        (_p("mode", "xm_u32_t"),),
        "sysmgr.svc_reset_system",
        system_only=True,
    )
    add(
        "XM_halt_system",
        Category.SYSTEM,
        (),
        "sysmgr.svc_halt_system",
        system_only=True,
        tested=False,
        untested_reason=NO_PARAMS,
    )

    # -- Partition Management (10) -----------------------------------------
    add(
        "XM_get_partition_status",
        Category.PARTITION,
        (
            _p("partitionId", "xm_s32_t"),
            _ptr("status", "xmPartitionStatus_t", "struct_ptr", out=True),
        ),
        "partmgr.svc_get_partition_status",
        system_only=True,
    )
    add(
        "XM_halt_partition",
        Category.PARTITION,
        (_p("partitionId", "xm_s32_t"),),
        "partmgr.svc_halt_partition",
        system_only=True,
    )
    add(
        "XM_reset_partition",
        Category.PARTITION,
        (
            _p("partitionId", "xm_s32_t"),
            _p("resetMode", "xm_u32_t"),
            _p("status", "xm_u32_t"),
        ),
        "partmgr.svc_reset_partition",
        system_only=True,
    )
    add(
        "XM_resume_partition",
        Category.PARTITION,
        (_p("partitionId", "xm_s32_t"),),
        "partmgr.svc_resume_partition",
        system_only=True,
    )
    add(
        "XM_suspend_partition",
        Category.PARTITION,
        (_p("partitionId", "xm_s32_t"),),
        "partmgr.svc_suspend_partition",
        system_only=True,
    )
    add(
        "XM_shutdown_partition",
        Category.PARTITION,
        (_p("partitionId", "xm_s32_t"),),
        "partmgr.svc_shutdown_partition",
        system_only=True,
    )
    add(
        "XM_idle_self",
        Category.PARTITION,
        (),
        "partmgr.svc_idle_self",
        tested=False,
        untested_reason=NO_PARAMS,
    )
    add(
        "XM_halt_vcpu",
        Category.PARTITION,
        (_p("vcpuId", "xm_u32_t"),),
        "partmgr.svc_halt_vcpu",
        tested=False,
        untested_reason=SINGLE_CORE,
    )
    add(
        "XM_suspend_vcpu",
        Category.PARTITION,
        (_p("vcpuId", "xm_u32_t"),),
        "partmgr.svc_suspend_vcpu",
        tested=False,
        untested_reason=SINGLE_CORE,
    )
    add(
        "XM_resume_vcpu",
        Category.PARTITION,
        (_p("vcpuId", "xm_u32_t"),),
        "partmgr.svc_resume_vcpu",
        tested=False,
        untested_reason=SINGLE_CORE,
    )

    # -- Time Management (2) -------------------------------------------------
    add(
        "XM_get_time",
        Category.TIME,
        (
            _p("clockId", "xm_u32_t", dict_hint="clock_id"),
            _ptr("time", "xmTime_t", "out_ptr_small", out=True),
        ),
        "timemgr.svc_get_time",
    )
    add(
        "XM_set_timer",
        Category.TIME,
        (
            _p("clockId", "xm_u32_t", dict_hint="clock_id"),
            _p("absTime", "xmTime_t"),
            _p("interval", "xmTime_t"),
        ),
        "timemgr.svc_set_timer",
    )

    # -- Plan Management (2) --------------------------------------------------
    add(
        "XM_switch_sched_plan",
        Category.PLAN,
        (_p("planId", "xm_u32_t", dict_hint="plan_id"),),
        "planmgr.svc_switch_sched_plan",
        system_only=True,
    )
    add(
        "XM_get_plan_status",
        Category.PLAN,
        (_ptr("status", "xmPlanStatus_t", "struct_ptr", out=True),),
        "planmgr.svc_get_plan_status",
        tested=False,
        untested_reason=STRUCT_HEAVY,
    )

    # -- Inter-Partition Communication (10) -----------------------------------
    add(
        "XM_create_sampling_port",
        Category.IPC,
        (
            _ptr("portName", "xm_s8_t", "name_ptr"),
            _p("maxMsgSize", "xmSize_t", dict_hint="size_ctx"),
            _p("direction", "xm_u32_t", dict_hint="direction_ctx"),
            _p("refreshPeriod", "xmTime_t"),
        ),
        "ipc.svc_create_sampling_port",
    )
    add(
        "XM_write_sampling_message",
        Category.IPC,
        (
            _p("portDesc", "xm_s32_t", dict_hint="port_id"),
            _ptr("msgPtr", "xm_u8_t", "buffer_ptr"),
            _p("msgSize", "xmSize_t", dict_hint="size_ctx"),
        ),
        "ipc.svc_write_sampling_message",
    )
    add(
        "XM_read_sampling_message",
        Category.IPC,
        (
            _p("portDesc", "xm_s32_t", dict_hint="port_id"),
            _ptr("msgPtr", "xm_u8_t", "buffer_ptr", out=True),
            _p("msgSize", "xmSize_t", dict_hint="size_ctx"),
            _ptr("flags", "xm_u32_t", "out_ptr_small", out=True),
        ),
        "ipc.svc_read_sampling_message",
    )
    add(
        "XM_create_queuing_port",
        Category.IPC,
        (
            _ptr("portName", "xm_s8_t", "name_ptr"),
            _p("maxNoMsgs", "xm_u32_t", dict_hint="size_ctx"),
            _p("maxMsgSize", "xmSize_t", dict_hint="size_ctx"),
            _p("direction", "xm_u32_t", dict_hint="direction_ctx"),
        ),
        "ipc.svc_create_queuing_port",
    )
    add(
        "XM_send_queuing_message",
        Category.IPC,
        (
            _p("portDesc", "xm_s32_t", dict_hint="port_id"),
            _ptr("msgPtr", "xm_u8_t", "buffer_ptr"),
            _p("msgSize", "xmSize_t", dict_hint="size_ctx"),
        ),
        "ipc.svc_send_queuing_message",
    )
    add(
        "XM_receive_queuing_message",
        Category.IPC,
        (
            _p("portDesc", "xm_s32_t", dict_hint="port_id"),
            _ptr("msgPtr", "xm_u8_t", "buffer_ptr", out=True),
            _p("msgSize", "xmSize_t", dict_hint="size_ctx"),
            _ptr("flags", "xm_u32_t", "out_ptr_small", out=True),
        ),
        "ipc.svc_receive_queuing_message",
    )
    add(
        "XM_get_port_status",
        Category.IPC,
        (
            _p("portDesc", "xm_s32_t", dict_hint="port_id"),
            _ptr("status", "xmPortStatus_t", "struct_ptr", out=True),
        ),
        "ipc.svc_get_port_status",
    )
    add(
        "XM_flush_port",
        Category.IPC,
        (_p("portDesc", "xm_s32_t", dict_hint="port_id"),),
        "ipc.svc_flush_port",
    )
    add(
        "XM_get_sampling_port_info",
        Category.IPC,
        (
            _ptr("portName", "xm_s8_t", "name_ptr"),
            _ptr("info", "xmSamplingPortInfo_t", "struct_ptr", out=True),
        ),
        "ipc.svc_get_sampling_port_info",
        tested=False,
        untested_reason=STRUCT_HEAVY,
    )
    add(
        "XM_get_queuing_port_info",
        Category.IPC,
        (
            _ptr("portName", "xm_s8_t", "name_ptr"),
            _ptr("info", "xmQueuingPortInfo_t", "struct_ptr", out=True),
        ),
        "ipc.svc_get_queuing_port_info",
        tested=False,
        untested_reason=STRUCT_HEAVY,
    )

    # -- Memory Management (2) -------------------------------------------------
    add(
        "XM_memory_copy",
        Category.MEMORY,
        (
            _p("dstId", "xm_s32_t", dict_hint="partition_id_ctx"),
            _p("dstAddr", "xmAddress_t"),
            _p("srcId", "xm_s32_t", dict_hint="partition_id_ctx"),
            _p("srcAddr", "xmAddress_t"),
            _p("size", "xmSize_t", dict_hint="size_ctx"),
        ),
        "memmgr.svc_memory_copy",
        system_only=True,
    )
    add(
        "XM_update_page32",
        Category.MEMORY,
        (
            _p("pageAddr", "xmAddress_t"),
            _p("value", "xm_u32_t"),
        ),
        "memmgr.svc_update_page32",
        tested=False,
        untested_reason=HARNESS_RISK,
    )

    # -- Health Monitor Management (5) -------------------------------------------
    add(
        "XM_hm_status",
        Category.HM,
        (_ptr("status", "xmHmStatus_t", "struct_ptr", out=True),),
        "hmmgr.svc_hm_status",
        system_only=True,
    )
    add(
        "XM_hm_read",
        Category.HM,
        (
            _ptr("log", "xmHmLog_t", "buffer_ptr", out=True),
            _p("noLogs", "xm_u32_t"),
        ),
        "hmmgr.svc_hm_read",
        system_only=True,
    )
    add(
        "XM_hm_seek",
        Category.HM,
        (
            _p("offset", "xm_u32_t"),
            _p("whence", "xm_u32_t"),
        ),
        "hmmgr.svc_hm_seek",
        system_only=True,
    )
    add(
        "XM_hm_reset_events",
        Category.HM,
        (),
        "hmmgr.svc_hm_reset_events",
        system_only=True,
        tested=False,
        untested_reason=NO_PARAMS,
    )
    add(
        "XM_hm_raise_event",
        Category.HM,
        (_ptr("event", "xmHmLog_t", "struct_ptr"),),
        "hmmgr.svc_hm_raise_event",
        system_only=True,
        tested=False,
        untested_reason=STRUCT_HEAVY,
    )

    # -- Trace Management (5) -------------------------------------------------
    add(
        "XM_trace_open",
        Category.TRACE,
        (_p("streamId", "xm_s32_t"),),
        "tracemgr.svc_trace_open",
    )
    add(
        "XM_trace_read",
        Category.TRACE,
        (
            _p("streamId", "xm_s32_t"),
            _ptr("events", "xmTraceEvent_t", "buffer_ptr", out=True),
            _p("noEvents", "xm_u32_t"),
        ),
        "tracemgr.svc_trace_read",
    )
    add(
        "XM_trace_seek",
        Category.TRACE,
        (
            _p("streamId", "xm_s32_t"),
            _p("offset", "xm_u32_t"),
            _p("whence", "xm_u32_t"),
        ),
        "tracemgr.svc_trace_seek",
    )
    add(
        "XM_trace_status",
        Category.TRACE,
        (
            _p("streamId", "xm_s32_t"),
            _ptr("status", "xmTraceStatus_t", "struct_ptr", out=True),
        ),
        "tracemgr.svc_trace_status",
    )
    add(
        "XM_trace_flush",
        Category.TRACE,
        (),
        "tracemgr.svc_trace_flush",
        tested=False,
        untested_reason=NO_PARAMS,
    )

    # -- Interrupt Management (5) -----------------------------------------------
    add(
        "XM_route_irq",
        Category.IRQ,
        (
            _p("irqType", "xm_u32_t"),
            _p("irqLine", "xm_u32_t"),
            _p("vector", "xm_u32_t"),
        ),
        "irqmgr.svc_route_irq",
    )
    add(
        "XM_mask_irq",
        Category.IRQ,
        (_p("irqLine", "xm_u32_t"),),
        "irqmgr.svc_mask_irq",
    )
    add(
        "XM_unmask_irq",
        Category.IRQ,
        (_p("irqLine", "xm_u32_t"),),
        "irqmgr.svc_unmask_irq",
    )
    add(
        "XM_set_irqpend",
        Category.IRQ,
        (_p("irqLine", "xm_u32_t"),),
        "irqmgr.svc_set_irqpend",
    )
    add(
        "XM_enable_irqs",
        Category.IRQ,
        (),
        "irqmgr.svc_enable_irqs",
        tested=False,
        untested_reason=NO_PARAMS,
    )

    # -- Miscellaneous (5) --------------------------------------------------------
    add(
        "XM_multicall",
        Category.MISC,
        (
            _ptr("startAddr", "void", "batch_ptr_start"),
            _ptr("endAddr", "void", "batch_ptr_end"),
        ),
        "miscmgr.svc_multicall",
    )
    add(
        "XM_write_console",
        Category.MISC,
        (
            _ptr("buffer", "xm_s8_t", "buffer_ptr"),
            _p("length", "xmSize_t", dict_hint="size_ctx"),
        ),
        "miscmgr.svc_write_console",
    )
    add(
        "XM_get_gid_by_name",
        Category.MISC,
        (
            _ptr("name", "xm_s8_t", "name_ptr"),
            _p("entity", "xm_u32_t", dict_hint="entity_ctx"),
        ),
        "miscmgr.svc_get_gid_by_name",
    )
    add(
        "XM_get_hpv_info",
        Category.MISC,
        (_ptr("info", "xmHpvInfo_t", "struct_ptr", out=True),),
        "miscmgr.svc_get_hpv_info",
        tested=False,
        untested_reason=STRUCT_HEAVY,
    )
    add(
        "XM_params_get_pct",
        Category.MISC,
        (_ptr("pct", "xmAddress_t", "struct_ptr", out=True),),
        "miscmgr.svc_params_get_pct",
        tested=False,
        untested_reason=STRUCT_HEAVY,
    )

    # -- Sparc V8 Specific (12) -----------------------------------------------------
    add(
        "XM_sparc_inport",
        Category.SPARC,
        (_p("port", "xmIoAddress_t"),),
        "sparcmgr.svc_inport",
    )
    add(
        "XM_sparc_outport",
        Category.SPARC,
        (
            _p("port", "xmIoAddress_t"),
            _p("value", "xm_u32_t"),
        ),
        "sparcmgr.svc_outport",
    )
    add(
        "XM_sparc_atomic_add",
        Category.SPARC,
        (
            _p("address", "xmAddress_t"),
            _p("value", "xm_u32_t"),
        ),
        "sparcmgr.svc_atomic_add",
    )
    add(
        "XM_sparc_atomic_and",
        Category.SPARC,
        (
            _p("address", "xmAddress_t"),
            _p("mask", "xm_u32_t"),
        ),
        "sparcmgr.svc_atomic_and",
    )
    add(
        "XM_sparc_atomic_or",
        Category.SPARC,
        (
            _p("address", "xmAddress_t"),
            _p("mask", "xm_u32_t"),
        ),
        "sparcmgr.svc_atomic_or",
    )
    add(
        "XM_sparc_flush_regwin",
        Category.SPARC,
        (),
        "sparcmgr.svc_flush_regwin",
        tested=False,
        untested_reason=NO_PARAMS,
    )
    add(
        "XM_sparc_flush_cache",
        Category.SPARC,
        (),
        "sparcmgr.svc_flush_cache",
        tested=False,
        untested_reason=NO_PARAMS,
    )
    add(
        "XM_sparc_enable_traps",
        Category.SPARC,
        (),
        "sparcmgr.svc_enable_traps",
        tested=False,
        untested_reason=NO_PARAMS,
    )
    add(
        "XM_sparc_disable_traps",
        Category.SPARC,
        (),
        "sparcmgr.svc_disable_traps",
        tested=False,
        untested_reason=NO_PARAMS,
    )
    add(
        "XM_sparc_get_psr",
        Category.SPARC,
        (),
        "sparcmgr.svc_get_psr",
        tested=False,
        untested_reason=NO_PARAMS,
    )
    add(
        "XM_sparc_install_trap_handler",
        Category.SPARC,
        (
            _p("trapNr", "xm_u32_t"),
            _p("handler", "xmAddress_t"),
        ),
        "sparcmgr.svc_install_trap_handler",
        tested=False,
        untested_reason=HARNESS_RISK,
    )
    add(
        "XM_sparc_set_tbr",
        Category.SPARC,
        (_p("tbr", "xmAddress_t"),),
        "sparcmgr.svc_set_tbr",
        tested=False,
        untested_reason=HARNESS_RISK,
    )

    return tuple(table)


#: The full, immutable hypercall table.
HYPERCALL_TABLE: tuple[HypercallDef, ...] = _build_table()

_BY_NAME: dict[str, HypercallDef] = {h.name: h for h in HYPERCALL_TABLE}
_BY_NUMBER: dict[int, HypercallDef] = {h.number: h for h in HYPERCALL_TABLE}


def hypercall_by_name(name: str) -> HypercallDef:
    """Lookup by name; KeyError with context otherwise."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown hypercall: {name!r}") from None


def hypercall_by_number(number: int) -> HypercallDef | None:
    """Lookup by hypercall number, None when unknown."""
    return _BY_NUMBER.get(number)


def by_category() -> dict[Category, list[HypercallDef]]:
    """Table III grouping: category → hypercalls."""
    groups: dict[Category, list[HypercallDef]] = {cat: [] for cat in Category}
    for h in HYPERCALL_TABLE:
        groups[h.category].append(h)
    return groups


def tested_hypercalls() -> list[HypercallDef]:
    """The campaign scope (39 calls)."""
    return [h for h in HYPERCALL_TABLE if h.tested]


def untested_hypercalls() -> list[HypercallDef]:
    """Out-of-scope calls (22), with reasons."""
    return [h for h in HYPERCALL_TABLE if not h.tested]


def parameterless_hypercalls() -> list[HypercallDef]:
    """Fig. 8's 16 %: calls with no parameters (10)."""
    return [h for h in HYPERCALL_TABLE if not h.has_params]
