"""System Management hypercalls.

``XM_reset_system`` carries the paper's first three findings: the
vulnerable kernel derives warm-vs-cold from the mode word's low bit
without validating the rest (a faithful model of ``mode & 1`` selection
in C), so 2 and 16 cold-reset the system and 4294967295 warm-resets it
where ``XM_INVALID_PARAM`` is expected.  The revised kernel validates
the mode first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xm import rc
from repro.xm.status import XmSystemStatus
from repro.xm.usercopy import copy_to_user

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel
    from repro.xm.partition import Partition


class SystemManager:
    """Owner of the system-scope services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def svc_get_system_status(self, caller: "Partition", status_ptr: int) -> int:
        """``XM_get_system_status(xmSystemStatus_t *status)``."""
        kernel = self.kernel
        status = XmSystemStatus(
            reset_counter=kernel.reset_counter,
            warm_reset_counter=kernel.warm_reset_counter,
            current_plan=kernel.sched.current_plan_id,
            current_time_us=kernel.sim.now_us,
            hm_events=kernel.hm.total_events,
        )
        if not copy_to_user(caller.address_space, status_ptr, status.pack()):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    def svc_reset_system(self, caller: "Partition", mode: int) -> int:
        """``XM_reset_system(xm_u32_t mode)``.

        Valid modes: ``XM_COLD_RESET`` (0) and ``XM_WARM_RESET`` (1).
        """
        features = self.kernel.features
        if features.reset_system_mode_check:
            if mode not in (rc.XM_COLD_RESET, rc.XM_WARM_RESET):
                return rc.XM_INVALID_PARAM
            warm = mode == rc.XM_WARM_RESET
        else:
            # Defect XM-RS-*: only the low bit is consulted; any even
            # invalid mode cold-resets, any odd one warm-resets.
            warm = bool(mode & 1)
        self.kernel.system_reset(warm, source=f"XM_reset_system({mode})")
        raise AssertionError("unreachable")  # pragma: no cover

    def svc_halt_system(self, caller: "Partition") -> int:
        """``XM_halt_system(void)`` — parameter-less, untested in scope."""
        self.kernel.halt(f"XM_halt_system by partition {caller.ident}")
        raise self.kernel.NoReturn("system halted")
