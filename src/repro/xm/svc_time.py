"""Time Management hypercalls: clocks and the vulnerable timer service.

``XM_set_timer`` carries three of the paper's nine findings:

- **XM-ST-1** — on the HW clock, an interval of ~1 µs makes the next
  expiry always already past by the time the handler checks it; the
  handler re-enters recursively until the kernel stack overflows →
  system fatal error, XM halt.
- **XM-ST-2** — the same tiny interval on the execution clock races with
  the timer trap: a second trap is taken while traps are disabled, the
  processor enters error mode, and the *simulator itself* crashes.
- **XM-ST-3** — a negative interval (``LLONG_MIN``) is accepted and the
  call returns success where ``XM_INVALID_PARAM`` is expected.

The revised kernel enforces a 50 µs minimum interval and rejects
negative intervals.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING

from repro.sparc.traps import Trap, TrapType
from repro.xm import rc
from repro.xm.errors import KernelPanic
from repro.xm.partition import Partition, VTimer
from repro.xm.usercopy import copy_to_user

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel

#: Virtual IRQ line used for partition timer expiry.
TIMER_VIRQ = 10
#: Hardware IRQMP line of the GPTIMER channel backing the HW clock.
HW_TIMER_IRQ = 8
#: CPU time one timer-handler pass costs; an interval below this can
#: never catch up, which is the root cause of XM-ST-1/2.
TIMER_HANDLER_COST_US = 5
#: Kernel stack depth the recursive handler survives before overflowing.
KERNEL_STACK_MAX_DEPTH = 32


class TimeManager:
    """Owner of clocks and partition timers."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.stack_overflows = 0

    # -- clocks ----------------------------------------------------------------

    def read_clock(self, caller: Partition, clock_id: int) -> int | None:
        """Current value of a clock for the calling partition, or None."""
        if clock_id == rc.XM_HW_CLOCK:
            return self.kernel.sim.now_us
        if clock_id == rc.XM_EXEC_CLOCK:
            extra = 0
            sched = self.kernel.sched
            if sched.current_slot is not None and (
                sched.current_slot.partition_id == caller.ident
            ):
                extra = sched.slot_consumed_us
            return caller.exec_clock_us + extra
        return None

    def svc_get_time(self, caller: Partition, clock_id: int, time_ptr: int) -> int:
        """``XM_get_time(xm_u32_t clockId, xmTime_t *time)``."""
        value = self.read_clock(caller, clock_id)
        if value is None:
            return rc.XM_INVALID_PARAM
        data = int(value).to_bytes(8, "big", signed=True)
        if not copy_to_user(caller.address_space, time_ptr, data):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    # -- timers ------------------------------------------------------------------

    def svc_set_timer(
        self, caller: Partition, clock_id: int, abs_time: int, interval: int
    ) -> int:
        """``XM_set_timer(xm_u32_t clockId, xmTime_t absTime, xmTime_t interval)``."""
        if clock_id not in (rc.XM_HW_CLOCK, rc.XM_EXEC_CLOCK):
            return rc.XM_INVALID_PARAM
        features = self.kernel.features
        if features.set_timer_negative_check and interval < 0:
            return rc.XM_INVALID_PARAM
        if 0 < interval < features.set_timer_min_interval_us:
            return rc.XM_INVALID_PARAM
        # absTime <= 0 disarms the timer; that is documented contract,
        # so the oracle treats non-positive absTime values as valid.
        timer = caller.timer(clock_id)
        if abs_time <= 0:
            timer.armed = False
            return rc.XM_OK
        timer.armed = True
        timer.interval_us = interval
        timer.next_expiry_us = abs_time
        self._schedule_expiry(caller, timer)
        return rc.XM_OK

    def _deadline_for(self, caller: Partition, timer: VTimer) -> int:
        """Translate a clock target into an absolute simulator time."""
        now = self.kernel.sim.now_us
        if timer.clock_id == rc.XM_HW_CLOCK:
            return max(now, timer.next_expiry_us)
        exec_now = caller.exec_clock_us
        return now + max(0, timer.next_expiry_us - exec_now)

    def _schedule_expiry(self, caller: Partition, timer: VTimer) -> None:
        deadline = self._deadline_for(caller, timer)
        ident = caller.ident
        # A partial over a bound method (not a closure) keeps the queued
        # expiry picklable for the simulator's snapshot/restore fast path.
        callback = partial(self._expiry_event, ident, timer.clock_id,
                           self.kernel.boot_epoch)
        self.kernel.sim.schedule_at(deadline, callback,
                                    name=f"vtimer.p{ident}.c{timer.clock_id}")

    def _expiry_event(self, partition_id: int, clock_id: int, epoch: int, now: int) -> None:
        self._on_expiry(now, partition_id, clock_id, epoch)

    def _on_expiry(self, now: int, partition_id: int, clock_id: int, epoch: int) -> None:
        kernel = self.kernel
        if kernel.is_halted() or kernel.boot_epoch != epoch:
            return
        partition = kernel.partitions.get(partition_id)
        if partition is None:
            return
        timer = partition.vtimers.get(clock_id)
        if timer is None or not timer.armed:
            return
        try:
            self._run_handler(partition, timer, now)
        except KernelPanic as panic:
            kernel.fatal(str(panic))

    def _run_handler(self, partition: Partition, timer: VTimer, now: int) -> None:
        """The kernel timer handler, including the historical defect.

        Each handler pass costs :data:`TIMER_HANDLER_COST_US`.  With a
        positive interval smaller than that cost, the re-armed expiry is
        already past when re-checked, so the handler re-enters itself.
        """
        features = self.kernel.features
        machine = self.kernel.machine
        cpu = machine.cpu
        depth = 0
        handler_clock = now
        while True:
            depth += 1
            timer.expirations += 1
            # The GPTIMER expiry arrives as IRQ 8 through the IRQMP; the
            # kernel takes the trap, acknowledges the line, and pends
            # the partition's virtual timer interrupt.
            machine.irq.raise_irq(HW_TIMER_IRQ)
            if depth == 1:
                cpu.take(Trap(TrapType.for_interrupt(HW_TIMER_IRQ), "timer expiry"))
            machine.irq.clear(HW_TIMER_IRQ)
            partition.virq_pending |= 1 << TIMER_VIRQ
            handler_clock += TIMER_HANDLER_COST_US
            if timer.interval_us <= 0:
                # One-shot (interval 0), or — on the vulnerable kernel —
                # a negative interval silently treated as one-shot
                # (defect XM-ST-3: the success code was already returned
                # by svc_set_timer without validation).
                timer.armed = False
                return
            timer.next_expiry_us += timer.interval_us
            next_deadline = self._deadline_for(partition, timer)
            if next_deadline > handler_clock:
                # Nominal periodic behaviour: hand the next expiry back
                # to the event queue and leave the handler.
                self._schedule_expiry(partition, timer)
                return
            # The next expiry is already expired by the time it is
            # checked: the handler is invoked again (defects XM-ST-1/2).
            if timer.clock_id == rc.XM_EXEC_CLOCK:
                # Exec-clock expiry arrives as a fresh timer trap while
                # the previous one still has traps disabled: processor
                # error mode; TSIM dies (XM-ST-2).
                trap = Trap(TrapType.for_interrupt(8), "timer trap re-entry")
                cpu.enter_trap(trap)
                cpu.enter_trap(Trap(TrapType.for_interrupt(8), "nested timer trap"))
                raise AssertionError("unreachable")  # pragma: no cover
            if depth > KERNEL_STACK_MAX_DEPTH:
                # HW-clock recursion overflows the kernel stack (XM-ST-1).
                self.stack_overflows += 1
                raise KernelPanic(
                    "kernel stack overflow: recursive timer handler "
                    f"(interval={timer.interval_us}us)"
                )
