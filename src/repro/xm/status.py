"""Hypercall status structures and their wire layouts.

Status hypercalls write packed structures into partition-supplied
buffers.  Each structure here knows its byte layout (big-endian, as on
SPARC) so the kernel can serialise it through the partition's address
space — which is exactly where bad status pointers from the fault
dictionaries get caught.

Each layout is compiled once into a ``struct.Struct`` at import time:
status reads sit on the campaign's hot path (one pack per
``XM_get_*_status`` invocation), and a precompiled struct skips the
per-call format-string parse.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

_U32 = ">I"
_S32 = ">i"
_S64 = ">q"


@dataclass
class XmSystemStatus:
    """``xmSystemStatus_t``: global health of the TSP system."""

    reset_counter: int = 0
    warm_reset_counter: int = 0
    current_plan: int = 0
    current_time_us: int = 0
    hm_events: int = 0

    _STRUCT = struct.Struct(">IIIqI")
    LAYOUT = _STRUCT.format
    SIZE = _STRUCT.size

    def pack(self) -> bytes:
        """Serialise to the wire layout."""
        return self._STRUCT.pack(
            self.reset_counter & 0xFFFFFFFF,
            self.warm_reset_counter & 0xFFFFFFFF,
            self.current_plan & 0xFFFFFFFF,
            self.current_time_us,
            self.hm_events & 0xFFFFFFFF,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "XmSystemStatus":
        """Deserialise from the wire layout."""
        return cls(*cls._STRUCT.unpack_from(data))


@dataclass
class XmPartitionStatus:
    """``xmPartitionStatus_t``: state of one partition."""

    ident: int = 0
    state: int = 0
    reset_counter: int = 0
    reset_status: int = 0
    exec_clock_us: int = 0

    _STRUCT = struct.Struct(">iIIIq")
    LAYOUT = _STRUCT.format
    SIZE = _STRUCT.size

    def pack(self) -> bytes:
        """Serialise to the wire layout."""
        return self._STRUCT.pack(
            self.ident,
            self.state & 0xFFFFFFFF,
            self.reset_counter & 0xFFFFFFFF,
            self.reset_status & 0xFFFFFFFF,
            self.exec_clock_us,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "XmPartitionStatus":
        """Deserialise from the wire layout."""
        return cls(*cls._STRUCT.unpack_from(data))


@dataclass
class XmPlanStatus:
    """``xmPlanStatus_t``: cyclic schedule state."""

    current_plan: int = 0
    requested_plan: int = 0
    current_slot: int = 0
    major_frame_count: int = 0

    _STRUCT = struct.Struct(">IIII")
    LAYOUT = _STRUCT.format
    SIZE = _STRUCT.size

    def pack(self) -> bytes:
        """Serialise to the wire layout."""
        return self._STRUCT.pack(
            self.current_plan & 0xFFFFFFFF,
            self.requested_plan & 0xFFFFFFFF,
            self.current_slot & 0xFFFFFFFF,
            self.major_frame_count & 0xFFFFFFFF,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "XmPlanStatus":
        """Deserialise from the wire layout."""
        return cls(*cls._STRUCT.unpack_from(data))


@dataclass
class XmPortStatus:
    """``xmPortStatus_t``: state of one communication port."""

    port_id: int = 0
    direction: int = 0
    pending_messages: int = 0
    last_message_size: int = 0
    last_timestamp_us: int = 0

    _STRUCT = struct.Struct(">iIIIq")
    LAYOUT = _STRUCT.format
    SIZE = _STRUCT.size

    def pack(self) -> bytes:
        """Serialise to the wire layout."""
        return self._STRUCT.pack(
            self.port_id,
            self.direction & 0xFFFFFFFF,
            self.pending_messages & 0xFFFFFFFF,
            self.last_message_size & 0xFFFFFFFF,
            self.last_timestamp_us,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "XmPortStatus":
        """Deserialise from the wire layout."""
        return cls(*cls._STRUCT.unpack_from(data))


@dataclass
class XmHmStatus:
    """``xmHmStatus_t``: health monitor log state."""

    total_events: int = 0
    unread_events: int = 0
    lost_events: int = 0

    _STRUCT = struct.Struct(">III")
    LAYOUT = _STRUCT.format
    SIZE = _STRUCT.size

    def pack(self) -> bytes:
        """Serialise to the wire layout."""
        return self._STRUCT.pack(
            self.total_events & 0xFFFFFFFF,
            self.unread_events & 0xFFFFFFFF,
            self.lost_events & 0xFFFFFFFF,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "XmHmStatus":
        """Deserialise from the wire layout."""
        return cls(*cls._STRUCT.unpack_from(data))


@dataclass
class XmHmLogEntry:
    """``xmHmLog_t``: one health monitor event record."""

    event_code: int = 0
    partition_id: int = 0
    timestamp_us: int = 0
    payload: int = 0

    _STRUCT = struct.Struct(">IiqI")
    LAYOUT = _STRUCT.format
    SIZE = _STRUCT.size

    def pack(self) -> bytes:
        """Serialise to the wire layout."""
        return self._STRUCT.pack(
            self.event_code & 0xFFFFFFFF,
            self.partition_id,
            self.timestamp_us,
            self.payload & 0xFFFFFFFF,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "XmHmLogEntry":
        """Deserialise from the wire layout."""
        return cls(*cls._STRUCT.unpack_from(data))


@dataclass
class XmTraceEvent:
    """``xmTraceEvent_t``: one trace record."""

    opcode: int = 0
    partition_id: int = 0
    timestamp_us: int = 0
    word: int = 0

    _STRUCT = struct.Struct(">IiqI")
    LAYOUT = _STRUCT.format
    SIZE = _STRUCT.size

    def pack(self) -> bytes:
        """Serialise to the wire layout."""
        return self._STRUCT.pack(
            self.opcode & 0xFFFFFFFF,
            self.partition_id,
            self.timestamp_us,
            self.word & 0xFFFFFFFF,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "XmTraceEvent":
        """Deserialise from the wire layout."""
        return cls(*cls._STRUCT.unpack_from(data))


@dataclass
class XmTraceStatus:
    """``xmTraceStatus_t``: one trace stream's state."""

    total_events: int = 0
    unread_events: int = 0
    lost_events: int = 0

    _STRUCT = struct.Struct(">III")
    LAYOUT = _STRUCT.format
    SIZE = _STRUCT.size

    def pack(self) -> bytes:
        """Serialise to the wire layout."""
        return self._STRUCT.pack(
            self.total_events & 0xFFFFFFFF,
            self.unread_events & 0xFFFFFFFF,
            self.lost_events & 0xFFFFFFFF,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "XmTraceStatus":
        """Deserialise from the wire layout."""
        return cls(*cls._STRUCT.unpack_from(data))
