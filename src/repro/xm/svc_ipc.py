"""Inter-Partition Communication hypercalls.

XtratuM channels are statically configured; partitions *open* ports onto
them at runtime and the kernel polices every transfer — message sizes,
directions and buffer ranges — so faults cannot propagate between
partitions through IPC.  The campaign raised zero issues here, and every
service below validates accordingly.

Two port kinds exist, as in ARINC-653: *sampling* (last-value semantics
with a refresh period) and *queuing* (bounded FIFO).
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.xm import rc
from repro.xm.config import ChannelConfig, PortConfig
from repro.xm.partition import Partition
from repro.xm.status import XmPortStatus
from repro.xm.usercopy import copy_from_user, copy_to_user, read_user_string

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel


@dataclass
class SamplingChannel:
    """Last-value channel state."""

    config: ChannelConfig
    message: bytes | None = None
    timestamp_us: int = 0
    writes: int = 0

    def store(self, data: bytes, now_us: int) -> None:
        """Overwrite the current value."""
        self.message = data
        self.timestamp_us = now_us
        self.writes += 1

    def is_valid(self, now_us: int) -> bool:
        """Whether the stored value is within the refresh period."""
        if self.message is None:
            return False
        if self.config.refresh_us <= 0:
            return True
        return now_us - self.timestamp_us <= self.config.refresh_us


@dataclass
class QueuingChannel:
    """Bounded FIFO channel state."""

    config: ChannelConfig
    queue: deque[tuple[bytes, int]] = field(default_factory=deque)
    sent: int = 0
    dropped: int = 0

    @property
    def full(self) -> bool:
        """Whether another message would exceed the configured depth."""
        return len(self.queue) >= self.config.depth

    def push(self, data: bytes, now_us: int) -> bool:
        """Append; False when full (kernel returns XM_NO_SPACE)."""
        if self.full:
            self.dropped += 1
            return False
        self.queue.append((data, now_us))
        self.sent += 1
        return True

    def pop(self) -> tuple[bytes, int] | None:
        """Remove the oldest message, None when empty."""
        return self.queue.popleft() if self.queue else None


@dataclass
class OpenPort:
    """One opened port of one partition."""

    descriptor: int
    owner_id: int
    config: PortConfig
    kind: str
    last_message_size: int = 0
    last_timestamp_us: int = 0


class IpcManager:
    """Owner of channels and the port services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.channels: dict[str, SamplingChannel | QueuingChannel] = {}
        for chan in kernel.config.channels:
            if chan.kind == "sampling":
                self.channels[chan.name] = SamplingChannel(chan)
            else:
                self.channels[chan.name] = QueuingChannel(chan)
        self._ports: dict[tuple[int, int], OpenPort] = {}

    # -- helpers ---------------------------------------------------------------

    def _port_config(self, caller: Partition, name: str) -> PortConfig | None:
        for port in caller.config.ports:
            if port.name == name:
                return port
        return None

    def _find_open(self, caller: Partition, desc: int) -> OpenPort | None:
        return self._ports.get((caller.ident, desc))

    def _open(self, caller: Partition, port_cfg: PortConfig, kind: str) -> int:
        for (owner, desc), port in self._ports.items():
            if owner == caller.ident and port.config.name == port_cfg.name:
                return desc  # idempotent open returns the same descriptor
        desc = len(caller.open_ports)
        caller.open_ports[desc] = port_cfg.name
        self._ports[(caller.ident, desc)] = OpenPort(desc, caller.ident, port_cfg, kind)
        return desc

    def open_port_by_name(self, caller: Partition, name: str) -> int | None:
        """Open a configured port directly (used by partition runtimes)."""
        port_cfg = self._port_config(caller, name)
        if port_cfg is None:
            return None
        chan = self.channels.get(port_cfg.channel)
        if chan is None:
            return None
        kind = "sampling" if isinstance(chan, SamplingChannel) else "queuing"
        return self._open(caller, port_cfg, kind)

    # -- sampling ----------------------------------------------------------------

    def svc_create_sampling_port(
        self,
        caller: Partition,
        name_ptr: int,
        max_msg_size: int,
        direction: int,
        refresh_period: int,
    ) -> int:
        """``XM_create_sampling_port(char *, xmSize_t, xm_u32_t, xmTime_t)``."""
        name = read_user_string(caller.address_space, name_ptr)
        if name is None:
            return rc.XM_INVALID_PARAM
        if direction not in (rc.XM_SOURCE_PORT, rc.XM_DESTINATION_PORT):
            return rc.XM_INVALID_PARAM
        if refresh_period < 0:
            return rc.XM_INVALID_PARAM
        port_cfg = self._port_config(caller, name)
        if port_cfg is None:
            return rc.XM_INVALID_CONFIG
        chan = self.channels.get(port_cfg.channel)
        if not isinstance(chan, SamplingChannel):
            return rc.XM_INVALID_CONFIG
        if direction != port_cfg.direction:
            return rc.XM_INVALID_CONFIG
        if max_msg_size != chan.config.max_message_size:
            return rc.XM_INVALID_CONFIG
        return self._open(caller, port_cfg, "sampling")

    def svc_write_sampling_message(
        self, caller: Partition, port_desc: int, msg_ptr: int, msg_size: int
    ) -> int:
        """``XM_write_sampling_message(xm_s32_t, void *, xmSize_t)``."""
        port = self._find_open(caller, port_desc)
        if port is None or port.kind != "sampling":
            return rc.XM_INVALID_PARAM
        if port.config.direction != rc.XM_SOURCE_PORT:
            return rc.XM_INVALID_MODE
        chan = self.channels[port.config.channel]
        assert isinstance(chan, SamplingChannel)
        if not 0 < msg_size <= chan.config.max_message_size:
            return rc.XM_INVALID_PARAM
        data = copy_from_user(caller.address_space, msg_ptr, msg_size)
        if data is None:
            return rc.XM_INVALID_PARAM
        now = self.kernel.sim.now_us
        chan.store(data, now)
        port.last_message_size = msg_size
        port.last_timestamp_us = now
        return rc.XM_OK

    def svc_read_sampling_message(
        self,
        caller: Partition,
        port_desc: int,
        msg_ptr: int,
        msg_size: int,
        flags_ptr: int,
    ) -> int:
        """``XM_read_sampling_message(xm_s32_t, void *, xmSize_t, xm_u32_t *)``."""
        port = self._find_open(caller, port_desc)
        if port is None or port.kind != "sampling":
            return rc.XM_INVALID_PARAM
        if port.config.direction != rc.XM_DESTINATION_PORT:
            return rc.XM_INVALID_MODE
        chan = self.channels[port.config.channel]
        assert isinstance(chan, SamplingChannel)
        if chan.message is None:
            return rc.XM_NO_ACTION
        if msg_size < len(chan.message):
            return rc.XM_INVALID_PARAM
        if not copy_to_user(caller.address_space, msg_ptr, chan.message):
            return rc.XM_INVALID_PARAM
        now = self.kernel.sim.now_us
        flags = 1 if chan.is_valid(now) else 0
        if not copy_to_user(caller.address_space, flags_ptr, struct.pack(">I", flags)):
            return rc.XM_INVALID_PARAM
        port.last_message_size = len(chan.message)
        port.last_timestamp_us = chan.timestamp_us
        return len(chan.message)

    # -- queuing ---------------------------------------------------------------------

    def svc_create_queuing_port(
        self,
        caller: Partition,
        name_ptr: int,
        max_no_msgs: int,
        max_msg_size: int,
        direction: int,
    ) -> int:
        """``XM_create_queuing_port(char *, xm_u32_t, xmSize_t, xm_u32_t)``."""
        name = read_user_string(caller.address_space, name_ptr)
        if name is None:
            return rc.XM_INVALID_PARAM
        if direction not in (rc.XM_SOURCE_PORT, rc.XM_DESTINATION_PORT):
            return rc.XM_INVALID_PARAM
        port_cfg = self._port_config(caller, name)
        if port_cfg is None:
            return rc.XM_INVALID_CONFIG
        chan = self.channels.get(port_cfg.channel)
        if not isinstance(chan, QueuingChannel):
            return rc.XM_INVALID_CONFIG
        if direction != port_cfg.direction:
            return rc.XM_INVALID_CONFIG
        if max_no_msgs != chan.config.depth:
            return rc.XM_INVALID_CONFIG
        if max_msg_size != chan.config.max_message_size:
            return rc.XM_INVALID_CONFIG
        return self._open(caller, port_cfg, "queuing")

    def svc_send_queuing_message(
        self, caller: Partition, port_desc: int, msg_ptr: int, msg_size: int
    ) -> int:
        """``XM_send_queuing_message(xm_s32_t, void *, xmSize_t)``."""
        port = self._find_open(caller, port_desc)
        if port is None or port.kind != "queuing":
            return rc.XM_INVALID_PARAM
        if port.config.direction != rc.XM_SOURCE_PORT:
            return rc.XM_INVALID_MODE
        chan = self.channels[port.config.channel]
        assert isinstance(chan, QueuingChannel)
        if not 0 < msg_size <= chan.config.max_message_size:
            return rc.XM_INVALID_PARAM
        data = copy_from_user(caller.address_space, msg_ptr, msg_size)
        if data is None:
            return rc.XM_INVALID_PARAM
        now = self.kernel.sim.now_us
        if not chan.push(data, now):
            return rc.XM_NO_SPACE
        port.last_message_size = msg_size
        port.last_timestamp_us = now
        return rc.XM_OK

    def svc_receive_queuing_message(
        self,
        caller: Partition,
        port_desc: int,
        msg_ptr: int,
        msg_size: int,
        flags_ptr: int,
    ) -> int:
        """``XM_receive_queuing_message(xm_s32_t, void *, xmSize_t, xm_u32_t *)``."""
        port = self._find_open(caller, port_desc)
        if port is None or port.kind != "queuing":
            return rc.XM_INVALID_PARAM
        if port.config.direction != rc.XM_DESTINATION_PORT:
            return rc.XM_INVALID_MODE
        chan = self.channels[port.config.channel]
        assert isinstance(chan, QueuingChannel)
        if not chan.queue:
            return rc.XM_NO_ACTION
        head, timestamp = chan.queue[0]
        if msg_size < len(head):
            return rc.XM_INVALID_PARAM
        if not copy_to_user(caller.address_space, msg_ptr, head):
            return rc.XM_INVALID_PARAM
        remaining = len(chan.queue) - 1
        if not copy_to_user(
            caller.address_space, flags_ptr, struct.pack(">I", remaining)
        ):
            return rc.XM_INVALID_PARAM
        chan.pop()
        port.last_message_size = len(head)
        port.last_timestamp_us = timestamp
        return len(head)

    # -- status / info ---------------------------------------------------------------

    def svc_get_port_status(self, caller: Partition, port_desc: int, status_ptr: int) -> int:
        """``XM_get_port_status(xm_s32_t, xmPortStatus_t *)``."""
        port = self._find_open(caller, port_desc)
        if port is None:
            return rc.XM_INVALID_PARAM
        chan = self.channels[port.config.channel]
        pending = len(chan.queue) if isinstance(chan, QueuingChannel) else (
            1 if chan.message is not None else 0
        )
        status = XmPortStatus(
            port_id=port.descriptor,
            direction=port.config.direction,
            pending_messages=pending,
            last_message_size=port.last_message_size,
            last_timestamp_us=port.last_timestamp_us,
        )
        if not copy_to_user(caller.address_space, status_ptr, status.pack()):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    def svc_flush_port(self, caller: Partition, port_desc: int) -> int:
        """``XM_flush_port(xm_s32_t portDesc)``: drop buffered messages."""
        port = self._find_open(caller, port_desc)
        if port is None:
            return rc.XM_INVALID_PARAM
        chan = self.channels[port.config.channel]
        if isinstance(chan, QueuingChannel):
            chan.queue.clear()
        else:
            chan.message = None
        return rc.XM_OK

    def svc_get_sampling_port_info(
        self, caller: Partition, name_ptr: int, info_ptr: int
    ) -> int:
        """``XM_get_sampling_port_info(char *, xmSamplingPortInfo_t *)``."""
        name = read_user_string(caller.address_space, name_ptr)
        if name is None:
            return rc.XM_INVALID_PARAM
        port_cfg = self._port_config(caller, name)
        if port_cfg is None:
            return rc.XM_INVALID_CONFIG
        chan = self.channels.get(port_cfg.channel)
        if not isinstance(chan, SamplingChannel):
            return rc.XM_INVALID_CONFIG
        info = struct.pack(
            ">III",
            chan.config.max_message_size,
            port_cfg.direction,
            chan.config.refresh_us & 0xFFFFFFFF,
        )
        if not copy_to_user(caller.address_space, info_ptr, info):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    def svc_get_queuing_port_info(
        self, caller: Partition, name_ptr: int, info_ptr: int
    ) -> int:
        """``XM_get_queuing_port_info(char *, xmQueuingPortInfo_t *)``."""
        name = read_user_string(caller.address_space, name_ptr)
        if name is None:
            return rc.XM_INVALID_PARAM
        port_cfg = self._port_config(caller, name)
        if port_cfg is None:
            return rc.XM_INVALID_CONFIG
        chan = self.channels.get(port_cfg.channel)
        if not isinstance(chan, QueuingChannel):
            return rc.XM_INVALID_CONFIG
        info = struct.pack(
            ">III",
            chan.config.max_message_size,
            port_cfg.direction,
            chan.config.depth,
        )
        if not copy_to_user(caller.address_space, info_ptr, info):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK
