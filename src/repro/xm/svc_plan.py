"""Plan Management hypercalls: cyclic schedule plan switching."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xm import rc
from repro.xm.partition import Partition
from repro.xm.status import XmPlanStatus
from repro.xm.usercopy import copy_to_user

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel


class PlanManager:
    """Owner of scheduling-plan services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def svc_switch_sched_plan(self, caller: Partition, plan_id: int) -> int:
        """``XM_switch_sched_plan(xm_u32_t planId)``.

        The switch is requested now and applied at the next major-frame
        boundary, preserving the current frame's temporal guarantees.
        """
        if not self.kernel.config.has_plan(plan_id):
            return rc.XM_INVALID_PARAM
        self.kernel.sched.request_plan_switch(plan_id)
        return rc.XM_OK

    def svc_get_plan_status(self, caller: Partition, status_ptr: int) -> int:
        """``XM_get_plan_status(xmPlanStatus_t *status)``."""
        sched = self.kernel.sched
        status = XmPlanStatus(
            current_plan=sched.current_plan_id,
            requested_plan=(
                sched.requested_plan_id
                if sched.requested_plan_id is not None
                else sched.current_plan_id
            ),
            current_slot=(sched.current_slot.slot_id if sched.current_slot else 0),
            major_frame_count=sched.major_frame_count,
        )
        if not copy_to_user(caller.address_space, status_ptr, status.pack()):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK
