"""Memory Management hypercalls.

``XM_memory_copy`` is a system-partition service for moving data between
partition spaces (e.g. software upload); it validates every byte of both
ranges against the *target partitions'* configured areas before copying.
The campaign ran 991 tests against it in the paper and raised zero
issues; the model validates accordingly.

``XM_update_page32`` pokes a 32-bit word with kernel rights — precisely
why the campaign excluded it (a stray poke corrupts the testbed).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sparc.memory import MemoryFault
from repro.xm import rc
from repro.xm.partition import Partition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel

#: Upper bound on one copy, mirroring the kernel's bounded-work rule.
MAX_COPY_BYTES = 1 << 20


class MemoryManager:
    """Owner of the memory services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.copies = 0

    def _resolve(self, caller: Partition, partition_id: int) -> Partition | None:
        if partition_id == rc.XM_PARTITION_SELF:
            return caller
        return self.kernel.partitions.get(partition_id)

    def svc_memory_copy(
        self,
        caller: Partition,
        dst_id: int,
        dst_addr: int,
        src_id: int,
        src_addr: int,
        size: int,
    ) -> int:
        """``XM_memory_copy(xm_s32_t, xmAddress_t, xm_s32_t, xmAddress_t, xmSize_t)``."""
        dst = self._resolve(caller, dst_id)
        src = self._resolve(caller, src_id)
        if dst is None or src is None:
            return rc.XM_INVALID_PARAM
        if size == 0 or size > MAX_COPY_BYTES:
            return rc.XM_INVALID_PARAM
        if not src.owns_area(src_addr, size):
            return rc.XM_INVALID_ADDRESS
        if not dst.owns_area(dst_addr, size):
            return rc.XM_INVALID_ADDRESS
        try:
            data = self.kernel.machine.memory.read(src_addr, size)
            self.kernel.machine.memory.write(dst_addr, data)
        except MemoryFault:
            # Configured-but-unmapped areas cannot occur after boot; this
            # is belt-and-braces, still a clean error to the caller.
            return rc.XM_INVALID_ADDRESS
        self.copies += 1
        return rc.XM_OK

    def svc_update_page32(self, caller: Partition, page_addr: int, value: int) -> int:
        """``XM_update_page32(xmAddress_t pageAddr, xm_u32_t value)``.

        Restricted to the caller's own areas and 4-byte alignment; with
        kernel rights otherwise (the reason it stayed out of campaign
        scope).
        """
        if page_addr % 4:
            return rc.XM_INVALID_PARAM
        if not caller.owns_area(page_addr, 4):
            return rc.XM_INVALID_ADDRESS
        try:
            self.kernel.machine.memory.write(
                page_addr, (value & 0xFFFFFFFF).to_bytes(4, "big")
            )
        except MemoryFault:
            return rc.XM_INVALID_ADDRESS
        return rc.XM_OK
