"""Kernel-internal control-flow exceptions.

Split from :mod:`repro.xm.kernel` so service managers can raise them
without importing the kernel module (avoiding an import cycle).
"""

from __future__ import annotations


class KernelPanic(Exception):
    """An unrecoverable kernel-internal error (system fatal error)."""


class NoReturnFromHypercall(Exception):
    """The hypercall does not return control to the calling partition.

    Raised for self-halt/suspend/reset, system resets, and for calls
    terminated by the Health Monitor (unhandled traps).
    """
