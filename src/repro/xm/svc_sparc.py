"""SPARC V8 specific hypercalls.

Para-virtualised processor services: port I/O (policed by the per-
partition I/O grants of the configuration), atomic read-modify-write on
partition memory, and the register-window / cache / trap helpers a SPARC
guest needs.  The trap-table services are implemented but stayed out of
campaign scope — relocating the testbed's trap handling would destroy the
harness itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sparc.iobus import IoFault
from repro.sparc.memory import MemoryFault
from repro.xm import rc
from repro.xm.partition import Partition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel


class SparcManager:
    """Owner of the SPARC-specific services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        #: (partition, trap number) -> handler address.
        self.trap_handlers: dict[tuple[int, int], int] = {}
        #: partition -> relocated trap base register.
        self.tbr: dict[int, int] = {}

    # -- port I/O -----------------------------------------------------------

    def _io_allowed(self, caller: Partition, port: int) -> bool:
        device = self.kernel.machine.iobus.device_at(port)
        if device is None:
            return False
        return device.name in caller.config.io_grants

    def svc_inport(self, caller: Partition, port: int) -> int:
        """``XM_sparc_inport(xmIoAddress_t port)``: returns the register.

        The register value is returned in the low 31 bits (descriptors
        are non-negative); errors are the usual negative codes.
        """
        if self.kernel.machine.iobus.device_at(port) is None:
            return rc.XM_INVALID_PARAM
        if not self._io_allowed(caller, port):
            return rc.XM_PERM_ERROR
        try:
            # The kernel performs the access after checking the grant.
            value = self.kernel.machine.iobus.read(port)
        except IoFault:
            return rc.XM_PERM_ERROR
        return value & 0x7FFFFFFF

    def svc_outport(self, caller: Partition, port: int, value: int) -> int:
        """``XM_sparc_outport(xmIoAddress_t port, xm_u32_t value)``."""
        if self.kernel.machine.iobus.device_at(port) is None:
            return rc.XM_INVALID_PARAM
        if not self._io_allowed(caller, port):
            return rc.XM_PERM_ERROR
        try:
            self.kernel.machine.iobus.write(port, value)
        except IoFault:
            return rc.XM_PERM_ERROR
        return rc.XM_OK

    # -- atomics --------------------------------------------------------------

    def _atomic(self, caller: Partition, address: int, fn) -> int:  # noqa: ANN001
        if address % 4:
            return rc.XM_INVALID_PARAM
        if not caller.owns_area(address, 4):
            return rc.XM_INVALID_ADDRESS
        try:
            old = int.from_bytes(self.kernel.machine.memory.read(address, 4), "big")
            new = fn(old) & 0xFFFFFFFF
            self.kernel.machine.memory.write(address, new.to_bytes(4, "big"))
        except MemoryFault:
            return rc.XM_INVALID_ADDRESS
        return rc.XM_OK

    def svc_atomic_add(self, caller: Partition, address: int, value: int) -> int:
        """``XM_sparc_atomic_add(xmAddress_t, xm_u32_t)``."""
        return self._atomic(caller, address, lambda old: old + value)

    def svc_atomic_and(self, caller: Partition, address: int, mask: int) -> int:
        """``XM_sparc_atomic_and(xmAddress_t, xm_u32_t)``."""
        return self._atomic(caller, address, lambda old: old & mask)

    def svc_atomic_or(self, caller: Partition, address: int, mask: int) -> int:
        """``XM_sparc_atomic_or(xmAddress_t, xm_u32_t)``."""
        return self._atomic(caller, address, lambda old: old | mask)

    # -- processor helpers -------------------------------------------------------

    def svc_flush_regwin(self, caller: Partition) -> int:
        """``XM_sparc_flush_regwin(void)``: spill register windows."""
        return rc.XM_OK

    def svc_flush_cache(self, caller: Partition) -> int:
        """``XM_sparc_flush_cache(void)``: flush I/D caches."""
        return rc.XM_OK

    def svc_enable_traps(self, caller: Partition) -> int:
        """``XM_sparc_enable_traps(void)``: set the virtual PSR.ET."""
        caller.virq_mask |= 1
        return rc.XM_OK

    def svc_disable_traps(self, caller: Partition) -> int:
        """``XM_sparc_disable_traps(void)``: clear the virtual PSR.ET."""
        caller.virq_mask &= ~1
        return rc.XM_OK

    def svc_get_psr(self, caller: Partition) -> int:
        """``XM_sparc_get_psr(void)``: the caller's virtual PSR word."""
        psr = 0x080  # PS bit: previous supervisor
        if caller.virq_mask & 1:
            psr |= 0x20  # ET
        return psr

    # -- trap table (out of campaign scope) ------------------------------------------

    def svc_install_trap_handler(
        self, caller: Partition, trap_nr: int, handler: int
    ) -> int:
        """``XM_sparc_install_trap_handler(xm_u32_t, xmAddress_t)``."""
        if not 0 <= trap_nr <= 255:
            return rc.XM_INVALID_PARAM
        if handler != 0 and not caller.owns_area(handler, 4):
            return rc.XM_INVALID_ADDRESS
        self.trap_handlers[(caller.ident, trap_nr)] = handler
        return rc.XM_OK

    def svc_set_tbr(self, caller: Partition, tbr: int) -> int:
        """``XM_sparc_set_tbr(xmAddress_t tbr)``."""
        if tbr % 4096:
            return rc.XM_INVALID_PARAM
        if not caller.owns_area(tbr, 4096):
            return rc.XM_INVALID_ADDRESS
        self.tbr[caller.ident] = tbr
        return rc.XM_OK
