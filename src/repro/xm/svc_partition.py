"""Partition Management hypercalls.

All services here validate their parameters fully — the campaign raised
zero issues in this category, and the model reflects that.  Operations a
partition applies to *itself* (halt/suspend/reset/shutdown) do not
return: that is documented behaviour the oracle knows about, not a
robustness failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xm import rc
from repro.xm.hm import HmEvent
from repro.xm.partition import Partition, PartitionState
from repro.xm.status import XmPartitionStatus
from repro.xm.usercopy import copy_to_user

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel


class PartitionManager:
    """Owner of the partition-control services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def _resolve(self, caller: Partition, partition_id: int) -> Partition | None:
        """Resolve an id; ``XM_PARTITION_SELF`` (-1) aliases the caller."""
        if partition_id == rc.XM_PARTITION_SELF:
            return caller
        return self.kernel.partitions.get(partition_id)

    def svc_get_partition_status(
        self, caller: Partition, partition_id: int, status_ptr: int
    ) -> int:
        """``XM_get_partition_status(xm_s32_t, xmPartitionStatus_t *)``."""
        target = self._resolve(caller, partition_id)
        if target is None:
            return rc.XM_INVALID_PARAM
        state_codes = {state: idx for idx, state in enumerate(PartitionState)}
        status = XmPartitionStatus(
            ident=target.ident,
            state=state_codes[target.state],
            reset_counter=target.reset_counter,
            reset_status=target.reset_status,
            exec_clock_us=target.exec_clock_us,
        )
        if not copy_to_user(caller.address_space, status_ptr, status.pack()):
            return rc.XM_INVALID_PARAM
        return rc.XM_OK

    def svc_halt_partition(self, caller: Partition, partition_id: int) -> int:
        """``XM_halt_partition(xm_s32_t partitionId)``."""
        target = self._resolve(caller, partition_id)
        if target is None:
            return rc.XM_INVALID_PARAM
        target.set_state(PartitionState.HALTED, reason=f"halted by p{caller.ident}")
        self.kernel.hm.raise_event(
            HmEvent.PARTITION_HALTED,
            target.ident,
            self.kernel.sim.now_us,
            detail=f"by partition {caller.ident}",
        )
        if target is caller:
            raise self.kernel.NoReturn("partition halted itself")
        return rc.XM_OK

    def svc_reset_partition(
        self, caller: Partition, partition_id: int, reset_mode: int, status: int
    ) -> int:
        """``XM_reset_partition(xm_s32_t, xm_u32_t mode, xm_u32_t status)``."""
        target = self._resolve(caller, partition_id)
        if target is None:
            return rc.XM_INVALID_PARAM
        if reset_mode not in (rc.XM_COLD_RESET, rc.XM_WARM_RESET):
            return rc.XM_INVALID_PARAM
        self.kernel.reset_partition(target, warm=reset_mode == rc.XM_WARM_RESET, status=status)
        if target is caller:
            raise self.kernel.NoReturn("partition reset itself")
        return rc.XM_OK

    def svc_resume_partition(self, caller: Partition, partition_id: int) -> int:
        """``XM_resume_partition(xm_s32_t partitionId)``."""
        target = self._resolve(caller, partition_id)
        if target is None:
            return rc.XM_INVALID_PARAM
        if target.state is not PartitionState.SUSPENDED:
            return rc.XM_NO_ACTION
        target.set_state(PartitionState.NORMAL)
        return rc.XM_OK

    def svc_suspend_partition(self, caller: Partition, partition_id: int) -> int:
        """``XM_suspend_partition(xm_s32_t partitionId)``."""
        target = self._resolve(caller, partition_id)
        if target is None:
            return rc.XM_INVALID_PARAM
        if not target.state.runnable():
            return rc.XM_NO_ACTION
        target.set_state(PartitionState.SUSPENDED)
        if target is caller:
            raise self.kernel.NoReturn("partition suspended itself")
        return rc.XM_OK

    def svc_shutdown_partition(self, caller: Partition, partition_id: int) -> int:
        """``XM_shutdown_partition(xm_s32_t partitionId)``.

        Shutdown is a *request*: the target gets a chance to terminate
        cleanly; the model transitions it directly to SHUTDOWN.
        """
        target = self._resolve(caller, partition_id)
        if target is None:
            return rc.XM_INVALID_PARAM
        target.set_state(PartitionState.SHUTDOWN, reason=f"shutdown by p{caller.ident}")
        if target is caller:
            raise self.kernel.NoReturn("partition shut itself down")
        return rc.XM_OK

    def svc_idle_self(self, caller: Partition) -> int:
        """``XM_idle_self(void)``: yield the remainder of the slot."""
        sched = self.kernel.sched
        if sched.current_slot is not None:
            remaining = sched.current_slot.duration_us - sched.slot_consumed_us
            if remaining > 0:
                sched.consume(remaining)
        return rc.XM_OK

    def _vcpu_check(self, vcpu_id: int) -> int | None:
        """Single-core target: only vCPU 0 exists."""
        if vcpu_id != 0:
            return rc.XM_INVALID_PARAM
        return None

    def svc_halt_vcpu(self, caller: Partition, vcpu_id: int) -> int:
        """``XM_halt_vcpu(xm_u32_t vcpuId)`` (single-core: vCPU 0 = self)."""
        err = self._vcpu_check(vcpu_id)
        if err is not None:
            return err
        return self.svc_halt_partition(caller, caller.ident)

    def svc_suspend_vcpu(self, caller: Partition, vcpu_id: int) -> int:
        """``XM_suspend_vcpu(xm_u32_t vcpuId)``."""
        err = self._vcpu_check(vcpu_id)
        if err is not None:
            return err
        return self.svc_suspend_partition(caller, caller.ident)

    def svc_resume_vcpu(self, caller: Partition, vcpu_id: int) -> int:
        """``XM_resume_vcpu(xm_u32_t vcpuId)``."""
        err = self._vcpu_check(vcpu_id)
        if err is not None:
            return err
        return self.svc_resume_partition(caller, caller.ident)
