"""Interrupt Management hypercalls.

XtratuM para-virtualises interrupts: partitions see *virtual* IRQ lines
the kernel routes, masks and pends on their behalf.  The hardware IRQMP
stays under exclusive kernel control — a partition only ever manipulates
its own virtual interrupt state, which is what keeps these services
robust (the campaign raised zero issues here).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xm import rc
from repro.xm.partition import Partition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.kernel import Kernel

#: Valid hardware-routable lines (LEON3 IRQMP lines 1-15).
HW_LINES = range(1, 16)
#: Valid extended (software) virtual lines.
EXTENDED_LINES = range(0, 32)
#: Routing types.
IRQ_TYPE_HW = 0
IRQ_TYPE_EXTENDED = 1


class IrqManager:
    """Owner of the virtual interrupt services."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        #: (partition, type, line) -> vector routing table.
        self.routes: dict[tuple[int, int, int], int] = {}

    def svc_route_irq(
        self, caller: Partition, irq_type: int, irq_line: int, vector: int
    ) -> int:
        """``XM_route_irq(xm_u32_t type, xm_u32_t line, xm_u32_t vector)``."""
        if irq_type == IRQ_TYPE_HW:
            if irq_line not in HW_LINES:
                return rc.XM_INVALID_PARAM
        elif irq_type == IRQ_TYPE_EXTENDED:
            if irq_line not in EXTENDED_LINES:
                return rc.XM_INVALID_PARAM
        else:
            return rc.XM_INVALID_PARAM
        if not 0 <= vector <= 255:
            return rc.XM_INVALID_PARAM
        self.routes[(caller.ident, irq_type, irq_line)] = vector
        return rc.XM_OK

    def _check_line(self, irq_line: int) -> bool:
        return irq_line in EXTENDED_LINES

    def svc_mask_irq(self, caller: Partition, irq_line: int) -> int:
        """``XM_mask_irq(xm_u32_t irqLine)``: mask a virtual line."""
        if not self._check_line(irq_line):
            return rc.XM_INVALID_PARAM
        caller.virq_mask &= ~(1 << irq_line)
        return rc.XM_OK

    def svc_unmask_irq(self, caller: Partition, irq_line: int) -> int:
        """``XM_unmask_irq(xm_u32_t irqLine)``: unmask a virtual line."""
        if not self._check_line(irq_line):
            return rc.XM_INVALID_PARAM
        caller.virq_mask |= 1 << irq_line
        return rc.XM_OK

    def svc_set_irqpend(self, caller: Partition, irq_line: int) -> int:
        """``XM_set_irqpend(xm_u32_t irqLine)``: pend a virtual line."""
        if not self._check_line(irq_line):
            return rc.XM_INVALID_PARAM
        caller.virq_pending |= 1 << irq_line
        return rc.XM_OK

    def svc_enable_irqs(self, caller: Partition) -> int:
        """``XM_enable_irqs(void)`` — parameter-less, out of scope."""
        caller.virq_mask |= 0xFFFFFFFF
        return rc.XM_OK
