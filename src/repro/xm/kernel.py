"""The XtratuM kernel core: boot, reset, dispatch, fault containment.

The kernel is the single supervisor-mode component.  Everything a
partition asks of it goes through :meth:`Kernel.hypercall`, which

1. charges the call's CPU cost against the running slot,
2. applies C argument conversion per the declared parameter types,
3. enforces the system-partition privilege check,
4. dispatches to the owning manager, and
5. contains faults: a :class:`~repro.sparc.memory.MemoryFault` escaping a
   service is an *unhandled trap* — the Health Monitor decides the
   action (halt the offending partition by default), and the hypercall
   never returns to the caller.

System resets (cold/warm) rebuild the partition world and restart the
cyclic schedule; every reset is recorded in :attr:`Kernel.reset_log`,
which is the campaign executor's ground-truth observation channel for
the ``XM_reset_system`` findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.sparc.memory import Access, AddressSpace, MemoryArea, MemoryFault
from repro.sparc.traps import Trap, TrapType
from repro.tsim.delta import Fields, capture_fields, restore_fields
from repro.xm import rc
from repro.xm.api import HypercallDef, hypercall_by_name
from repro.xm.config import XMConfig
from repro.xm.errors import KernelPanic, NoReturnFromHypercall
from repro.xm.hm import HealthMonitor, HmAction, HmEvent, HmRecord, KERNEL_SCOPE
from repro.xm.partition import Partition, PartitionState
from repro.xm.sched import CyclicScheduler
from repro.xm.svc_hm import HmManager
from repro.xm.svc_ipc import IpcManager
from repro.xm.svc_irq import IrqManager
from repro.xm.svc_memory import MemoryManager
from repro.xm.svc_misc import MiscManager
from repro.xm.svc_partition import PartitionManager
from repro.xm.svc_plan import PlanManager
from repro.xm.svc_sparc import SparcManager
from repro.xm.svc_system import SystemManager
from repro.xm.svc_time import TimeManager
from repro.xm.svc_trace import TraceManager
from repro.xm.vulns import KernelFeatures, VULNERABLE_VERSION
from repro.xtypes import default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tsim.machine import TargetMachine
    from repro.tsim.simulator import Simulator


@dataclass(frozen=True)
class ResetRecord:
    """One system reset observation (executor ground truth)."""

    time_us: int
    warm: bool
    source: str

    @property
    def kind(self) -> str:
        """``"warm"`` or ``"cold"``."""
        return "warm" if self.warm else "cold"


class Kernel:
    """One booted XtratuM instance."""

    #: CPU cost charged to the slot for every hypercall.
    HYPERCALL_COST_US = 20
    #: Latency of a system reset before the schedule restarts.
    RESET_LATENCY_US = 1_000

    #: The dispatch cache binds hypercall names to manager methods of
    #: *this* instance; an in-place reset keeps every manager object, so
    #: the cache stays valid and is preserved across delta resets.
    __delta_skip__ = ("_svc_cache",)

    NoReturn = NoReturnFromHypercall

    def __init__(
        self,
        machine: "TargetMachine",
        sim: "Simulator",
        config: XMConfig,
        apps: dict[str, Callable[[], object]] | None = None,
        version: str = VULNERABLE_VERSION,
    ) -> None:
        config.validate()
        self.machine = machine
        self.sim = sim
        self.config = config
        self.apps = dict(apps or {})
        self.features = KernelFeatures.for_version(version)
        self.types = default_registry()

        self.hm = HealthMonitor()
        for event_name, action_name in config.hm_actions.items():
            self.hm.actions[HmEvent[event_name]] = HmAction(action_name)

        self.partitions: dict[int, Partition] = {}
        self.kernel_space = AddressSpace("kernel", machine.memory)
        self.sched = CyclicScheduler(self)

        self.sysmgr = SystemManager(self)
        self.partmgr = PartitionManager(self)
        self.timemgr = TimeManager(self)
        self.planmgr = PlanManager(self)
        self.ipc = IpcManager(self)
        self.memmgr = MemoryManager(self)
        self.hmmgr = HmManager(self)
        self.tracemgr = TraceManager(self)
        self.irqmgr = IrqManager(self)
        self.miscmgr = MiscManager(self)
        self.sparcmgr = SparcManager(self)

        self._halted = False
        self._halt_reason: str | None = None
        # Dispatch cache: (bound service, per-param converters, arity,
        # system_only) by hypercall name — everything the dispatch fast
        # path needs, preflattened.  Rebuilt lazily, never snapshotted.
        self._svc_cache: dict[str, tuple[Callable, tuple, int, bool]] = {}
        self.boot_epoch = 0
        self.reset_counter = 0
        self.warm_reset_counter = 0
        self.reset_log: list[ResetRecord] = []
        self.hypercall_count = 0
        self._memory_mapped = False

    def __getstate__(self) -> dict:
        """Pickle without the dispatch cache (rebuilt on demand)."""
        state = self.__dict__.copy()
        state["_svc_cache"] = {}
        return state

    # -- lifecycle -----------------------------------------------------------

    @property
    def version(self) -> str:
        """Kernel version string (selects the feature set)."""
        return self.features.version

    @property
    def major_frame_us(self) -> int:
        """Active plan's major frame (simulator protocol)."""
        return self.sched.major_frame_us

    def boot(self) -> None:
        """Cold boot: map memory, build partitions, start the schedule."""
        self._map_memory()
        self._build_partitions()
        self.console(f"XM {self.version} boot: {len(self.partitions)} partitions")
        self.sched.start()

    def is_halted(self) -> bool:
        """Whether the kernel has fatally halted."""
        return self._halted

    def snapshot_constants(self) -> list[object]:
        """Objects a simulator snapshot shares by reference (never copies).

        Everything here is immutable after boot: the static configuration
        graph (frozen dataclasses), the type registry, and the feature
        set.  Mutable kernel state (HM log, partitions, schedulers) is
        deliberately absent — it must be deep-copied per restore.
        """
        cfg = self.config
        constants: list[object] = [cfg, self.types, self.features]
        constants.extend(cfg.kernel_areas)
        constants.extend(cfg.channels)
        for plan in cfg.plans:
            constants.append(plan)
            constants.extend(plan.slots)
        for part in cfg.partitions:
            constants.append(part)
            constants.extend(part.memory_areas)
            constants.extend(part.ports)
        return constants

    def snapshot_delta(self) -> Fields:
        """Mutable-state baseline for in-place delta resets.

        Counterpart of :meth:`snapshot_constants` on the delta-reset
        path: halt state, epoch/reset counters, the reset log, the
        hypercall counter and the partition table are captured (by
        reference — the journal reverts each referenced object itself);
        the dispatch cache is skipped because it survives resets intact.
        """
        return capture_fields(self, skip=self.__delta_skip__)

    def reset_from_delta(self, baseline: Fields) -> None:
        """Revert the kernel's own fields to an armed baseline."""
        restore_fields(self, baseline)

    @property
    def halt_reason(self) -> str | None:
        """Why the kernel halted, if it did."""
        return self._halt_reason

    def halt(self, reason: str) -> None:
        """Stop the system permanently (XM halt)."""
        if not self._halted:
            self._halted = True
            self._halt_reason = reason
            self.console(f"XM HALT: {reason}")

    def fatal(self, detail: str) -> None:
        """System fatal error: HM event, then halt (paper's 'XM halt')."""
        self.hm_raise(HmEvent.FATAL_ERROR, KERNEL_SCOPE, detail=detail)

    def _map_memory(self) -> None:
        if self._memory_mapped:
            return
        for area in self.config.kernel_areas:
            self._add_area(area.name, area.start, area.size, "kernel")
        for part in self.config.partitions:
            for area in part.memory_areas:
                self._add_area(area.name, area.start, area.size, part.name)
        self._memory_mapped = True

    def _add_area(self, name: str, start: int, size: int, owner: str) -> None:
        if not self.machine.ram_contains(start, size):
            raise KernelPanic(
                f"configured area {name} [{start:#x}+{size:#x}] outside board RAM"
            )
        self.machine.memory.add_area(MemoryArea(name, start, size, Access.RWX, owner))
        self.kernel_space.grant(name, Access.RWX)

    def _build_partitions(self) -> None:
        for part_cfg in self.config.partitions:
            space = AddressSpace(part_cfg.name, self.machine.memory)
            for area in part_cfg.memory_areas:
                space.grant(area.name, area.rights)
            partition = Partition(config=part_cfg, address_space=space)
            factory = self.apps.get(part_cfg.name)
            partition.app = factory() if factory is not None else None
            self.partitions[part_cfg.ident] = partition

    # -- resets ---------------------------------------------------------------

    def system_reset(self, warm: bool, source: str = "hypercall") -> None:
        """Perform a system reset and never return to the caller.

        Cold resets clear the HM log and zero RAM; warm resets preserve
        both.  Either way the partition world is rebuilt and the cyclic
        schedule restarts after the reset latency.
        """
        now = self.sim.now_us
        self.reset_log.append(ResetRecord(now, warm, source))
        self.console(f"XM {'warm' if warm else 'cold'} reset (source: {source})")
        self.boot_epoch += 1
        if warm:
            self.warm_reset_counter += 1
        else:
            self.reset_counter += 1
            self.hm.clear()
            self.machine.memory.clear()
        self.hm_raise(
            HmEvent.SYSTEM_RESET,
            KERNEL_SCOPE,
            detail=f"{'warm' if warm else 'cold'} reset",
        )
        self.sim.events.clear()
        self.sched.reset()
        self._build_partitions()
        self.sim.schedule_after(self.RESET_LATENCY_US, self.sched.restart,
                                name="reset.reboot")
        raise NoReturnFromHypercall(f"system {'warm' if warm else 'cold'} reset")

    # -- health monitor -------------------------------------------------------

    def hm_raise(
        self,
        event: HmEvent,
        partition_id: int,
        detail: str = "",
        payload: int = 0,
    ) -> HmRecord:
        """Raise an HM event and execute its configured action."""
        record = self.hm.raise_event(event, partition_id, self.sim.now_us, detail, payload)
        self.console(f"HM {event.name} p{partition_id}: {detail}")
        # The tracing facility mirrors HM activity into the kernel
        # stream, where a system partition can read it back.
        self.tracemgr.record(-1, opcode=event.value, partition_id=partition_id,
                             word=payload)
        self._apply_hm_action(record)
        return record

    def _apply_hm_action(self, record: HmRecord) -> None:
        action = record.action
        if action in (HmAction.IGNORE, HmAction.LOG, HmAction.PROPAGATE):
            return
        if action is HmAction.HALT_SYSTEM:
            self.halt(f"HM action for {record.event.name}: {record.detail}")
            return
        partition = self.partitions.get(record.partition_id)
        if partition is None:
            return
        if action is HmAction.HALT_PARTITION:
            partition.set_state(PartitionState.HALTED, reason=f"HM:{record.event.name}")
        elif action is HmAction.RESET_PARTITION_WARM:
            self.reset_partition(partition, warm=True, status=record.event.value)
        elif action is HmAction.RESET_PARTITION_COLD:
            self.reset_partition(partition, warm=False, status=record.event.value)

    def reset_partition(self, partition: Partition, warm: bool, status: int = 0) -> None:
        """Rebuild one partition (app recreated, counters bumped)."""
        partition.reset(warm, status)
        factory = self.apps.get(partition.name)
        partition.app = factory() if factory is not None else None
        self.hm.raise_event(
            HmEvent.PARTITION_RESET,
            partition.ident,
            self.sim.now_us,
            detail="warm" if warm else "cold",
        )

    # -- dispatch --------------------------------------------------------------

    def hypercall(self, caller: Partition, name: str, args: tuple[int, ...] = ()) -> int:
        """Dispatch one hypercall from ``caller``.

        Returns the service's return code; raises
        :class:`NoReturnFromHypercall` when control does not come back.
        """
        # consume(HYPERCALL_COST_US), inlined: this is the hottest call
        # site in the simulator and the cost is a positive constant.
        self.sched.slot_consumed_us += self.HYPERCALL_COST_US
        self.hypercall_count += 1
        entry = self._svc_cache.get(name)
        if entry is None:
            entry = self._cache_service(name)
            if entry is None:
                return rc.XM_UNKNOWN_HYPERCALL
        service, converters, arity, system_only = entry
        if len(args) != arity:
            return rc.XM_INVALID_PARAM
        if system_only and not caller.is_system:
            return rc.XM_PERM_ERROR
        converted = [
            int(value) & 0xFFFFFFFF if convert is None else convert(int(value))
            for convert, value in zip(converters, args)
        ]
        try:
            result = service(caller, *converted)
        except NoReturnFromHypercall:
            raise
        except MemoryFault as fault:
            self._unhandled_trap(caller, fault)
            raise NoReturnFromHypercall(f"unhandled trap in {name}: {fault}") from fault
        except KernelPanic as panic:
            self.fatal(str(panic))
            raise NoReturnFromHypercall(f"kernel panic in {name}: {panic}") from panic
        return int(result)

    def hypercall_prepared(self, caller: Partition, prepared) -> int:  # noqa: ANN001
        """Dispatch a pre-compiled hypercall (see :mod:`repro.fault.plan`).

        ``prepared`` carries what a :class:`CompiledPlan` resolved once
        per suite: the converted argument list and the statically
        decidable prechecks (unknown hypercall, arity).  Semantics are
        identical to :meth:`hypercall` — cost accounting and the call
        counter tick first, the privilege check still consults the live
        caller, and fault containment is unchanged.
        """
        self.sched.slot_consumed_us += self.HYPERCALL_COST_US
        self.hypercall_count += 1
        precheck = prepared.precheck_rc
        if precheck is not None:
            return precheck
        if prepared.system_only and not caller.is_system:
            return rc.XM_PERM_ERROR
        name = prepared.function
        entry = self._svc_cache.get(name)
        if entry is None:
            entry = self._cache_service(name)
        service = entry[0]
        try:
            result = service(caller, *prepared.converted)
        except NoReturnFromHypercall:
            raise
        except MemoryFault as fault:
            self._unhandled_trap(caller, fault)
            raise NoReturnFromHypercall(f"unhandled trap in {name}: {fault}") from fault
        except KernelPanic as panic:
            self.fatal(str(panic))
            raise NoReturnFromHypercall(f"kernel panic in {name}: {panic}") from panic
        return int(result)

    def _cache_service(self, name: str) -> tuple[Callable, tuple, int, bool] | None:
        """Build (and memoize) one dispatch-cache entry; None if unknown."""
        try:
            hdef = hypercall_by_name(name)
        except KeyError:
            return None
        converters = tuple(
            None
            if param.is_pointer or param.type_name not in self.types
            else self.types.descriptor(param.type_name).convert
            for param in hdef.params
        )
        entry = (
            self._resolve_service(hdef),
            converters,
            hdef.arity,
            hdef.system_only,
        )
        self._svc_cache[name] = entry
        return entry

    def _convert_args(self, hdef: HypercallDef, args: tuple[int, ...]) -> list[int]:
        converted: list[int] = []
        for param, value in zip(hdef.params, args):
            if param.is_pointer or param.type_name not in self.types:
                # Pointers travel as 32-bit unsigned machine words.
                converted.append(int(value) & 0xFFFFFFFF)
            else:
                converted.append(self.types.descriptor(param.type_name).convert(int(value)))
        return converted

    def _resolve_service(self, hdef: HypercallDef):  # noqa: ANN202
        mgr_name, method_name = hdef.service.split(".")
        manager = getattr(self, mgr_name)
        return getattr(manager, method_name)

    def _unhandled_trap(self, caller: Partition, fault: MemoryFault) -> None:
        """Model a data-access exception taken in kernel context."""
        trap = Trap(TrapType.DATA_ACCESS_EXCEPTION, str(fault), fault.address)
        self.machine.cpu.enter_trap(trap)
        try:
            self.hm_raise(
                HmEvent.UNHANDLED_TRAP,
                caller.ident,
                detail=f"data access exception: {fault}",
                payload=fault.address & 0xFFFFFFFF,
            )
        finally:
            if self.machine.cpu.trap_depth:
                self.machine.cpu.exit_trap()

    # -- console ----------------------------------------------------------------

    def console(self, text: str) -> None:
        """Kernel console line via the board UART."""
        self.machine.uart.write(text + "\n", self.sim.now_us, source="kernel")
