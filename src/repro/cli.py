"""Command-line front end: ``repro-campaign``.

Mirrors the paper's shell-script automation: a whole campaign —
generation, execution, log analysis and reporting — runs with no
intervention from the test administrator.

Subcommands::

    repro-campaign run [--version V] [--functions F1,F2] [--processes N]
                       [--shard-size K] [--frames N]
                       [--strategy cartesian|pairwise|random]
                       [--log out.jsonl] [--resume] [--timeout-s T]
                       [--log-fsync] [--chaos SEED] [--quarantine Q.json]
                       [--max-attempts N] [--quorum N]
    repro-campaign report --log out.jsonl
    repro-campaign quarantine --file Q.json [--remove ID | --clear]
    repro-campaign tables            # Table I, Table II, Fig. 8, XML excerpts
    repro-campaign phantom           # parameter-less coverage extension
    repro-campaign results ingest --db wh.sqlite --log out.jsonl
    repro-campaign results query|diff|drift|dashboard --db wh.sqlite ...
    repro-campaign fabric run --workers N [campaign options]
    repro-campaign fabric serve --bind HOST:PORT [campaign options]
    repro-campaign fabric work --connect HOST:PORT [--name NAME]

``--chaos SEED`` arms the failpoint layer (seeded faults injected into
the campaign runner itself; see :mod:`repro.fault.failpoints`): an
interrupted run exits with status 3 and resumes losslessly with
``--resume``.
"""

from __future__ import annotations

import argparse
import sys

from repro.fault import report
from repro.fault.campaign import Campaign
from repro.fault.combinator import STRATEGIES as _STRATEGIES
from repro.fault.phantom import PhantomCampaign
from repro.fault.testlog import CampaignLog
from repro.xm.vulns import FIXED_VERSION, VULNERABLE_VERSION


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Separation kernel robustness testing (XtratuM case study)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a robustness campaign")
    run.add_argument(
        "--version",
        default=VULNERABLE_VERSION,
        choices=[VULNERABLE_VERSION, FIXED_VERSION],
        help="kernel version under test",
    )
    run.add_argument(
        "--functions",
        default=None,
        help="comma-separated hypercall subset (default: all tested)",
    )
    run.add_argument("--processes", type=int, default=None, help="parallel workers")
    run.add_argument(
        "--shard-size",
        dest="shard_size",
        type=int,
        default=None,
        help="specs per parallel pool task (default: auto-sized batches; "
        "1 = per-spec dispatch)",
    )
    run.add_argument("--frames", type=int, default=2, help="major frames per test")
    run.add_argument(
        "--warm-boot",
        dest="warm_boot",
        action="store_true",
        default=True,
        help="boot once per configuration, snapshot, restore per test (default)",
    )
    run.add_argument(
        "--cold-boot",
        dest="warm_boot",
        action="store_false",
        help="pack and boot a fresh system for every test",
    )
    run.add_argument(
        "--delta-reset",
        dest="delta_reset",
        action="store_true",
        default=True,
        help="revert warm-boot state in place between tests via the "
        "dirty-tracking journal, falling back to snapshot restores "
        "when a run cannot be trusted (default)",
    )
    run.add_argument(
        "--no-delta-reset",
        dest="delta_reset",
        action="store_false",
        help="always restore from the pickled snapshot between tests",
    )
    run.add_argument(
        "--journal-budget",
        dest="journal_budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="dirty-memory bytes a delta reset may revert before "
        "falling back to a full restore (default 1 MiB)",
    )
    run.add_argument(
        "--verify-reset",
        dest="verify_reset",
        action="store_true",
        help="run every test a second time on a fresh snapshot restore "
        "and fail on any record divergence (delta-reset audit mode)",
    )
    run.add_argument(
        "--compiled-plan",
        dest="compiled_plan",
        action="store_true",
        default=True,
        help="compile the suites once (resolved arguments, dispatch "
        "prechecks, record skeletons) instead of re-deriving them "
        "per test (default)",
    )
    run.add_argument(
        "--no-compiled-plan",
        dest="compiled_plan",
        action="store_false",
        help="re-derive every test's arguments and expectations per run",
    )
    run.add_argument(
        "--batch-hypercalls",
        dest="batch_hypercalls",
        action="store_true",
        default=True,
        help="execute consecutive same-hypercall specs as one batched "
        "pass through a single armed simulator loop (default; needs "
        "--compiled-plan)",
    )
    run.add_argument(
        "--no-batch-hypercalls",
        dest="batch_hypercalls",
        action="store_false",
        help="run every planned spec through its own executor pass",
    )
    run.add_argument(
        "--verify-plan",
        dest="verify_plan",
        action="store_true",
        help="run every planned test through the uncompiled path too "
        "and fail on any record divergence (compiled-plan audit mode)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="report a per-phase wall-time breakdown "
        "(bringup/run/record/reset) after the campaign",
    )
    run.add_argument(
        "--strategy",
        default="cartesian",
        choices=sorted(_STRATEGIES),
        help="dataset generation strategy",
    )
    run.add_argument(
        "--log",
        default=None,
        help="campaign log (JSONL), streamed per record during execution",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="continue from the records already in --log (lossless restart)",
    )
    run.add_argument(
        "--timeout-s",
        dest="timeout_s",
        type=float,
        default=None,
        help="per-test wall-clock watchdog in seconds (default: none)",
    )
    run.add_argument(
        "--log-fsync",
        dest="log_fsync",
        action="store_true",
        help="fsync the streaming log on every checkpoint "
        "(durable against host power loss, not just process crashes)",
    )
    run.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="arm every failpoint probabilistically from this seed "
        "(injects faults into the campaign runner itself; an "
        "interrupted run exits 3 and resumes with --resume)",
    )
    run.add_argument(
        "--chaos-rate",
        dest="chaos_rate",
        type=float,
        default=None,
        metavar="P",
        help="per-hit fire probability for --chaos (default 0.05)",
    )
    run.add_argument(
        "--quarantine",
        default=None,
        metavar="FILE",
        help="persistent quarantine list (JSON): confirmed killer specs "
        "are added to it and skipped-with-record on later runs",
    )
    run.add_argument(
        "--max-attempts",
        dest="max_attempts",
        type=int,
        default=None,
        help="runs a suspect worker_killed/watchdog_expired verdict may "
        "consume (default 3; 1 = first observation is terminal)",
    )
    run.add_argument(
        "--quorum",
        type=int,
        default=None,
        help="agreeing lethal observations that decide a verdict "
        "(default 2; must be <= --max-attempts)",
    )
    run.add_argument("--dossier", default=None, help="write a Markdown dossier")
    run.add_argument("--quiet", action="store_true", help="suppress progress")

    rep = sub.add_parser("report", help="re-analyse a saved campaign log")
    rep.add_argument("--log", required=True, help="JSONL log to analyse")
    rep.add_argument(
        "--version",
        default=VULNERABLE_VERSION,
        choices=[VULNERABLE_VERSION, FIXED_VERSION],
        help="kernel version the log was recorded against",
    )

    quarantine = sub.add_parser(
        "quarantine", help="review or edit a killer-quarantine file"
    )
    quarantine.add_argument(
        "--file", required=True, help="quarantine list (JSON)"
    )
    quarantine.add_argument(
        "--remove",
        default=None,
        metavar="TEST_ID",
        help="release one spec from quarantine",
    )
    quarantine.add_argument(
        "--clear", action="store_true", help="release every quarantined spec"
    )

    sub.add_parser("tables", help="print Table I, Table II, Fig. 8 and XML excerpts")
    sub.add_parser("phantom", help="run the phantom-parameter extension")

    truth = sub.add_parser(
        "truthbase", help="dry run: export the documented expectations (no execution)"
    )
    truth.add_argument("--out", required=True, help="truth base output (JSONL)")
    truth.add_argument(
        "--version",
        default=VULNERABLE_VERSION,
        choices=[VULNERABLE_VERSION, FIXED_VERSION],
    )
    truth.add_argument("--functions", default=None)

    feed = sub.add_parser(
        "feedback", help="rank dictionary values by the failures they exposed"
    )
    feed.add_argument("--log", required=True, help="campaign log to mine (JSONL)")
    feed.add_argument("--top", type=int, default=15)

    cmp_ = sub.add_parser(
        "compare", help="compare two campaign logs (e.g. 3.4.0 vs 3.4.1)"
    )
    cmp_.add_argument("--left", required=True, help="baseline log (JSONL)")
    cmp_.add_argument("--right", required=True, help="candidate log (JSONL)")
    cmp_.add_argument("--left-version", default=VULNERABLE_VERSION)
    cmp_.add_argument("--right-version", default=FIXED_VERSION)

    results = sub.add_parser(
        "results", help="campaign results warehouse (SQLite over JSONL logs)"
    )
    results_sub = results.add_subparsers(dest="results_command", required=True)

    ingest = results_sub.add_parser(
        "ingest", help="append a campaign log to the warehouse (idempotent)"
    )
    ingest.add_argument("--db", required=True, help="warehouse database file")
    ingest.add_argument("--log", required=True, help="campaign log (JSONL)")
    ingest.add_argument(
        "--campaign-id",
        dest="campaign_id",
        default=None,
        help="campaign identity (default: the log file's stem)",
    )
    ingest.add_argument(
        "--strategy",
        default="",
        help="generator name/revision to record as provenance",
    )

    query = results_sub.add_parser(
        "query", help="list campaigns or one campaign's verdict summary"
    )
    query.add_argument("--db", required=True, help="warehouse database file")
    query.add_argument(
        "--campaign",
        default=None,
        help="show this campaign's verdict histogram instead of the list",
    )

    diff = results_sub.add_parser(
        "diff", help="spec-by-spec verdict diff between two campaigns"
    )
    diff.add_argument("--db", required=True, help="warehouse database file")
    diff.add_argument("--left", required=True, help="baseline campaign id")
    diff.add_argument("--right", required=True, help="candidate campaign id")

    drift = results_sub.add_parser(
        "drift", help="per-spec verdict churn across all ingested runs"
    )
    drift.add_argument("--db", required=True, help="warehouse database file")
    drift.add_argument(
        "--top",
        type=int,
        default=20,
        help="flaky specs to list after the drifted ones (default 20)",
    )

    dashboard = results_sub.add_parser(
        "dashboard", help="export the warehouse as HTML (and optionally JSON)"
    )
    dashboard.add_argument("--db", required=True, help="warehouse database file")
    dashboard.add_argument("--out", required=True, help="HTML output path")
    dashboard.add_argument(
        "--json", dest="json_out", default=None, help="JSON output path"
    )

    fabric = sub.add_parser(
        "fabric", help="distributed campaign fabric (socket coordinator + workers)"
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)

    def _fabric_campaign_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--version",
            default=VULNERABLE_VERSION,
            choices=[VULNERABLE_VERSION, FIXED_VERSION],
            help="kernel version under test",
        )
        p.add_argument(
            "--functions",
            default=None,
            help="comma-separated hypercall subset (default: all tested)",
        )
        p.add_argument(
            "--frames", type=int, default=2, help="major frames per test"
        )
        p.add_argument(
            "--strategy",
            default="cartesian",
            choices=sorted(_STRATEGIES),
            help="dataset generation strategy",
        )
        p.add_argument(
            "--log",
            default=None,
            help="campaign log (JSONL), streamed per record during execution",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="continue from the records already in --log",
        )
        p.add_argument(
            "--log-fsync", dest="log_fsync", action="store_true",
            help="fsync the streaming log on every checkpoint",
        )
        p.add_argument(
            "--timeout-s", dest="timeout_s", type=float, default=None,
            help="per-test wall-clock watchdog in seconds (default: none)",
        )
        p.add_argument(
            "--shard-size", dest="shard_size", type=int, default=None,
            help="specs per lease (default: auto-sized shards)",
        )
        p.add_argument(
            "--quarantine", default=None, metavar="FILE",
            help="persistent quarantine list (JSON)",
        )
        p.add_argument(
            "--max-attempts", dest="max_attempts", type=int, default=None,
            help="runs a suspect worker_killed verdict may consume "
            "(default 3; 1 = first observation is terminal)",
        )
        p.add_argument(
            "--quorum", type=int, default=None,
            help="agreeing lethal observations that decide a verdict "
            "(default 2; must be <= --max-attempts)",
        )
        p.add_argument(
            "--batch-records", dest="batch_records", type=int, default=None,
            help="records per data-plane frame (default 32)",
        )
        p.add_argument(
            "--heartbeat-s", dest="heartbeat_s", type=float, default=None,
            help="worker heartbeat cadence in seconds (default 2)",
        )
        p.add_argument(
            "--lease-timeout-s", dest="lease_timeout_s", type=float,
            default=None,
            help="seconds a lease may stall before its worker is "
            "declared lost (default 60)",
        )
        p.add_argument("--quiet", action="store_true", help="suppress progress")

    fabric_run = fabric_sub.add_parser(
        "run", help="coordinator + N local loopback worker agents, one shot"
    )
    fabric_run.add_argument(
        "--workers", type=int, default=2, help="local worker agents to spawn"
    )
    _fabric_campaign_options(fabric_run)

    serve = fabric_sub.add_parser(
        "serve", help="coordinator only; start workers with `fabric work`"
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT to listen on (port 0 picks a free port)",
    )
    _fabric_campaign_options(serve)

    work = fabric_sub.add_parser(
        "work", help="one worker agent serving a coordinator"
    )
    work.add_argument(
        "--connect", required=True, help="coordinator HOST:PORT"
    )
    work.add_argument(
        "--name", default=None, help="worker name (default: host-pid)"
    )
    work.add_argument(
        "--no-reconnect",
        dest="no_reconnect",
        action="store_true",
        help="exit when the coordinator connection drops instead of retrying",
    )
    work.add_argument(
        "--heartbeat-s", dest="heartbeat_s", type=float, default=None,
        help="heartbeat cadence in seconds (default 2)",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    functions = tuple(args.functions.split(",")) if args.functions else None
    campaign_kwargs = {}
    if args.journal_budget is not None:
        campaign_kwargs["journal_budget"] = args.journal_budget
    campaign = Campaign(
        functions=functions,
        kernel_version=args.version,
        frames=args.frames,
        warm_boot=args.warm_boot,
        delta_reset=args.delta_reset,
        verify_reset=args.verify_reset,
        compiled_plan=args.compiled_plan,
        batch_hypercalls=args.batch_hypercalls,
        verify_plan=args.verify_plan,
        profile=args.profile,
        strategy=_STRATEGIES[args.strategy](),
        **campaign_kwargs,
    )
    total = campaign.total_tests()
    print(f"# campaign: {total} tests on XtratuM {args.version}", file=sys.stderr)

    resume_log = None
    if args.resume:
        if not args.log:
            print("error: --resume requires --log", file=sys.stderr)
            return 2
        from pathlib import Path

        if Path(args.log).exists():
            resume_log = CampaignLog.load(args.log)
            print(
                f"# resuming: {len(resume_log)} records already in {args.log}",
                file=sys.stderr,
            )
    elif args.log:
        from pathlib import Path

        # A fresh run must not stream into a previous run's file: the
        # stream dedups by test id, so stale records would silently
        # shadow this run's results.  Move the old log aside.
        log_path = Path(args.log)
        if log_path.exists():
            import os

            stale = log_path.with_name(log_path.name + ".prev")
            os.replace(log_path, stale)
            print(
                f"# existing {args.log} moved to {stale} "
                "(use --resume to continue it instead)",
                file=sys.stderr,
            )

    def progress(done: int, out_of: int, record) -> None:  # noqa: ANN001
        if not args.quiet and done % 200 == 0:
            print(f"#   {done}/{out_of} ...", file=sys.stderr)

    retry_policy = None
    if args.max_attempts is not None or args.quorum is not None:
        from repro.fault.resilience import RetryPolicy

        max_attempts = args.max_attempts if args.max_attempts is not None else 3
        quorum = (
            args.quorum if args.quorum is not None else min(2, max_attempts)
        )
        retry_policy = RetryPolicy(max_attempts=max_attempts, quorum=quorum)

    import os

    from repro.fault import failpoints

    chaos_env_before = os.environ.get(failpoints.ENV_VAR)
    if args.chaos is not None:
        # Armed through the environment so forked pool workers inherit
        # the same seeded fault schedule as the parent.
        rate = (
            args.chaos_rate
            if args.chaos_rate is not None
            else failpoints.DEFAULT_CHAOS_RATE
        )
        os.environ[failpoints.ENV_VAR] = f"chaos:{args.chaos}:{rate}"
        print(
            f"# chaos: failpoints armed (seed {args.chaos}, rate {rate})",
            file=sys.stderr,
        )
    try:
        result = campaign.run(
            processes=args.processes,
            progress=progress,
            resume_from=resume_log,
            log_path=args.log,
            timeout_s=args.timeout_s,
            shard_size=args.shard_size,
            retry_policy=retry_policy,
            quarantine_path=args.quarantine,
            log_fsync=args.log_fsync,
        )
    except failpoints.ChaosError as exc:
        print(f"# chaos: campaign interrupted by injected fault: {exc}", file=sys.stderr)
        if args.log:
            print(
                f"# completed records are checkpointed in {args.log}; "
                "rerun with --resume (without --chaos) to finish",
                file=sys.stderr,
            )
        return 3
    finally:
        if args.chaos is not None:
            if chaos_env_before is None:
                os.environ.pop(failpoints.ENV_VAR, None)
            else:
                os.environ[failpoints.ENV_VAR] = chaos_env_before
    reset_modes = result.execution_stats.get("reset_modes") or {}
    if reset_modes:
        breakdown = ", ".join(
            f"{name}={reset_modes[name]}"
            for name in (
                "delta",
                "restore",
                "cold",
                "delta_fallbacks",
                "verified",
                "plan_verified",
            )
            if name in reset_modes
        )
        print(f"# reset modes: {breakdown}", file=sys.stderr)
    phase_times = result.execution_stats.get("phase_times") or {}
    if phase_times:
        executed = max(len(result.log), 1)
        breakdown = ", ".join(
            f"{name}={phase_times[name] * 1e6 / executed:.1f}us"
            for name in ("bringup", "run", "record", "reset")
            if name in phase_times
        )
        print(f"# phase times (per test): {breakdown}", file=sys.stderr)
    if args.log:
        # The stream already checkpointed every record; the final save
        # rewrites the file atomically in canonical spec order.
        result.log.save(args.log)
        print(f"# log written to {args.log}", file=sys.stderr)
    if args.dossier:
        from repro.fault.dossier import write_dossier

        write_dossier(result, args.dossier, campaign)
        print(f"# dossier written to {args.dossier}", file=sys.stderr)
    print(report.campaign_summary(result))
    print()
    print(report.table3(result))
    print()
    print(report.issues_report(result))
    return 0


def _parse_endpoint(value: str) -> tuple[str, int]:
    """``HOST:PORT`` -> (host, port); IPv6 hosts may be bracketed."""
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"error: expected HOST:PORT, got {value!r}")
    return host.strip("[]") or "127.0.0.1", int(port)


def _resume_or_rotate_log(args: argparse.Namespace) -> CampaignLog | None:
    """The run/fabric ``--log``/``--resume`` contract, shared.

    With ``--resume``, load the partial log (requires ``--log``); without
    it, move an existing log aside so stale records cannot shadow this
    run's results.  Returns the log to resume from, or None.
    """
    from pathlib import Path

    if args.resume:
        if not args.log:
            raise SystemExit("error: --resume requires --log")
        if Path(args.log).exists():
            resume_log = CampaignLog.load(args.log)
            print(
                f"# resuming: {len(resume_log)} records already in {args.log}",
                file=sys.stderr,
            )
            return resume_log
        return None
    if args.log:
        log_path = Path(args.log)
        if log_path.exists():
            import os

            stale = log_path.with_name(log_path.name + ".prev")
            os.replace(log_path, stale)
            print(
                f"# existing {args.log} moved to {stale} "
                "(use --resume to continue it instead)",
                file=sys.stderr,
            )
    return None


def _retry_policy(args: argparse.Namespace):  # noqa: ANN202
    """Build the RetryPolicy from --max-attempts/--quorum (None = default)."""
    if args.max_attempts is None and args.quorum is None:
        return None
    from repro.fault.resilience import RetryPolicy

    max_attempts = args.max_attempts if args.max_attempts is not None else 3
    quorum = args.quorum if args.quorum is not None else min(2, max_attempts)
    return RetryPolicy(max_attempts=max_attempts, quorum=quorum)


def _cmd_fabric(args: argparse.Namespace) -> int:
    if args.fabric_command == "work":
        from repro.fabric import FabricError, WorkerAgent

        host, port = _parse_endpoint(args.connect)
        kwargs = {}
        if args.heartbeat_s is not None:
            kwargs["heartbeat_s"] = args.heartbeat_s
        try:
            WorkerAgent(
                host,
                port,
                name=args.name,
                reconnect=not args.no_reconnect,
                **kwargs,
            ).run()
        except FabricError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    from repro.fabric import FabricError, coordinate

    functions = tuple(args.functions.split(",")) if args.functions else None
    campaign = Campaign(
        functions=functions,
        kernel_version=args.version,
        frames=args.frames,
        strategy=_STRATEGIES[args.strategy](),
    )
    total = campaign.total_tests()
    resume_log = _resume_or_rotate_log(args)

    if args.fabric_command == "serve":
        bind = _parse_endpoint(args.bind)
        workers = 0
    else:  # fabric run
        bind = ("127.0.0.1", 0)
        workers = args.workers
    print(
        f"# fabric: {total} tests on XtratuM {args.version} "
        f"({workers or 'external'} worker(s))",
        file=sys.stderr,
    )

    def progress(done: int, out_of: int, record) -> None:  # noqa: ANN001
        if not args.quiet and done % 200 == 0:
            print(f"#   {done}/{out_of} ...", file=sys.stderr)

    def on_listen(host: str, port: int) -> None:
        # Parseable by scripts that start workers against a serve-mode
        # coordinator bound to port 0.
        print(f"# fabric: listening on {host}:{port}", file=sys.stderr, flush=True)

    optional = {}
    if args.batch_records is not None:
        optional["batch_records"] = args.batch_records
    if args.heartbeat_s is not None:
        optional["heartbeat_s"] = args.heartbeat_s
    if args.lease_timeout_s is not None:
        optional["lease_timeout_s"] = args.lease_timeout_s
    try:
        result = coordinate(
            campaign,
            bind=bind,
            workers=workers,
            progress=progress,
            resume_from=resume_log,
            log_path=args.log,
            timeout_s=args.timeout_s,
            shard_size=args.shard_size,
            retry_policy=_retry_policy(args),
            quarantine_path=args.quarantine,
            log_fsync=args.log_fsync,
            on_listen=on_listen,
            **optional,
        )
    except FabricError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.log:
        result.log.save(args.log)
        print(f"# log written to {args.log}", file=sys.stderr)
    print(report.campaign_summary(result))
    print()
    print(report.table3(result))
    print()
    print(report.issues_report(result))
    return 0


def _cmd_quarantine(args: argparse.Namespace) -> int:
    from repro.fault.resilience import Quarantine

    quarantine = Quarantine.load(args.file)
    if args.clear:
        count = len(quarantine)
        quarantine.clear()
        quarantine.save()
        print(f"released {count} spec(s); quarantine is empty")
        return 0
    if args.remove is not None:
        if quarantine.remove(args.remove):
            quarantine.save()
            print(f"released {args.remove}")
            return 0
        print(f"error: {args.remove} is not quarantined", file=sys.stderr)
        return 2
    if not quarantine.entries:
        print("quarantine is empty")
        return 0
    print(f"{len(quarantine)} quarantined spec(s):")
    for test_id, entry in sorted(quarantine.entries.items()):
        observations = ",".join(entry.get("observations", ())) or "?"
        print(
            f"  {test_id}  {entry.get('function', '?')}  "
            f"[{observations}]  added {entry.get('added_at', '?')}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    log = CampaignLog.load(args.log)
    campaign = Campaign(kernel_version=args.version)
    result = campaign.analyse(log)
    print(report.campaign_summary(result))
    print()
    print(report.table3(result))
    print()
    print(report.issues_report(result))
    print()
    print(report.severity_summary(result))
    return 0


def _cmd_tables(_args: argparse.Namespace) -> int:
    from repro.fault.xmlio import fig2_excerpt, fig3_excerpt

    print("Table I — XtratuM data types")
    print(report.table1())
    print()
    print("Table II — xm_s32_t test-value set")
    print(report.table2())
    print()
    print(report.fig8())
    print()
    print("Fig. 2 — API Header XML excerpt")
    print(fig2_excerpt())
    print()
    print("Fig. 3 — Data Type XML excerpt")
    print(fig3_excerpt())
    return 0


def _cmd_truthbase(args: argparse.Namespace) -> int:
    from repro.fault.truthbase import build_truthbase

    functions = tuple(args.functions.split(",")) if args.functions else None
    campaign = Campaign(functions=functions, kernel_version=args.version)
    base = build_truthbase(campaign)
    base.save(args.out)
    print(f"truth base: {len(base)} documented expectations -> {args.out}")
    print(f"expected-error share: {base.expected_error_share():.0%}")
    return 0


def _cmd_feedback(args: argparse.Namespace) -> int:
    from repro.fault.feedback import feedback_report

    log = CampaignLog.load(args.log)
    campaign = Campaign()
    result = campaign.analyse(log)
    print(feedback_report(result, top=args.top))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.fault.export import compare_versions

    left = Campaign(kernel_version=args.left_version).analyse(
        CampaignLog.load(args.left)
    )
    right = Campaign(kernel_version=args.right_version).analyse(
        CampaignLog.load(args.right)
    )
    print(compare_versions(left, right).markdown())
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    from repro.results import ResultsWarehouse, diff_campaigns, drift_audit, flaky_specs

    with ResultsWarehouse(args.db) as warehouse:
        if args.results_command == "ingest":
            report_ = warehouse.ingest(
                args.log,
                campaign_id=args.campaign_id,
                strategy=args.strategy,
            )
            print(
                f"ingested {report_.campaign_id}: {report_.inserted} new "
                f"row(s), {report_.duplicates} already present "
                f"({warehouse.row_count(report_.campaign_id)} total)"
            )
            return 0
        if args.results_command == "query":
            if args.campaign is not None:
                try:
                    info = warehouse.campaign(args.campaign)
                except KeyError as exc:
                    print(f"error: {exc.args[0]}", file=sys.stderr)
                    return 2
                print(
                    f"{info.campaign_id}: {info.records} records, kernel "
                    f"{info.kernel_version or '?'}, strategy "
                    f"{info.strategy or '?'}, ingested {info.ingested_at}"
                )
                for verdict, count in warehouse.verdict_summary(
                    args.campaign
                ).items():
                    print(f"  {verdict:<24} {count}")
                return 0
            campaigns = warehouse.campaigns()
            if not campaigns:
                print("warehouse is empty")
                return 0
            for info in campaigns:
                print(
                    f"{info.campaign_id}  kernel={info.kernel_version or '?'}"
                    f"  records={info.records}  ingested={info.ingested_at}"
                )
            return 0
        if args.results_command == "diff":
            try:
                diff = diff_campaigns(warehouse, args.left, args.right)
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 2
            print(diff.summary())
            for change in diff.changed:
                print(
                    f"  {change.test_id}  {change.function}: "
                    f"{change.left} -> {change.right}"
                )
            return 0
        if args.results_command == "drift":
            drifted = drift_audit(warehouse)
            print(f"{len(drifted)} spec(s) with verdict drift")
            for entry in drifted:
                print(
                    f"  {entry.test_id}  {entry.function}: "
                    f"{' -> '.join(entry.verdicts)} "
                    f"(churn {entry.transitions}, score {entry.flaky_score:.2f})"
                )
            flaky = [
                e for e in flaky_specs(warehouse, top=args.top) if not e.drifted
            ]
            if flaky:
                print(f"{len(flaky)} stable-verdict spec(s) under arbitration pressure")
                for entry in flaky:
                    print(
                        f"  {entry.test_id}  {entry.function}: "
                        f"score {entry.flaky_score:.2f} "
                        f"({entry.arbitrated_runs} arbitrated run(s))"
                    )
            return 0
        # dashboard
        from repro.results.dashboard import export

        data = export(warehouse, html_path=args.out, json_path=args.json_out)
        print(
            f"dashboard: {data['total_rows']} rows, "
            f"{len(data['campaigns'])} campaign(s), "
            f"{len(data['drift'])} drifted spec(s) -> {args.out}"
        )
        if args.json_out:
            print(f"json export -> {args.json_out}")
        return 0


def _cmd_phantom(_args: argparse.Namespace) -> int:
    result = PhantomCampaign().run()
    print(f"phantom cases executed : {len(result.records)}")
    print(f"failures               : {len(result.failures)}")
    for record, classification in result.failures:
        print(f"  {record.test_id}: {classification.severity.value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "report": _cmd_report,
        "quarantine": _cmd_quarantine,
        "tables": _cmd_tables,
        "phantom": _cmd_phantom,
        "truthbase": _cmd_truthbase,
        "feedback": _cmd_feedback,
        "compare": _cmd_compare,
        "results": _cmd_results,
        "fabric": _cmd_fabric,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
