"""SPARC V8 trap model.

Traps are how everything abnormal surfaces on the target: memory faults,
illegal instructions, timer expirations and hypercall software traps.  The
campaign's log-analysis phase keys on which trap fired and whether the
kernel's handlers contained it.
"""

from __future__ import annotations

import enum


class TrapType(enum.IntEnum):
    """SPARC V8 trap numbers (subset relevant to the testbed)."""

    RESET = 0x00
    INSTRUCTION_ACCESS_EXCEPTION = 0x01
    ILLEGAL_INSTRUCTION = 0x02
    PRIVILEGED_INSTRUCTION = 0x03
    WINDOW_OVERFLOW = 0x05
    WINDOW_UNDERFLOW = 0x06
    MEM_ADDRESS_NOT_ALIGNED = 0x07
    FP_EXCEPTION = 0x08
    DATA_ACCESS_EXCEPTION = 0x09
    TAG_OVERFLOW = 0x0A
    WATCHPOINT = 0x0B
    # External interrupts occupy 0x11-0x1F on LEON3 (IRQ 1-15).
    INTERRUPT_BASE = 0x10
    DIVIDE_BY_ZERO = 0x2A
    # Software traps (ta instruction): XtratuM uses one for hypercalls.
    SW_TRAP_BASE = 0x80
    HYPERCALL = 0xF0

    @classmethod
    def for_interrupt(cls, irq: int) -> int:
        """Trap number for external interrupt line ``irq`` (1-15)."""
        if not 1 <= irq <= 15:
            raise ValueError(f"LEON3 IRQ lines are 1-15, got {irq}")
        return int(cls.INTERRUPT_BASE) + irq


class Trap(Exception):
    """A raised SPARC trap, carrying the trap type and fault context.

    Raising a :class:`Trap` models the hardware vectoring into the trap
    table; whoever owns the trap table (the separation kernel) catches it
    and decides the outcome.  An *unhandled* trap while already in a trap
    handler puts the processor into error mode (see :mod:`repro.sparc.cpu`).
    """

    def __init__(self, trap_type: TrapType | int, detail: str = "", address: int | None = None) -> None:
        ttype = TrapType(trap_type) if isinstance(trap_type, TrapType) else trap_type
        name = ttype.name if isinstance(ttype, TrapType) else f"trap {ttype:#x}"
        msg = f"{name}" + (f": {detail}" if detail else "")
        if address is not None:
            msg += f" @ {address:#010x}"
        super().__init__(msg)
        self.trap_type = ttype
        self.detail = detail
        self.address = address

    @property
    def number(self) -> int:
        """The numeric trap vector."""
        return int(self.trap_type)
