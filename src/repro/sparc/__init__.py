"""Behavioural model of a SPARC V8 LEON3 target.

The paper's testbed is a LEON3 with MMU simulated by Aeroflex Gaisler's
TSIM.  The robustness campaign never inspects pipeline state; it observes
*memory protection faults, traps, interrupts, timers and console output*.
This package models exactly that surface:

- :mod:`~repro.sparc.memory` — physical memory areas, per-context access
  permissions, byte-addressable storage.
- :mod:`~repro.sparc.traps` — the SPARC V8 trap table and trap exceptions.
- :mod:`~repro.sparc.iobus` — memory-mapped I/O bus with device registers.
- :mod:`~repro.sparc.irqmp` — the LEON3 multiprocessor interrupt
  controller (IRQMP), single-core configuration.
- :mod:`~repro.sparc.timerhw` — GPTIMER general-purpose timer units.
- :mod:`~repro.sparc.uart` — APBUART console sink.
- :mod:`~repro.sparc.cpu` — processor privilege/trap-level state, the
  "error mode" double-trap rule that kills the simulator.
"""

from repro.sparc.memory import (
    Access,
    MemoryArea,
    MemoryFault,
    PhysicalMemory,
    AddressSpace,
)
from repro.sparc.traps import Trap, TrapType
from repro.sparc.iobus import IoBus, IoDevice, IoFault
from repro.sparc.irqmp import IrqController
from repro.sparc.timerhw import GpTimerUnit, HwTimer
from repro.sparc.uart import Uart
from repro.sparc.cpu import CpuState, ProcessorErrorMode

__all__ = [
    "Access",
    "MemoryArea",
    "MemoryFault",
    "PhysicalMemory",
    "AddressSpace",
    "Trap",
    "TrapType",
    "IoBus",
    "IoDevice",
    "IoFault",
    "IrqController",
    "GpTimerUnit",
    "HwTimer",
    "Uart",
    "CpuState",
    "ProcessorErrorMode",
]
