"""Memory-mapped I/O bus.

LEON3 peripherals (UART, timers, interrupt controller) live on the APB/AHB
bus at fixed addresses.  Spatial partitioning extends to I/O: a partition
may only touch the I/O registers its configuration grants, so the bus
checks a context name against each device's allowed set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


class IoFault(Exception):
    """An I/O access hit an unmapped or forbidden register."""

    def __init__(self, address: int, reason: str) -> None:
        super().__init__(f"I/O {reason} @ {address:#010x}")
        self.address = address
        self.reason = reason


@dataclass
class IoDevice:
    """One device: a register window plus read/write handlers.

    ``read_reg``/``write_reg`` receive the register *offset* within the
    window.  ``allowed`` lists context names permitted to access the
    device; the kernel context (``"kernel"``) is always permitted.
    """

    name: str
    base: int
    size: int
    read_reg: Callable[[int], int]
    write_reg: Callable[[int, int], None]
    allowed: set[str] = field(default_factory=set)

    def contains(self, address: int) -> bool:
        """Whether the address falls inside the register window."""
        return self.base <= address < self.base + self.size


class IoBus:
    """The bus: routes register accesses to devices with access control."""

    def __init__(self) -> None:
        self._devices: list[IoDevice] = []

    def attach(self, device: IoDevice) -> None:
        """Attach a device; windows must not overlap."""
        for existing in self._devices:
            if existing.contains(device.base) or device.contains(existing.base):
                raise ValueError(f"I/O window overlap: {device.name} vs {existing.name}")
        self._devices.append(device)

    def device_at(self, address: int) -> IoDevice | None:
        """The device owning ``address``, or None."""
        for dev in self._devices:
            if dev.contains(address):
                return dev
        return None

    def _resolve(self, address: int, context: str) -> tuple[IoDevice, int]:
        dev = self.device_at(address)
        if dev is None:
            raise IoFault(address, "unmapped")
        if context != "kernel" and context not in dev.allowed:
            raise IoFault(address, f"forbidden for {context}")
        return dev, address - dev.base

    def read(self, address: int, context: str = "kernel") -> int:
        """Read one 32-bit register."""
        dev, offset = self._resolve(address, context)
        return dev.read_reg(offset) & 0xFFFFFFFF

    def write(self, address: int, value: int, context: str = "kernel") -> None:
        """Write one 32-bit register."""
        dev, offset = self._resolve(address, context)
        dev.write_reg(offset, value & 0xFFFFFFFF)

    def devices(self) -> list[IoDevice]:
        """All attached devices."""
        return list(self._devices)
