"""GPTIMER general-purpose timer units.

The LEON3 GPTIMER block provides a shared prescaler and several decrement
timers.  In this behavioural model a timer is programmed with an absolute
expiry on the simulator's microsecond clock; the simulator's event loop
asks the unit for its next deadline and fires :meth:`HwTimer.expire` when
virtual time reaches it.  XtratuM multiplexes its HW clock and partition
timers on top of these units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class HwTimer:
    """One hardware timer channel.

    ``deadline_us`` is an absolute virtual time; None means disarmed.
    ``callback`` fires on expiry with the expiry time.
    """

    name: str
    irq_line: int
    deadline_us: int | None = None
    callback: Callable[[int], None] | None = None
    fired_count: int = 0

    def arm(self, deadline_us: int, callback: Callable[[int], None]) -> None:
        """Program an absolute expiry."""
        if deadline_us < 0:
            raise ValueError("deadline must be non-negative")
        self.deadline_us = deadline_us
        self.callback = callback

    def disarm(self) -> None:
        """Cancel any programmed expiry."""
        self.deadline_us = None
        self.callback = None

    @property
    def armed(self) -> bool:
        """Whether an expiry is programmed."""
        return self.deadline_us is not None

    def expire(self, now_us: int) -> None:
        """Fire the timer: disarm first, then invoke the callback.

        Disarming before the callback mirrors hardware one-shot semantics
        and lets the callback re-arm for periodic behaviour.
        """
        cb = self.callback
        self.disarm()
        self.fired_count += 1
        if cb is not None:
            cb(now_us)


@dataclass
class GpTimerUnit:
    """A GPTIMER block with several channels."""

    name: str = "gptimer0"
    channels: list[HwTimer] = field(default_factory=list)

    @classmethod
    def leon3_default(cls) -> "GpTimerUnit":
        """The usual LEON3 configuration: two channels on IRQ 8 and 9."""
        return cls(
            channels=[
                HwTimer("gptimer0.0", irq_line=8),
                HwTimer("gptimer0.1", irq_line=9),
            ]
        )

    def channel(self, index: int) -> HwTimer:
        """Channel by index; raises IndexError past the end."""
        return self.channels[index]

    def next_deadline(self) -> tuple[int, HwTimer] | None:
        """Earliest (deadline, timer) over armed channels, or None."""
        best: tuple[int, HwTimer] | None = None
        for timer in self.channels:
            if timer.deadline_us is None:
                continue
            if best is None or timer.deadline_us < best[0]:
                best = (timer.deadline_us, timer)
        return best

    def expire_due(self, now_us: int) -> int:
        """Fire every channel whose deadline has passed; returns count."""
        fired = 0
        for timer in self.channels:
            if timer.deadline_us is not None and timer.deadline_us <= now_us:
                timer.expire(now_us)
                fired += 1
        return fired

    def reset(self) -> None:
        """Disarm every channel."""
        for timer in self.channels:
            timer.disarm()
