"""Processor privilege and trap-level state.

SPARC V8 rule that matters for the case study: taking a trap while traps
are disabled (PSR.ET = 0 — i.e. while already inside a trap handler that
has not re-enabled them) puts the processor into *error mode* and halts
it.  On a simulated target this is precisely the failure that killed TSIM
in the paper's ``XM_set_timer(1, 1, 1)`` test, so the model surfaces it as
:class:`ProcessorErrorMode` for the simulator layer to translate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sparc.traps import Trap, TrapType


class ProcessorErrorMode(Exception):
    """The CPU entered error mode (trap while PSR.ET = 0) and halted."""

    def __init__(self, cause: Trap) -> None:
        super().__init__(f"processor error mode: {cause}")
        self.cause = cause


@dataclass
class CpuState:
    """PSR-level processor state for a single LEON3 core.

    Attributes
    ----------
    supervisor:
        PSR.S — True while the separation kernel runs.
    traps_enabled:
        PSR.ET — cleared on trap entry, restored on exit.
    pil:
        Processor interrupt level: IRQ lines at or below are deferred.
    trap_depth:
        Nesting depth of the software trap-handler model.
    """

    supervisor: bool = True
    traps_enabled: bool = True
    pil: int = 0
    trap_depth: int = 0
    history: list[int] = field(default_factory=list)

    def reset(self) -> None:
        """Power-on state: supervisor mode, traps enabled."""
        self.supervisor = True
        self.traps_enabled = True
        self.pil = 0
        self.trap_depth = 0
        self.history.clear()

    def can_take_interrupt(self, irq: int) -> bool:
        """Whether an external IRQ would be accepted right now."""
        return self.traps_enabled and irq > self.pil

    def enter_trap(self, trap: Trap) -> None:
        """Vector into a trap handler.

        Raises :class:`ProcessorErrorMode` when traps are disabled — the
        double-trap condition that halts the core (and crashes TSIM).
        """
        if not self.traps_enabled:
            raise ProcessorErrorMode(trap)
        self.traps_enabled = False
        self.supervisor = True
        self.trap_depth += 1
        self.history.append(trap.number)

    def exit_trap(self, to_supervisor: bool = False) -> None:
        """Return from a trap handler (``rett``)."""
        if self.trap_depth == 0:
            raise RuntimeError("exit_trap with no trap active")
        self.trap_depth -= 1
        self.traps_enabled = True
        self.supervisor = to_supervisor or self.trap_depth > 0

    def take(self, trap: Trap) -> None:
        """Convenience: enter and immediately exit a handled trap."""
        self.enter_trap(trap)
        self.exit_trap()

    def taken(self, trap_type: TrapType) -> int:
        """How many traps of the given type have been taken since reset."""
        return self.history.count(int(trap_type))
