"""Physical memory map and per-context address spaces.

Spatial partitioning rests on the MMU: every partition sees only the
memory areas its configuration grants, with per-area access rights.  The
model keeps an explicit byte store per area so that code under test can
actually read and write buffers (the ``XM_multicall`` batch buffer, IPC
message payloads, console strings) and so that a stray pointer from a test
dictionary faults exactly where real hardware would.

Addresses are 32-bit; a :class:`MemoryFault` carries the faulting address
and maps onto the SPARC ``data_access_exception`` trap.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

ADDRESS_MASK = 0xFFFFFFFF


class Access(enum.Flag):
    """Access rights on a memory area."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()
    RW = READ | WRITE
    RWX = READ | WRITE | EXEC


class MemoryFault(Exception):
    """A memory access violated the map or the rights of the context.

    Attributes
    ----------
    address:
        The faulting byte address.
    access:
        The attempted access kind.
    reason:
        Human-readable fault cause (``"unmapped"`` / ``"protection"`` /
        ``"unaligned"``).
    """

    def __init__(self, address: int, access: Access, reason: str) -> None:
        super().__init__(f"{reason} fault: {access.name} @ {address:#010x}")
        self.address = address
        self.access = access
        self.reason = reason


@dataclass(frozen=True)
class MemoryArea:
    """One contiguous physical memory area.

    ``owner`` names the configuration object the area belongs to (kernel,
    a partition, or ``"shared"``); ``rights`` are the rights granted *to
    that owner's context*.
    """

    name: str
    start: int
    size: int
    rights: Access = Access.RW
    owner: str = "kernel"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"area {self.name}: size must be positive")
        if self.start < 0 or self.start + self.size - 1 > ADDRESS_MASK:
            raise ValueError(f"area {self.name}: outside 32-bit space")

    @property
    def end(self) -> int:
        """First address past the area."""
        return self.start + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        """Whether ``[address, address+size)`` lies fully inside."""
        return self.start <= address and address + size <= self.end

    def overlaps(self, other: "MemoryArea") -> bool:
        """Whether the two areas share any byte."""
        return self.start < other.end and other.start < self.end


class PhysicalMemory:
    """The machine's physical memory: a set of non-overlapping areas.

    Backing storage is allocated lazily per area (a ``bytearray``), so a
    4 GiB address space costs only what is actually mapped.
    """

    def __init__(self, areas: Iterable[MemoryArea] = ()) -> None:
        self._areas: list[MemoryArea] = []
        self._starts: list[int] = []
        self._store: dict[str, bytearray] = {}
        for area in areas:
            self.add_area(area)

    def add_area(self, area: MemoryArea) -> None:
        """Map a new area; overlap with an existing area is an error."""
        for existing in self._areas:
            if existing.overlaps(area):
                raise ValueError(
                    f"area {area.name} [{area.start:#x},{area.end:#x}) overlaps "
                    f"{existing.name} [{existing.start:#x},{existing.end:#x})"
                )
        self._areas.append(area)
        self._areas.sort(key=lambda a: a.start)
        self._starts = [a.start for a in self._areas]

    def area_at(self, address: int, size: int = 1) -> MemoryArea | None:
        """The area fully containing the range, or None.

        Areas are disjoint and sorted, so a bisect finds the only
        candidate — this is the hottest lookup in campaign execution.
        """
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        area = self._areas[index]
        return area if area.contains(address, size) else None

    def areas(self) -> Iterator[MemoryArea]:
        """All mapped areas, ascending by start address."""
        return iter(self._areas)

    def _backing(self, area: MemoryArea) -> bytearray:
        buf = self._store.get(area.name)
        if buf is None:
            buf = bytearray(area.size)
            self._store[area.name] = buf
        return buf

    def read(self, address: int, size: int) -> bytes:
        """Raw physical read; faults on unmapped ranges."""
        area = self.area_at(address, size)
        if area is None:
            raise MemoryFault(address, Access.READ, "unmapped")
        buf = self._backing(area)
        off = address - area.start
        return bytes(buf[off : off + size])

    def write(self, address: int, data: bytes) -> None:
        """Raw physical write; faults on unmapped ranges."""
        area = self.area_at(address, len(data))
        if area is None:
            raise MemoryFault(address, Access.WRITE, "unmapped")
        buf = self._backing(area)
        off = address - area.start
        buf[off : off + len(data)] = data

    def clear(self) -> None:
        """Zero all backing storage (cold reset)."""
        self._store.clear()


@dataclass
class AddressSpace:
    """The view of physical memory granted to one execution context.

    The kernel context holds every area; a partition context holds only
    the areas its configuration assigns.  All accesses are checked against
    the area rights *as granted to this context* — a successful check then
    reads/writes the shared physical store.
    """

    name: str
    physical: PhysicalMemory
    grants: dict[str, Access] = field(default_factory=dict)

    def grant(self, area_name: str, rights: Access) -> None:
        """Grant (or widen) rights on a physical area."""
        self.grants[area_name] = self.grants.get(area_name, Access.NONE) | rights

    def check(self, address: int, size: int, access: Access) -> MemoryArea:
        """Validate an access; returns the area or raises MemoryFault."""
        address &= ADDRESS_MASK
        area = self.physical.area_at(address, size)
        if area is None:
            raise MemoryFault(address, access, "unmapped")
        granted = self.grants.get(area.name, Access.NONE)
        if access & granted != access:
            raise MemoryFault(address, access, "protection")
        return area

    def read(self, address: int, size: int) -> bytes:
        """Checked read."""
        self.check(address, size, Access.READ)
        return self.physical.read(address & ADDRESS_MASK, size)

    def write(self, address: int, data: bytes) -> None:
        """Checked write."""
        self.check(address, len(data), Access.WRITE)
        self.physical.write(address & ADDRESS_MASK, data)

    def read_u32(self, address: int) -> int:
        """Checked aligned 32-bit big-endian read (SPARC is big-endian)."""
        if address % 4:
            raise MemoryFault(address, Access.READ, "unaligned")
        return int.from_bytes(self.read(address, 4), "big")

    def write_u32(self, address: int, value: int) -> None:
        """Checked aligned 32-bit big-endian write."""
        if address % 4:
            raise MemoryFault(address, Access.WRITE, "unaligned")
        self.write(address, (value & 0xFFFFFFFF).to_bytes(4, "big"))

    def read_cstring(self, address: int, max_len: int = 4096) -> bytes:
        """Read a NUL-terminated string, fault-checked.

        Reads in area-bounded chunks (identical fault behaviour to a
        byte-wise scan: the first unreadable byte faults) and stops at
        the first NUL or after ``max_len`` bytes.
        """
        out = bytearray()
        cursor = address & ADDRESS_MASK
        remaining = max_len
        while remaining > 0:
            area = self.check(cursor, 1, Access.READ)
            chunk_len = min(remaining, area.end - cursor)
            chunk = self.physical.read(cursor, chunk_len)
            nul = chunk.find(b"\0")
            if nul >= 0:
                out += chunk[:nul]
                return bytes(out)
            out += chunk
            cursor += chunk_len
            remaining -= chunk_len
        return bytes(out)
