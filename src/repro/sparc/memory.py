"""Physical memory map and per-context address spaces.

Spatial partitioning rests on the MMU: every partition sees only the
memory areas its configuration grants, with per-area access rights.  The
model keeps an explicit byte store per area so that code under test can
actually read and write buffers (the ``XM_multicall`` batch buffer, IPC
message payloads, console strings) and so that a stray pointer from a test
dictionary faults exactly where real hardware would.

Addresses are 32-bit; a :class:`MemoryFault` carries the faulting address
and maps onto the SPARC ``data_access_exception`` trap.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

ADDRESS_MASK = 0xFFFFFFFF


class Access(enum.Flag):
    """Access rights on a memory area."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()
    RW = READ | WRITE
    RWX = READ | WRITE | EXEC


#: Raw rights bits for the checked read/write hot paths.
_READ_BITS = Access.READ.value
_WRITE_BITS = Access.WRITE.value

#: Dirty-range entries tracked per area before coalescing to the
#: bounding span.  Small: the scan in ``write_in`` is linear, and real
#: write patterns (scratch window, test buffer, a few data structures)
#: cluster into a handful of runs.
_MAX_DIRTY_SPANS = 8


class MemoryFault(Exception):
    """A memory access violated the map or the rights of the context.

    Attributes
    ----------
    address:
        The faulting byte address.
    access:
        The attempted access kind.
    reason:
        Human-readable fault cause (``"unmapped"`` / ``"protection"`` /
        ``"unaligned"``).
    """

    def __init__(self, address: int, access: Access, reason: str) -> None:
        super().__init__(f"{reason} fault: {access.name} @ {address:#010x}")
        self.address = address
        self.access = access
        self.reason = reason


@dataclass(frozen=True)
class MemoryArea:
    """One contiguous physical memory area.

    ``owner`` names the configuration object the area belongs to (kernel,
    a partition, or ``"shared"``); ``rights`` are the rights granted *to
    that owner's context*.
    """

    name: str
    start: int
    size: int
    rights: Access = Access.RW
    owner: str = "kernel"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"area {self.name}: size must be positive")
        if self.start < 0 or self.start + self.size - 1 > ADDRESS_MASK:
            raise ValueError(f"area {self.name}: outside 32-bit space")

    @property
    def end(self) -> int:
        """First address past the area."""
        return self.start + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        """Whether ``[address, address+size)`` lies fully inside."""
        return self.start <= address and address + size <= self.end

    def overlaps(self, other: "MemoryArea") -> bool:
        """Whether the two areas share any byte."""
        return self.start < other.end and other.start < self.end


class PhysicalMemory:
    """The machine's physical memory: a set of non-overlapping areas.

    Backing storage is allocated lazily per area (a ``bytearray``), so a
    4 GiB address space costs only what is actually mapped.
    """

    def __init__(self, areas: Iterable[MemoryArea] = ()) -> None:
        self._areas: list[MemoryArea] = []
        self._starts: list[int] = []
        self._store: dict[str, bytearray] = {}
        #: Per-area list of [lo, hi) byte ranges written since
        #: construction (or since the last snapshot restore); lets
        #: snapshot recycling and delta resets zero only what a test
        #: actually touched.  Kept as a *few* coarse spans rather than
        #: one bounding range: a partition that writes its scratch
        #: window and its test buffer (64 KiB apart) dirties two small
        #: spans, not everything in between.  Capped at
        #: ``_MAX_DIRTY_SPANS`` by coalescing into the bounding range.
        self._dirty: dict[str, list[list[int]]] = {}
        self._init_delta_fields()
        for area in areas:
            self.add_area(area)

    def _init_delta_fields(self) -> None:
        #: Armed delta baseline: non-zero span per backing at arm time
        #: (None = not armed) plus the dirty accounting as of arming.
        self._base_spans: dict[str, tuple[int, int, bytes]] | None = None
        self._base_dirty: dict[str, list[list[int]]] = {}
        #: A cold reset while armed empties the store; the baseline is
        #: gone and any delta reset must be refused.
        self._delta_broken = False

    def add_area(self, area: MemoryArea) -> None:
        """Map a new area; overlap with an existing area is an error."""
        for existing in self._areas:
            if existing.overlaps(area):
                raise ValueError(
                    f"area {area.name} [{area.start:#x},{area.end:#x}) overlaps "
                    f"{existing.name} [{existing.start:#x},{existing.end:#x})"
                )
        self._areas.append(area)
        self._areas.sort(key=lambda a: a.start)
        self._starts = [a.start for a in self._areas]

    def area_at(self, address: int, size: int = 1) -> MemoryArea | None:
        """The area fully containing the range, or None.

        Areas are disjoint and sorted, so a bisect finds the only
        candidate — this is the hottest lookup in campaign execution.
        """
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        area = self._areas[index]
        return area if area.contains(address, size) else None

    def areas(self) -> Iterator[MemoryArea]:
        """All mapped areas, ascending by start address."""
        return iter(self._areas)

    def _backing(self, area: MemoryArea) -> bytearray:
        buf = self._store.get(area.name)
        if buf is None:
            buf = bytearray(area.size)
            self._store[area.name] = buf
        return buf

    def read(self, address: int, size: int) -> bytes:
        """Raw physical read; faults on unmapped ranges."""
        area = self.area_at(address, size)
        if area is None:
            raise MemoryFault(address, Access.READ, "unmapped")
        return self.read_in(area, address, size)

    def read_in(self, area: MemoryArea, address: int, size: int) -> bytes:
        """Read from a range already known to lie inside ``area``.

        Fast path for callers (checked address spaces) that just
        resolved the area — skips the second area lookup.
        """
        buf = self._store.get(area.name)
        if buf is None:
            buf = self._backing(area)
        off = address - area.start
        return bytes(buf[off : off + size])

    def write(self, address: int, data: bytes) -> None:
        """Raw physical write; faults on unmapped ranges."""
        area = self.area_at(address, len(data))
        if area is None:
            raise MemoryFault(address, Access.WRITE, "unmapped")
        self.write_in(area, address, data)

    def write_in(self, area: MemoryArea, address: int, data: bytes) -> None:
        """Write a range already known to lie inside ``area``."""
        buf = self._store.get(area.name)
        if buf is None:
            buf = self._backing(area)
        off = address - area.start
        end = off + len(data)
        buf[off:end] = data
        spans = self._dirty.get(area.name)
        if spans is None:
            self._dirty[area.name] = [[off, end]]
            return
        # Fast path: sequential writes (scratch bumps, message buffers)
        # almost always touch the most recently dirtied span.
        last = spans[-1]
        if off <= last[1] and end >= last[0]:
            if off < last[0]:
                last[0] = off
            if end > last[1]:
                last[1] = end
            return
        for span in spans:
            if off <= span[1] and end >= span[0]:
                if off < span[0]:
                    span[0] = off
                if end > span[1]:
                    span[1] = end
                return
        spans.append([off, end])
        if len(spans) > _MAX_DIRTY_SPANS:
            lo = min(s[0] for s in spans)
            hi = max(s[1] for s in spans)
            spans[:] = [[lo, hi]]

    def clear(self) -> None:
        """Zero all backing storage (cold reset)."""
        self._store.clear()
        self._dirty.clear()
        if self._base_spans is not None:
            self._delta_broken = True

    # -- delta reset -------------------------------------------------------
    #
    # ``write_in`` already maintains a per-area [lo, hi) dirty span.
    # Arming re-bases that tracking: the current content becomes the
    # baseline (captured as non-zero spans) and the dirty map restarts
    # empty, so after a test it describes exactly the bytes the test
    # wrote.  A delta reset zeroes those bytes and re-applies the
    # overlapping slice of the baseline span — cost proportional to what
    # the test touched, never to the configured area sizes.

    def snapshot_delta(self) -> None:
        """Arm the write journal: current content becomes the baseline."""
        self._base_spans = self.export_spans()
        self._base_dirty = {
            name: [list(span) for span in spans]
            for name, spans in self._dirty.items()
        }
        self._dirty = {}
        self._delta_broken = False

    def reset_from_delta(self, baseline: None) -> None:
        """Revert every byte written since arming (in place).

        Spans may overlap after merges; the zero-then-reapply per span
        is idempotent (each pass leaves baseline content), so overlap
        costs a few duplicate bytes, never correctness.
        """
        if self._delta_broken or self._base_spans is None:
            raise RuntimeError("memory delta baseline lost (cold reset or never armed)")
        base_spans = self._base_spans
        for name, spans in self._dirty.items():
            buf = self._store[name]
            base = base_spans.get(name)
            for lo, hi in spans:
                buf[lo:hi] = bytes(hi - lo)
                if base is not None:
                    _, off, data = base
                    start = max(lo, off)
                    end = min(hi, off + len(data))
                    if start < end:
                        buf[start:end] = data[start - off : end - off]
        # Post-reset content equals the baseline byte for byte, so the
        # *next* delta reset owes nothing until software writes again —
        # the live map restarts empty.  Recycle accounting is safe: a
        # disarm (which every recycle path performs first) merges the
        # baseline's spans back in, covering the baseline content, and
        # bytes any earlier test dirtied outside it were just reverted
        # to zero.
        self._dirty = {}

    @property
    def delta_broken(self) -> bool:
        """Whether an armed baseline was destroyed by a cold reset."""
        return self._delta_broken

    def delta_pending_bytes(self) -> int:
        """Bytes written since arming (the cost of the next delta reset)."""
        return sum(
            hi - lo for spans in self._dirty.values() for lo, hi in spans
        )

    def delta_disarm(self) -> None:
        """Drop the baseline, restoring construction-time dirty accounting.

        Merges the baseline's dirty spans back into the live map so a
        later :meth:`reclaim_buffers` zeroes everything ever written —
        required before recycling an armed simulator's buffers into the
        snapshot pool.  Idempotent; a no-op when not armed.
        """
        if self._base_spans is None:
            return
        for name, spans in self._base_dirty.items():
            current = self._dirty.get(name)
            if current is None:
                self._dirty[name] = [list(span) for span in spans]
            else:
                current.extend(list(span) for span in spans)
        self._base_spans = None
        self._base_dirty = {}
        self._delta_broken = False

    # -- snapshot support --------------------------------------------------

    def export_spans(self) -> dict[str, tuple[int, int, bytes]]:
        """Non-zero span per allocated backing: ``{name: (size, off, data)}``.

        Backings are zero outside what software wrote, so the span from
        the first to the last non-zero byte captures the full content.
        """
        spans: dict[str, tuple[int, int, bytes]] = {}
        for name, buf in self._store.items():
            trimmed = buf.rstrip(b"\x00")
            lead = len(trimmed) - len(trimmed.lstrip(b"\x00"))
            spans[name] = (len(buf), lead, bytes(trimmed[lead:]))
        return spans

    @classmethod
    def from_spans(
        cls,
        areas: Iterable[MemoryArea],
        spans: dict[str, tuple[int, int, bytes]],
        pool: dict[str, bytearray] | None = None,
    ) -> "PhysicalMemory":
        """Rebuild a memory from :meth:`export_spans` output.

        ``pool`` optionally supplies pre-zeroed buffers (from
        :meth:`reclaim_buffers`) to avoid re-allocating the large area
        backings on every snapshot restore.
        """
        self = cls.__new__(cls)
        self._areas = list(areas)
        self._starts = [a.start for a in self._areas]
        self._store = {}
        self._dirty = {}
        self._init_delta_fields()
        for name, (size, off, data) in spans.items():
            buf = pool.pop(name, None) if pool is not None else None
            if buf is None or len(buf) != size:
                buf = bytearray(size)
            end = off + len(data)
            buf[off:end] = data
            self._store[name] = buf
            if data:
                self._dirty[name] = [[off, end]]
        return self

    def reclaim_buffers(self) -> dict[str, bytearray]:
        """Detach the backings, zeroed, for reuse by a later restore.

        Only the dirty range of each buffer is re-zeroed.  The memory
        must not be used afterwards — this is the tear-down half of the
        snapshot buffer pool.
        """
        out: dict[str, bytearray] = {}
        for name, buf in self._store.items():
            spans = self._dirty.get(name)
            if spans is not None:
                for lo, hi in spans:
                    buf[lo:hi] = bytes(hi - lo)
            out[name] = buf
        self._store = {}
        self._dirty = {}
        return out

    # -- pickling ---------------------------------------------------------
    #
    # Area backings are overwhelmingly zero (partition areas are touched
    # only where software actually wrote), so snapshots store only the
    # 4 KiB chunks containing non-zero bytes.  This keeps the simulator's
    # snapshot/restore fast path proportional to *used* memory, not to
    # the configured area sizes.

    _PICKLE_CHUNK = 4096

    def __getstate__(self) -> dict:
        """Pickle with sparse (non-zero chunks only) area backings."""
        chunk = self._PICKLE_CHUNK
        state = self.__dict__.copy()
        # A pickled memory never carries an armed delta baseline.
        state["_base_spans"] = None
        state["_base_dirty"] = {}
        state["_delta_broken"] = False
        packed: dict[str, tuple[int, dict[int, bytes]]] = {}
        for name, buf in self._store.items():
            size = len(buf)
            chunks: dict[int, bytes] = {}
            for off in range(0, size, chunk):
                end = min(off + chunk, size)
                if buf.count(0, off, end) != end - off:
                    chunks[off] = bytes(buf[off:end])
            packed[name] = (size, chunks)
        state["_store"] = packed
        return state

    def __setstate__(self, state: dict) -> None:
        """Rebuild full-size backings from their sparse chunks."""
        self.__dict__.update(state)
        store: dict[str, bytearray] = {}
        for name, (size, chunks) in state["_store"].items():
            buf = bytearray(size)
            for off, data in chunks.items():
                buf[off : off + len(data)] = data
            store[name] = buf
        self._store = store


@dataclass
class AddressSpace:
    """The view of physical memory granted to one execution context.

    The kernel context holds every area; a partition context holds only
    the areas its configuration assigns.  All accesses are checked against
    the area rights *as granted to this context* — a successful check then
    reads/writes the shared physical store.
    """

    name: str
    physical: PhysicalMemory
    grants: dict[str, Access] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Integer mirror of `grants` (flag arithmetic on raw ints is
        # several times cheaper than enum.Flag operators on the hot
        # access-check path) plus a one-entry area cache — partition
        # software overwhelmingly touches the same area it just touched.
        self._bits: dict[str, int] = {
            name: rights.value for name, rights in self.grants.items()
        }
        self._last_area: MemoryArea | None = None

    def grant(self, area_name: str, rights: Access) -> None:
        """Grant (or widen) rights on a physical area."""
        merged = self.grants.get(area_name, Access.NONE) | rights
        self.grants[area_name] = merged
        self._bits[area_name] = merged.value

    def check(self, address: int, size: int, access: Access) -> MemoryArea:
        """Validate an access; returns the area or raises MemoryFault."""
        return self._check_bits(address, size, access.value, access)

    def _check_bits(
        self, address: int, size: int, bits: int, access: Access
    ) -> MemoryArea:
        """Access check with the rights mask already as a raw int.

        ``access.value`` is a DynamicClassAttribute descriptor call —
        measurable at ~35 checks per test — so the read/write hot paths
        pass the module-constant bits and keep the enum member only for
        fault reporting.
        """
        address &= ADDRESS_MASK
        area = self._last_area
        if area is None or not (
            area.start <= address and address + size <= area.end
        ):
            area = self.physical.area_at(address, size)
            if area is None:
                raise MemoryFault(address, access, "unmapped")
            self._last_area = area
        if bits & ~self._bits.get(area.name, 0):
            raise MemoryFault(address, access, "protection")
        return area

    def read(self, address: int, size: int) -> bytes:
        """Checked read.

        The cached-area check is inlined (rather than delegated to
        :meth:`_check_bits`): partition software performs ~70 checked
        accesses per campaign test, and the extra frame per access is
        measurable across a suite.
        """
        address &= ADDRESS_MASK
        area = self._last_area
        if area is None or not (
            area.start <= address and address + size <= area.end
        ):
            return self.physical.read_in(
                self._check_bits(address, size, _READ_BITS, Access.READ),
                address,
                size,
            )
        if _READ_BITS & ~self._bits.get(area.name, 0):
            raise MemoryFault(address, Access.READ, "protection")
        return self.physical.read_in(area, address, size)

    def write(self, address: int, data: bytes) -> None:
        """Checked write (cached-area check inlined, as in :meth:`read`)."""
        address &= ADDRESS_MASK
        size = len(data)
        area = self._last_area
        if area is None or not (
            area.start <= address and address + size <= area.end
        ):
            self.physical.write_in(
                self._check_bits(address, size, _WRITE_BITS, Access.WRITE),
                address,
                data,
            )
            return
        if _WRITE_BITS & ~self._bits.get(area.name, 0):
            raise MemoryFault(address, Access.WRITE, "protection")
        self.physical.write_in(area, address, data)

    def read_u32(self, address: int) -> int:
        """Checked aligned 32-bit big-endian read (SPARC is big-endian)."""
        if address % 4:
            raise MemoryFault(address, Access.READ, "unaligned")
        return int.from_bytes(self.read(address, 4), "big")

    def write_u32(self, address: int, value: int) -> None:
        """Checked aligned 32-bit big-endian write."""
        if address % 4:
            raise MemoryFault(address, Access.WRITE, "unaligned")
        self.write(address, (value & 0xFFFFFFFF).to_bytes(4, "big"))

    def read_cstring(self, address: int, max_len: int = 4096) -> bytes:
        """Read a NUL-terminated string, fault-checked.

        Reads in area-bounded chunks (identical fault behaviour to a
        byte-wise scan: the first unreadable byte faults) and stops at
        the first NUL or after ``max_len`` bytes.
        """
        out = bytearray()
        cursor = address & ADDRESS_MASK
        remaining = max_len
        while remaining > 0:
            area = self.check(cursor, 1, Access.READ)
            chunk_len = min(remaining, area.end - cursor)
            chunk = self.physical.read(cursor, chunk_len)
            nul = chunk.find(b"\0")
            if nul >= 0:
                out += chunk[:nul]
                return bytes(out)
            out += chunk
            cursor += chunk_len
            remaining -= chunk_len
        return bytes(out)
