"""LEON3 IRQMP interrupt controller, single-core configuration.

Fifteen external interrupt lines (1-15).  The controller keeps pending,
mask and force registers; an interrupt is *delivered* when pending & mask
is non-zero and traps are enabled at the CPU.  Delivery order is highest
line first, as on real IRQMP.
"""

from __future__ import annotations

from typing import Callable

NUM_LINES = 15


class IrqController:
    """Pending/mask/force state for IRQ lines 1..15."""

    def __init__(self) -> None:
        self._pending: int = 0
        self._mask: int = 0
        self._delivery_hook: Callable[[int], None] | None = None

    @staticmethod
    def _bit(line: int) -> int:
        if not 1 <= line <= NUM_LINES:
            raise ValueError(f"IRQ line out of range: {line}")
        return 1 << line

    def set_delivery_hook(self, hook: Callable[[int], None] | None) -> None:
        """Called with the line number whenever an IRQ becomes deliverable."""
        self._delivery_hook = hook

    def raise_irq(self, line: int) -> None:
        """Assert an interrupt line (device side)."""
        self._pending |= self._bit(line)
        self._notify()

    def clear(self, line: int) -> None:
        """Clear a pending line (acknowledge)."""
        self._pending &= ~self._bit(line)

    def mask(self, line: int) -> None:
        """Disable delivery of a line."""
        self._mask &= ~self._bit(line)

    def unmask(self, line: int) -> None:
        """Enable delivery of a line."""
        self._mask |= self._bit(line)
        self._notify()

    def is_pending(self, line: int) -> bool:
        """Whether the line is asserted."""
        return bool(self._pending & self._bit(line))

    def is_masked(self, line: int) -> bool:
        """Whether delivery of the line is disabled."""
        return not (self._mask & self._bit(line))

    @property
    def pending_word(self) -> int:
        """Raw pending register."""
        return self._pending

    @property
    def mask_word(self) -> int:
        """Raw mask register."""
        return self._mask

    def set_pending_word(self, word: int) -> None:
        """Force the pending register (IRQMP force register semantics)."""
        self._pending = word & 0xFFFE
        self._notify()

    def set_mask_word(self, word: int) -> None:
        """Set the mask register wholesale."""
        self._mask = word & 0xFFFE
        self._notify()

    def next_deliverable(self) -> int | None:
        """Highest pending-and-unmasked line, or None."""
        word = self._pending & self._mask
        if not word:
            return None
        return word.bit_length() - 1

    def acknowledge(self) -> int | None:
        """Deliver: clear and return the highest deliverable line."""
        line = self.next_deliverable()
        if line is not None:
            self.clear(line)
        return line

    def reset(self) -> None:
        """Controller reset: everything cleared and masked."""
        self._pending = 0
        self._mask = 0

    def _notify(self) -> None:
        line = self.next_deliverable()
        if line is not None and self._delivery_hook is not None:
            self._delivery_hook(line)
