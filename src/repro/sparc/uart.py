"""APBUART console device.

Everything the kernel and partitions print flows through here; the
campaign's log collector snapshots the console after every test run, as
the paper's shell scripts captured TSIM's output.
"""

from __future__ import annotations


class Uart:
    """A write-only console sink that accumulates lines with timestamps."""

    def __init__(self, name: str = "uart0") -> None:
        self.name = name
        self._lines: list[tuple[int, str, str]] = []
        self._partial: dict[str, str] = {}

    def write(self, text: str, now_us: int = 0, source: str = "kernel") -> None:
        """Append text; newline-terminated chunks become stored lines."""
        buf = self._partial.get(source, "") + text
        while "\n" in buf:
            line, buf = buf.split("\n", 1)
            self._lines.append((now_us, source, line))
        self._partial[source] = buf

    def flush(self, now_us: int = 0) -> None:
        """Force out any partial line from every source."""
        for source, buf in list(self._partial.items()):
            if buf:
                self._lines.append((now_us, source, buf))
            self._partial[source] = ""

    def lines(self, source: str | None = None) -> list[str]:
        """Stored lines, optionally filtered by source."""
        return [text for (_, src, text) in self._lines if source is None or src == source]

    def records(self) -> list[tuple[int, str, str]]:
        """(time_us, source, line) tuples in emission order."""
        return list(self._lines)

    def transcript(self) -> str:
        """The whole console as one string."""
        return "\n".join(text for (_, _, text) in self._lines)

    def clear(self) -> None:
        """Drop all captured output."""
        self._lines.clear()
        self._partial.clear()
