"""Compiled suite execution plans.

A campaign re-derives the same facts for every test it runs: the spec's
resolved argument tuple, its dictionary labels, the C argument
conversion the kernel will apply, the statically decidable dispatch
prechecks (unknown hypercall, arity mismatch), and the static half of
the :class:`~repro.fault.testlog.TestRecord` it will emit.  All of that
is pure in the campaign configuration — the spec, the test-partition
layout and the kernel version — so a :class:`CompiledPlan` computes it
once per suite and the executor's planned paths consume it per test.

The plan also carries the *batch structure*: maximal runs of
consecutive same-function specs (suites are generated per hypercall, so
in practice one group per suite).  The executor pushes a whole group
through a single armed simulator loop — snapshot resolved once, delta
journal armed once, reverted per test — instead of paying the per-test
bring-up bookkeeping for each spec individually.

Compilation is an optimisation, never a semantic fork: a
:class:`PlanEntry`'s converted arguments and precheck replicate exactly
what :meth:`~repro.xm.kernel.Kernel.hypercall` would compute from the
raw call, and the ``--verify-plan`` audit
(:meth:`~repro.fault.executor.TestExecutor.run` vs the planned path)
asserts record-for-record identity between the two.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.fault.mutant import TestCallSpec, TestPartitionLayout
from repro.xm import rc
from repro.xm.api import hypercall_by_name
from repro.xtypes import default_registry


class PlanEntry:
    """Everything about one spec that is knowable before execution.

    Slotted and flat: campaigns hold one per test, and the executor's
    hot loop reads these fields per invocation.

    ``precheck_rc`` is the return code the kernel's dispatch prechecks
    would produce without ever reaching a service (``None`` when the
    call dispatches): ``XM_UNKNOWN_HYPERCALL`` for a function outside
    the hypercall table, ``XM_INVALID_PARAM`` for an arity mismatch.
    The privilege check is *not* precomputed — it depends on the live
    caller — so ``system_only`` travels for the kernel to test against
    ``caller.is_system`` at dispatch time, exactly where the unplanned
    path tests it.
    """

    __slots__ = (
        "spec",
        "test_id",
        "function",
        "category",
        "arg_labels",
        "resolved",
        "converted",
        "precheck_rc",
        "system_only",
        "record_base",
    )

    def __init__(
        self,
        spec: TestCallSpec,
        layout: TestPartitionLayout,
        registry,  # noqa: ANN001 - xtypes.TypeRegistry
    ) -> None:
        self.spec = spec
        self.test_id = spec.test_id
        self.function = spec.function
        self.category = spec.category
        self.arg_labels = spec.arg_labels()
        self.resolved = spec.resolve_args(layout)
        try:
            hdef = hypercall_by_name(spec.function)
        except KeyError:
            self.precheck_rc: int | None = rc.XM_UNKNOWN_HYPERCALL
            self.converted: list[int] = []
            self.system_only = False
        else:
            self.system_only = hdef.system_only
            if len(self.resolved) != hdef.arity:
                self.precheck_rc = rc.XM_INVALID_PARAM
                self.converted = []
            else:
                self.precheck_rc = None
                # Replicates Kernel.hypercall's conversion exactly: the
                # registry is version-independent and the arguments are
                # fixed by the spec, so the converted list the kernel
                # would build per dispatch is a plan-time constant.
                converters = [
                    None
                    if param.is_pointer or param.type_name not in registry
                    else registry.descriptor(param.type_name).convert
                    for param in hdef.params
                ]
                self.converted = [
                    int(value) & 0xFFFFFFFF if convert is None else convert(int(value))
                    for convert, value in zip(converters, self.resolved)
                ]
        #: Static TestRecord fields; the executor adds the observed half.
        self.record_base = {
            "test_id": self.test_id,
            "function": self.function,
            "category": self.category,
            "arg_labels": self.arg_labels,
            "resolved_args": self.resolved,
        }


class CompiledPlan:
    """A suite compiled for execution: entries, index and batch groups."""

    __slots__ = ("kernel_version", "frames", "layout", "entries", "by_id", "groups")

    def __init__(
        self,
        specs: Iterable[TestCallSpec],
        layout: TestPartitionLayout,
        kernel_version: str,
        frames: int,
    ) -> None:
        self.kernel_version = kernel_version
        self.frames = frames
        self.layout = layout
        registry = default_registry()
        self.entries = [PlanEntry(spec, layout, registry) for spec in specs]
        self.by_id = {entry.test_id: entry for entry in self.entries}
        self.groups = group_consecutive(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def entry_for(self, spec: TestCallSpec) -> PlanEntry | None:
        """The compiled entry for ``spec``, or None if outside the plan."""
        entry = self.by_id.get(spec.test_id)
        if entry is not None and entry.spec == spec:
            return entry
        return None


def group_consecutive(entries: Sequence[PlanEntry]) -> list[list[PlanEntry]]:
    """Maximal runs of consecutive same-function entries, order preserved.

    Batching never reorders: a batched campaign executes specs in the
    exact sequence a per-spec campaign would, so the record stream (and
    everything downstream — logs, resume, clustering) is unchanged.
    """
    groups: list[list[PlanEntry]] = []
    current: list[PlanEntry] = []
    for entry in entries:
        if current and current[-1].function != entry.function:
            groups.append(current)
            current = []
        current.append(entry)
    if current:
        groups.append(current)
    return groups
