"""CRASH-scale classification of test outcomes (§III-C).

Ballista's severity scale, applied per the paper:

- **Catastrophic** — the test corrupted the system: the kernel halted,
  the simulator itself died, or temporal/spatial isolation broke.
- **Restart** — the system needed a restart it should not have needed:
  an unexpected system reset, or a hung test run.
- **Abort** — the testing task terminated irregularly (the test
  partition was halted by the Health Monitor after an unhandled trap).
- **Silent** — an exceptional situation was not reported (success
  returned where an error code was expected).
- **Hindering** — an incorrect error code was reported.

Silent and Hindering need the reference oracle; the first three are
observable from the Health Monitor and the simulator, as the paper
notes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.fault.oracle import Expectation
from repro.fault.testlog import TestRecord
from repro.xm import rc
from repro.xm.hm import HmEvent


class Severity(enum.Enum):
    """CRASH severities, most severe first, plus PASS."""

    CATASTROPHIC = "Catastrophic"
    RESTART = "Restart"
    ABORT = "Abort"
    SILENT = "Silent"
    HINDERING = "Hindering"
    PASS = "Pass"

    @property
    def is_failure(self) -> bool:
        """Whether the outcome counts as a robustness failure."""
        return self is not Severity.PASS


class FailureKind(enum.Enum):
    """Mechanism behind a failure (drives issue clustering)."""

    WORKER_KILLED = "worker process killed"
    SIM_CRASH = "simulator crash"
    SIM_HANG = "simulator hang"
    KERNEL_HALT = "kernel halt"
    UNEXPECTED_RESET = "unexpected system reset"
    TEMPORAL_VIOLATION = "temporal isolation violation"
    UNHANDLED_TRAP = "unhandled trap"
    SPATIAL_VIOLATION = "spatial isolation violation"
    NO_RETURN = "call did not return"
    WRONG_SUCCESS = "success where error expected"
    WRONG_ERROR = "incorrect error code"
    NONE = "none"


@dataclass(frozen=True)
class Classification:
    """Outcome of classifying one test record."""

    severity: Severity
    kind: FailureKind
    detail: str = ""

    @property
    def is_failure(self) -> bool:
        """Whether the test failed."""
        return self.severity.is_failure


def _expected_resets(record: TestRecord, expectation: Expectation) -> bool:
    """System resets are expected only for documented reset calls."""
    return expectation.allow_no_return and record.function == "XM_reset_system"


def classify(record: TestRecord, expectation: Expectation) -> Classification:
    """Classify one executed test against its expectation."""
    # 0. The whole worker process died: the process-level analogue of
    #    the paper's simulator-killing tests, recorded by the campaign
    #    supervisor rather than the (dead) executor.
    if record.worker_killed:
        return Classification(
            Severity.CATASTROPHIC, FailureKind.WORKER_KILLED,
            "the test killed the worker process running it",
        )
    # 1. The simulator itself died: nothing is more severe.
    if record.sim_crashed:
        return Classification(
            Severity.CATASTROPHIC, FailureKind.SIM_CRASH,
            "the target simulator crashed during the test run",
        )
    if record.sim_hung:
        detail = (
            "the test run exceeded the campaign watchdog and was aborted"
            if record.watchdog_expired
            else "the test run hung and had to be killed"
        )
        return Classification(Severity.RESTART, FailureKind.SIM_HANG, detail)
    # 2. Kernel-state corruption.
    if record.kernel_halted and record.function != "XM_halt_system":
        return Classification(
            Severity.CATASTROPHIC, FailureKind.KERNEL_HALT,
            record.halt_reason or "kernel halted",
        )
    if record.resets and not _expected_resets(record, expectation):
        kinds = {kind for (kind, _src) in record.resets}
        return Classification(
            Severity.RESTART, FailureKind.UNEXPECTED_RESET,
            f"unexpected {'/'.join(sorted(kinds))} system reset",
        )
    # 3. Isolation breaks observed by the Health Monitor.
    names = record.hm_event_names()
    if HmEvent.TEMPORAL_VIOLATION.name in names:
        return Classification(
            Severity.CATASTROPHIC, FailureKind.TEMPORAL_VIOLATION,
            "the test call executed past its partition slot",
        )
    if HmEvent.UNHANDLED_TRAP.name in names:
        return Classification(
            Severity.ABORT, FailureKind.UNHANDLED_TRAP,
            "unhandled trap; HM halted the test partition",
        )
    if HmEvent.MEM_PROTECTION.name in names:
        return Classification(
            Severity.ABORT, FailureKind.SPATIAL_VIOLATION,
            "memory protection fault; HM halted the test partition",
        )
    # 4. Return-path verdicts.
    if record.never_returned:
        if expectation.allow_no_return:
            return Classification(Severity.PASS, FailureKind.NONE, expectation.note)
        return Classification(
            Severity.RESTART, FailureKind.NO_RETURN,
            "the test call never returned",
        )
    for invocation in record.invocations:
        if not invocation.returned:
            continue
        code = invocation.rc
        assert code is not None
        if expectation.rc_acceptable(code):
            continue
        if code >= 0:
            return Classification(
                Severity.SILENT, FailureKind.WRONG_SUCCESS,
                f"returned {rc.name_of(code)} where "
                f"{_expected_str(expectation)} was expected",
            )
        return Classification(
            Severity.HINDERING, FailureKind.WRONG_ERROR,
            f"returned {rc.name_of(code)} where "
            f"{_expected_str(expectation)} was expected",
        )
    return Classification(Severity.PASS, FailureKind.NONE)


def _expected_str(expectation: Expectation) -> str:
    parts = sorted(rc.name_of(code) for code in expectation.allowed)
    if expectation.allow_nonneg:
        parts.append("a non-negative result")
    if expectation.allow_no_return:
        parts.append("no return")
    return "/".join(parts) if parts else "(nothing)"
