"""Test dataset generation (Fig. 5, Test Dataset Generator stage).

The paper generates *all* combinations of test values across parameters
(Eq. 1).  Exhaustive cartesian generation is the reference strategy;
pairwise and seeded-random strategies are provided as campaign-size
ablations (the trade-off §III-A alludes to when it asks for "proper
coverage" while staying "practically manageable").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Protocol

from repro.fault.dictionaries import TestValue
from repro.fault.matrix import TestValueMatrix

#: One generated dataset: one test value per parameter.
Dataset = tuple[TestValue, ...]


def combinations_total(matrix: TestValueMatrix) -> int:
    """Eq. 1: ``Π n_i`` over the matrix columns."""
    return matrix.total_combinations


class GenerationStrategy(Protocol):
    """A dataset generation strategy."""

    name: str

    def generate(self, matrix: TestValueMatrix) -> Iterator[Dataset]:
        """Yield datasets for the matrix."""
        ...

    def count(self, matrix: TestValueMatrix) -> int:
        """Number of datasets :meth:`generate` will yield."""
        ...


@dataclass(frozen=True)
class CartesianStrategy:
    """The paper's exhaustive strategy (Eq. 1)."""

    name: str = "cartesian"

    def generate(self, matrix: TestValueMatrix) -> Iterator[Dataset]:
        """All combinations, in column-major dictionary order."""
        yield from itertools.product(*matrix.columns)

    def count(self, matrix: TestValueMatrix) -> int:
        """Exactly Eq. 1."""
        return matrix.total_combinations


@dataclass(frozen=True)
class PairwiseStrategy:
    """Greedy pairwise (2-wise) covering strategy.

    Guarantees every pair of values across any two parameters appears in
    at least one dataset — a standard combinatorial-testing reduction.
    Falls back to cartesian for single-parameter calls.
    """

    name: str = "pairwise"

    def generate(self, matrix: TestValueMatrix) -> Iterator[Dataset]:
        """Greedy horizontal growth over uncovered pairs."""
        columns = matrix.columns
        if len(columns) < 2:
            yield from itertools.product(*columns)
            return
        uncovered: set[tuple[int, int, int, int]] = set()
        for (i, col_i), (j, col_j) in itertools.combinations(enumerate(columns), 2):
            for a in range(len(col_i)):
                for b in range(len(col_j)):
                    uncovered.add((i, a, j, b))
        while uncovered:
            chosen = [-1] * len(columns)
            # Seed with the pair that appears first in the uncovered set
            # ordering (deterministic: sort once).
            seed = min(uncovered)
            chosen[seed[0]], chosen[seed[2]] = seed[1], seed[3]
            for index, column in enumerate(columns):
                if chosen[index] >= 0:
                    continue
                best_value, best_gain = 0, -1
                for value_index in range(len(column)):
                    gain = sum(
                        1
                        for (i, a, j, b) in uncovered
                        if (i == index and a == value_index and chosen[j] == b)
                        or (j == index and b == value_index and chosen[i] == a)
                    )
                    if gain > best_gain:
                        best_value, best_gain = value_index, gain
                chosen[index] = best_value
            newly = {
                (i, chosen[i], j, chosen[j])
                for i, j in itertools.combinations(range(len(columns)), 2)
            }
            uncovered -= newly
            yield tuple(columns[i][chosen[i]] for i in range(len(columns)))

    def count(self, matrix: TestValueMatrix) -> int:
        """Materialised count (pairwise size is data-dependent)."""
        return sum(1 for _ in self.generate(matrix))


@dataclass(frozen=True)
class OneFactorStrategy:
    """One-factor-at-a-time over a valid base vector.

    The §V discussion notes that a logic model "could be potentially
    used to generate more effective test datasets".  This strategy uses
    the dictionaries' own validity knowledge (the Table II asterisks):
    hold every parameter at its first maybe-valid value and vary one
    parameter at a time through its full dictionary.  Each parameter's
    robustness is exercised *unmasked* (all other inputs valid — the
    Fig. 7 lesson applied by construction) at a cost of roughly
    ``Σ n_i`` instead of ``Π n_i`` datasets.

    The trade-off: defects requiring two simultaneously-interesting
    values (other than the base) are out of reach.
    """

    name: str = "one-factor"

    @staticmethod
    def _base(column: tuple[TestValue, ...]) -> TestValue:
        for tv in column:
            if tv.maybe_valid:
                return tv
        return column[0]

    def generate(self, matrix: TestValueMatrix) -> Iterator[Dataset]:
        """The base dataset, then each single-parameter sweep."""
        base = tuple(self._base(column) for column in matrix.columns)
        seen: set[tuple[str, ...]] = set()

        def emit(dataset: Dataset) -> Iterator[Dataset]:
            key = tuple(tv.label for tv in dataset)
            if key not in seen:
                seen.add(key)
                yield dataset

        yield from emit(base)
        for index, column in enumerate(matrix.columns):
            for tv in column:
                dataset = tuple(
                    tv if i == index else base[i] for i in range(len(base))
                )
                yield from emit(dataset)

    def count(self, matrix: TestValueMatrix) -> int:
        """Materialised count (duplicates of the base are folded)."""
        return sum(1 for _ in self.generate(matrix))


@dataclass(frozen=True)
class RandomSampleStrategy:
    """Uniform sample of the cartesian space, without replacement.

    Deterministic for a given seed.  ``fraction`` of the full space is
    kept, with at least ``minimum`` datasets.
    """

    fraction: float = 0.25
    minimum: int = 4
    seed: int = 2016
    name: str = "random"

    def _indices(self, matrix: TestValueMatrix) -> list[int]:
        import random

        total = matrix.total_combinations
        k = min(total, max(self.minimum, round(total * self.fraction)))
        rng = random.Random(self.seed ^ hash(matrix.function.name))
        return sorted(rng.sample(range(total), k))

    def generate(self, matrix: TestValueMatrix) -> Iterator[Dataset]:
        """Decode sampled lexicographic indices into datasets."""
        shape = matrix.shape
        for flat in self._indices(matrix):
            dataset = []
            remainder = flat
            for size in reversed(shape):
                remainder, pos = divmod(remainder, size)
                dataset.append(pos)
            indices = list(reversed(dataset))
            yield tuple(matrix.columns[i][pos] for i, pos in enumerate(indices))

    def count(self, matrix: TestValueMatrix) -> int:
        """Size of the sample."""
        return len(self._indices(matrix))


#: Canonical name → class registry of the built-in strategies.  The CLI
#: exposes these as ``--strategy`` choices, and the fabric wire format
#: ships strategies *by name + options* (never pickled), so only
#: registry members can cross a host boundary.
STRATEGIES: dict[str, type] = {
    CartesianStrategy.name: CartesianStrategy,
    PairwiseStrategy.name: PairwiseStrategy,
    OneFactorStrategy.name: OneFactorStrategy,
    RandomSampleStrategy.name: RandomSampleStrategy,
}


def strategy_to_dict(strategy: GenerationStrategy) -> dict:
    """JSON-able ``{"name": ..., **options}`` form of a registry strategy.

    Raises ``ValueError`` for a strategy outside :data:`STRATEGIES` (or
    an instance whose class disagrees with its registered name): both
    sides of a network campaign must reconstruct the exact generator,
    and an unknown class cannot travel by name.
    """
    import dataclasses

    cls = STRATEGIES.get(strategy.name)
    if cls is None or type(strategy) is not cls:
        raise ValueError(
            f"strategy {type(strategy).__name__!r} (name={strategy.name!r}) "
            "is not in the built-in registry and cannot travel by name"
        )
    out: dict = {"name": strategy.name}
    for field in dataclasses.fields(cls):
        if field.name != "name":
            out[field.name] = getattr(strategy, field.name)
    return out


def strategy_from_dict(data: dict) -> GenerationStrategy:
    """Rebuild a strategy from its :func:`strategy_to_dict` form."""
    options = dict(data)
    name = options.pop("name", None)
    cls = STRATEGIES.get(name)
    if cls is None:
        raise ValueError(f"unknown generation strategy {name!r}")
    return cls(**options)
