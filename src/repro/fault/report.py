"""Report generation: every table and figure of the paper.

All renderers return plain strings (monospace tables) plus structured
row data, so benches can both print and assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fault.apimodel import ApiModel, api_model_from_table, category_order
from repro.fault.campaign import CampaignResult
from repro.fault.classify import Severity
from repro.fault.dictionaries import DictionarySet
from repro.xtypes import default_registry

#: Table III as printed in the paper: category -> (total, tested, tests,
#: issues).  Used for paper-vs-measured comparisons in EXPERIMENTS.md.
PAPER_TABLE3 = {
    "System Management": (3, 2, 8, 3),
    "Partition Management": (10, 6, 236, 0),
    "Time Management": (2, 2, 34, 3),
    "Plan Management": (2, 1, 2, 0),
    "Inter-Partition Communication": (10, 8, 598, 0),
    "Memory Management": (2, 1, 991, 0),
    "Health Monitor Management": (5, 3, 64, 0),
    "Trace Management": (5, 4, 428, 0),
    "Interrupt Management": (5, 4, 172, 0),
    "Miscellaneous": (5, 3, 41, 3),
    "Sparc V8 Specific": (12, 5, 88, 0),
}
PAPER_TOTALS = (61, 39, 2662, 9)


def _render(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep, *(line(row) for row in rows)])


# -- Table I ------------------------------------------------------------------


def table1_rows() -> list[dict[str, object]]:
    """XM data types: basic, extended aliases, size, ANSI C type."""
    return default_registry().table1_rows()


def table1() -> str:
    """Render Table I."""
    rows = [
        [
            str(row["basic"]),
            ", ".join(row["extended"]) or "-",
            str(row["size_bits"]),
            str(row["c_decl"]),
        ]
        for row in table1_rows()
    ]
    return _render(["XM Basic Type", "XM Extended Types", "Size (bits)", "ANSI C Type"], rows)


# -- Table II -----------------------------------------------------------------


def table2_rows(dictionary_name: str = "xm_s32_t") -> list[dict[str, object]]:
    """The test-value set of one dictionary (default: Table II's)."""
    dictionary = DictionarySet().lookup(dictionary_name)
    return [
        {
            "label": tv.label,
            "value": tv.value if tv.value is not None else tv.symbol.value,
            "maybe_valid": tv.maybe_valid,
        }
        for tv in dictionary.values
    ]


def table2(dictionary_name: str = "xm_s32_t") -> str:
    """Render the Table II test-value set."""
    rows = [
        [
            str(row["value"]),
            str(row["label"]) + ("*" if row["maybe_valid"] else ""),
        ]
        for row in table2_rows(dictionary_name)
    ]
    out = _render(["Test Data", "Description"], rows)
    return out + "\n* valid / invalid input depending on hypercall"


# -- Table III ----------------------------------------------------------------


@dataclass(frozen=True)
class Table3Row:
    """One category row of Table III."""

    category: str
    total_hypercalls: int
    hypercalls_tested: int
    tests: int
    raised_issues: int


def table3_rows(result: CampaignResult) -> list[Table3Row]:
    """Measured Table III rows in paper order."""
    by_cat = result.model.by_category()
    rows: list[Table3Row] = []
    for category in category_order():
        functions = by_cat.get(category, [])
        tested = [fn for fn in functions if fn.tested]
        tests = len(result.log.by_category(category))
        issues = len(result.issues_in(category))
        rows.append(
            Table3Row(
                category=category,
                total_hypercalls=len(functions),
                hypercalls_tested=len(tested),
                tests=tests,
                raised_issues=issues,
            )
        )
    return rows


def table3_totals(result: CampaignResult) -> Table3Row:
    """The totals row."""
    rows = table3_rows(result)
    return Table3Row(
        category="Total",
        total_hypercalls=sum(r.total_hypercalls for r in rows),
        hypercalls_tested=sum(r.hypercalls_tested for r in rows),
        tests=sum(r.tests for r in rows),
        raised_issues=sum(r.raised_issues for r in rows),
    )


def table3(result: CampaignResult, compare_paper: bool = True) -> str:
    """Render Table III, optionally with the paper's numbers alongside."""
    headers = ["Hypercall Category", "Total", "Tested", "No. of Tests", "Raised Issues"]
    if compare_paper:
        headers += ["Paper Tests", "Paper Issues"]
    rows = []
    for row in [*table3_rows(result), table3_totals(result)]:
        cells = [
            row.category,
            str(row.total_hypercalls),
            str(row.hypercalls_tested),
            str(row.tests),
            str(row.raised_issues),
        ]
        if compare_paper:
            paper = (
                PAPER_TABLE3.get(row.category)
                if row.category != "Total"
                else PAPER_TOTALS[2:]
            )
            if row.category == "Total":
                cells += [str(PAPER_TOTALS[2]), str(PAPER_TOTALS[3])]
            elif paper is not None:
                cells += [str(paper[2]), str(paper[3])]
            else:
                cells += ["-", "-"]
        rows.append(cells)
    return _render(headers, rows)


# -- Fig. 8 -------------------------------------------------------------------


@dataclass(frozen=True)
class Fig8Data:
    """The campaign-distribution figure's underlying numbers."""

    total_hypercalls: int
    tested: int
    untested_parameterless: int
    untested_other: int

    @property
    def tested_share(self) -> float:
        """Fraction of hypercalls in scope (paper: 64 %)."""
        return self.tested / self.total_hypercalls

    @property
    def parameterless_share_of_all(self) -> float:
        """Parameter-less share of all hypercalls (paper: ~16 %)."""
        return self.untested_parameterless / self.total_hypercalls

    @property
    def parameterless_share_of_untested(self) -> float:
        """Parameter-less share of untested (paper: 'just below 50 %')."""
        untested = self.untested_parameterless + self.untested_other
        return self.untested_parameterless / untested if untested else 0.0


def fig8_data(model: ApiModel | None = None) -> Fig8Data:
    """Compute the Fig. 8 distribution from an API model."""
    model = model if model is not None else api_model_from_table()
    tested = model.tested_functions()
    untested = model.untested_functions()
    parameterless = [fn for fn in untested if not fn.has_params]
    return Fig8Data(
        total_hypercalls=len(model),
        tested=len(tested),
        untested_parameterless=len(parameterless),
        untested_other=len(untested) - len(parameterless),
    )


def fig8(model: ApiModel | None = None) -> str:
    """Render the Fig. 8 distribution as a text chart."""
    data = fig8_data(model)

    def bar(count: int) -> str:
        return "#" * count

    lines = [
        "XtratuM test campaign distribution (Fig. 8)",
        f"  tested hypercalls        {bar(data.tested)} {data.tested}"
        f" ({data.tested_share:.0%})",
        f"  untested (no parameters) {bar(data.untested_parameterless)} "
        f"{data.untested_parameterless} ({data.parameterless_share_of_all:.0%} of all)",
        f"  untested (other)         {bar(data.untested_other)} {data.untested_other}",
        f"  parameter-less share of untested: "
        f"{data.parameterless_share_of_untested:.0%}",
    ]
    return "\n".join(lines)


# -- Issues and summary ----------------------------------------------------------


def issues_report(result: CampaignResult) -> str:
    """Render the Section IV findings list."""
    if not result.issues:
        return "No robustness issues raised."
    rows = []
    for index, issue in enumerate(result.issues, start=1):
        rows.append(
            [
                str(index),
                issue.hypercall,
                issue.severity.value,
                issue.kind.value,
                str(issue.case_count),
                issue.matched_vulnerability or "-",
            ]
        )
    table = _render(
        ["#", "Hypercall", "Severity", "Failure", "Cases", "Known id"], rows
    )
    details = "\n".join(
        f"  [{issue.matched_vulnerability or '-'}] {issue.description}"
        for issue in result.issues
    )
    return table + "\n\n" + details


def severity_summary(result: CampaignResult) -> str:
    """Render the CRASH histogram."""
    counts = result.severity_counts()
    rows = [
        [severity.value, str(counts[severity])]
        for severity in Severity
    ]
    return _render(["Severity", "Tests"], rows)


def severity_heatmap(result: CampaignResult) -> str:
    """Category × severity count matrix (failures only) as text."""
    from repro.fault.stats import severity_matrix

    categories, matrix = severity_matrix(result)
    failure_severities = [s for s in Severity if s is not Severity.PASS]
    headers = ["Category"] + [s.value[:6] for s in failure_severities]
    rows = []
    for index, category in enumerate(categories):
        counts = [
            str(matrix[index][list(Severity).index(s)]) for s in failure_severities
        ]
        rows.append([category, *counts])
    return _render(headers, rows)


def full_report(result: CampaignResult) -> str:
    """The whole analysis dossier in one string (CLI `run` output)."""
    sections = [
        campaign_summary(result),
        "",
        table3(result),
        "",
        issues_report(result),
        "",
        severity_summary(result),
        "",
        severity_heatmap(result),
    ]
    return "\n".join(sections)


def campaign_summary(result: CampaignResult) -> str:
    """One-screen campaign summary."""
    totals = table3_totals(result)
    failures = len(result.failures())
    lines = [
        f"Kernel under test : XtratuM {result.kernel_version}",
        f"Strategy          : {result.strategy_name}",
        f"Hypercalls tested : {totals.hypercalls_tested} of {totals.total_hypercalls}",
        f"Tests executed    : {totals.tests}",
        f"Failing tests     : {failures}",
        f"Issues raised     : {totals.raised_issues}",
    ]
    # Process-level incidents the supervisor absorbed, when any.
    killed = sum(1 for record in result.log if record.worker_killed)
    timed_out = sum(1 for record in result.log if record.watchdog_expired)
    arbitrated = sum(1 for record in result.log if record.arbitrated)
    quarantined = sum(1 for record in result.log if record.quarantined)
    if killed:
        lines.append(f"Worker kills      : {killed}")
    if timed_out:
        lines.append(f"Watchdog timeouts : {timed_out}")
    if arbitrated:
        lines.append(f"Arbitrated verdicts : {arbitrated}")
    if quarantined:
        lines.append(f"Quarantined (skipped) : {quarantined}")
    stats = result.execution_stats or {}
    reset_modes = stats.get("reset_modes") or {}
    if reset_modes:
        breakdown = ", ".join(
            f"{name}={reset_modes[name]}"
            for name in ("delta", "restore", "cold", "delta_fallbacks", "verified")
            if name in reset_modes
        )
        lines.append(f"Reset modes       : {breakdown}")
    if stats.get("pool_respawns") or stats.get("probe_respawns"):
        lines.append(
            "Pool respawns     : "
            f"{stats.get('pool_respawns', 0)} main, "
            f"{stats.get('probe_respawns', 0)} probe"
        )
    if stats.get("degraded_serial"):
        lines.append("Execution degraded to serial (respawn budget exhausted)")
    return "\n".join(lines)
