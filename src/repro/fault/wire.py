"""Wire formats for the campaign's process-pool and log paths.

Everything that crosses a process or file boundary goes through this
module, so the pool path and the JSONL log path cannot drift apart:

- **Spec codec** — :func:`spec_to_dict` / :func:`spec_from_dict`, the
  plain-dict form of a :class:`~repro.fault.mutant.TestCallSpec` (grew
  ad-hoc in the executor during PR 1; consolidated here).
- **Record codec** — :func:`record_to_dict` / :func:`record_from_dict`,
  the JSON-serialisable form of a
  :class:`~repro.fault.testlog.TestRecord`.  ``record_from_dict`` is
  forward-compatible: unknown keys (a log written by newer code) are
  dropped with a warning, missing keys take the dataclass defaults.
- **Relay codec** — :func:`encode_record` / :func:`decode_record`, the
  compact form streamed back from pool workers: fields still at their
  defaults are omitted, which roughly halves the pickled size of a
  nominal record without changing what a decode reconstructs.  Logs on
  disk always use the full record codec.
- **Spec table** — :class:`SuiteRecipe` and :func:`build_spec_table`.
  Suite generation is pure in the campaign configuration, so instead of
  pickling every spec across the pool, the parent ships the *recipe*
  once per worker (in the pool initializer) and each side derives the
  identical, identically-ordered spec table; a shard on the wire is
  then just a list of integer indices into that table
  (see :func:`~repro.fault.executor.run_shard_payload`).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Iterator

from repro.fault.apimodel import ApiFunction, ApiModel
from repro.fault.combinator import GenerationStrategy
from repro.fault.dictionaries import DictionarySet
from repro.fault.matrix import build_matrix
from repro.fault.mutant import ArgSpec, TestCallSpec, dataset_to_spec
from repro.fault.testlog import Invocation, TestRecord

# -- spec codec --------------------------------------------------------------


def spec_to_dict(spec: TestCallSpec) -> dict:
    """Picklable plain-dict form of a spec."""
    return {
        "test_id": spec.test_id,
        "function": spec.function,
        "category": spec.category,
        "args": [
            {
                "param": a.param,
                "label": a.label,
                "value": a.value,
                "symbol": a.symbol,
            }
            for a in spec.args
        ],
    }


def spec_from_dict(spec_dict: dict) -> TestCallSpec:
    """Rebuild a spec from its :func:`spec_to_dict` form."""
    return TestCallSpec(
        test_id=spec_dict["test_id"],
        function=spec_dict["function"],
        category=spec_dict["category"],
        args=tuple(ArgSpec(**arg) for arg in spec_dict["args"]),
    )


# -- record codec ------------------------------------------------------------


def record_to_dict(record: TestRecord) -> dict:
    """JSON-serialisable form of a record (the log path's format).

    Built by hand rather than ``dataclasses.asdict``: asdict deep-copies
    recursively and costs ~150us per record, which at campaign rates is
    a measurable slice of the whole execution; this is the hot half of
    both the streamed log and the relay encoder.
    """
    return {
        "test_id": record.test_id,
        "function": record.function,
        "category": record.category,
        "arg_labels": list(record.arg_labels),
        "resolved_args": list(record.resolved_args),
        "invocations": [
            {
                "returned": inv.returned,
                "rc": inv.rc,
                "note": inv.note,
                "state": inv.state,
            }
            for inv in record.invocations
        ],
        "sim_crashed": record.sim_crashed,
        "sim_hung": record.sim_hung,
        "kernel_halted": record.kernel_halted,
        "halt_reason": record.halt_reason,
        "resets": list(record.resets),
        "hm_events": list(record.hm_events),
        "overruns": record.overruns,
        "test_partition_state": record.test_partition_state,
        "console_tail": list(record.console_tail),
        "kernel_version": record.kernel_version,
        "frames": record.frames,
        "wall_time_s": record.wall_time_s,
        "worker_killed": record.worker_killed,
        "watchdog_expired": record.watchdog_expired,
        "attempts": record.attempts,
        "arbitrated": record.arbitrated,
        "quarantined": record.quarantined,
        "host_context": record.host_context,
    }


#: Field names of the current record/invocation dataclasses, computed
#: once: ``record_from_dict`` sits on the relay and fabric hot paths
#: (one call per streamed record), where rebuilding these sets per call
#: was a measurable slice of the parent/coordinator's per-record cost.
_RECORD_FIELDS = frozenset(f.name for f in fields(TestRecord))
_INVOCATION_FIELDS = frozenset(f.name for f in fields(Invocation))

#: Active unknown-field collectors (see :func:`dedup_unknown_fields`):
#: a stack so nested loads each aggregate their own warning tally.
_UNKNOWN_COLLECTORS: list[dict[tuple[str, ...], int]] = []


@contextmanager
def dedup_unknown_fields() -> Iterator[None]:
    """Aggregate unknown-field warnings across one bulk load.

    Inside this context :func:`record_from_dict` counts records per
    distinct unknown-field set instead of warning on each one — a
    100k-record log written by newer code would otherwise emit 100k
    identical warnings under ``-W always``.  On exit, one warning per
    distinct field set reports the affected record count.
    """
    tally: dict[tuple[str, ...], int] = {}
    _UNKNOWN_COLLECTORS.append(tally)
    try:
        yield
    finally:
        _UNKNOWN_COLLECTORS.pop()
        for unknown, count in tally.items():
            warnings.warn(
                f"TestRecord.from_dict: dropped unrecognised fields "
                f"{list(unknown)} from {count} record(s) "
                "(log written by newer code?)",
                stacklevel=3,
            )


def record_from_dict(data: dict) -> TestRecord:
    """Inverse of :func:`record_to_dict`.

    Keys this version does not know (a log written by newer code) are
    dropped with a warning rather than crashing the load, so old
    analysers keep working on forward-compatible logs; missing keys
    (the compact relay form) take the dataclass defaults.  Under an
    active :func:`dedup_unknown_fields` context the per-record warning
    is replaced by one aggregate warning per distinct field set.
    """
    known = _RECORD_FIELDS
    if not known.issuperset(data):
        unknown = sorted(set(data) - known)
        if _UNKNOWN_COLLECTORS:
            tally = _UNKNOWN_COLLECTORS[-1]
            key = tuple(unknown)
            tally[key] = tally.get(key, 0) + 1
        else:
            warnings.warn(
                f"TestRecord.from_dict: dropping unrecognised fields {unknown}"
                " (log written by newer code?)",
                stacklevel=2,
            )
        data = {key: value for key, value in data.items() if key in known}
    else:
        data = dict(data)
    data["arg_labels"] = tuple(data.get("arg_labels", ()))
    data["resolved_args"] = tuple(data.get("resolved_args", ()))
    inv_known = _INVOCATION_FIELDS
    data["invocations"] = [
        Invocation(**{k: v for k, v in inv.items() if k in inv_known})
        for inv in data.get("invocations", [])
    ]
    data["resets"] = [tuple(r) for r in data.get("resets", [])]
    data["hm_events"] = [tuple(e) for e in data.get("hm_events", [])]
    return TestRecord(**data)


#: Default field values of a record's dict form, used to sparsify the
#: relay encoding (computed once, lazily — TestRecord requires the three
#: identity fields, which never match a real record's values).
_RECORD_DEFAULTS: dict | None = None


def _record_defaults() -> dict:
    """Dict form of an all-defaults record."""
    global _RECORD_DEFAULTS
    if _RECORD_DEFAULTS is None:
        _RECORD_DEFAULTS = record_to_dict(
            TestRecord(test_id="", function="", category="")
        )
    return _RECORD_DEFAULTS


def encode_record(record: TestRecord) -> dict:
    """Compact relay form: fields still at their defaults are omitted.

    A nominal record is mostly defaults (no crash, no resets, no HM
    events), so dropping them roughly halves what a pool worker pickles
    back per test.  :func:`decode_record` restores the defaults, making
    the round trip lossless; the on-disk log format is unaffected.
    """
    from repro.fault import failpoints

    failpoints.fire("wire.encode")
    defaults = _record_defaults()
    data = record_to_dict(record)
    return {
        key: value
        for key, value in data.items()
        if key in ("test_id", "function", "category") or value != defaults[key]
    }


def decode_record(data: dict) -> TestRecord:
    """Rebuild a record from its :func:`encode_record` relay form."""
    from repro.fault import failpoints

    failpoints.fire("wire.decode")
    return record_from_dict(data)


# -- deterministic spec table ------------------------------------------------


def scoped_functions(
    model: ApiModel, functions: tuple[str, ...] | None
) -> list[ApiFunction]:
    """The in-scope (tested) hypercalls, optionally filtered by name."""
    tested = model.tested_functions()
    if functions is None:
        return tested
    wanted = set(functions)
    return [fn for fn in tested if fn.name in wanted]


#: ``generate_suites`` memo.  Expansion is pure in its inputs, so the
#: result is shared process-wide: repeated campaigns over the same model
#: (every suite of a compiled run, every bench trial) skip the matrix
#: expansion entirely.  Keys compare the model/dictionaries/strategy by
#: *identity* — the entry pins them alive, so a dead object's id can
#: never alias a new one — and specs are frozen, so sharing is safe.
_SUITE_MEMO: list[tuple] = []
_SUITE_MEMO_MAX = 8


def generate_suites(
    model: ApiModel,
    dictionaries: DictionarySet,
    strategy: GenerationStrategy,
    functions: tuple[str, ...] | None,
) -> list[tuple[ApiFunction, list[TestCallSpec]]]:
    """Expand every in-scope hypercall into its specs (Fig. 4 steps 1-3).

    This is the single source of truth for suite *ordering*: the
    campaign and every pool worker derive their spec tables from it, so
    an index on the wire means the same spec on both sides.  The result
    is memoized and shared — treat it as immutable.
    """
    for memo_model, memo_dicts, memo_strategy, memo_functions, out in _SUITE_MEMO:
        if (
            memo_model is model
            and memo_dicts is dictionaries
            and memo_strategy is strategy
            and memo_functions == functions
        ):
            return out
    out: list[tuple[ApiFunction, list[TestCallSpec]]] = []
    for function in scoped_functions(model, functions):
        matrix = build_matrix(function, dictionaries)
        specs = [
            dataset_to_spec(function, dataset, index)
            for index, dataset in enumerate(strategy.generate(matrix))
        ]
        out.append((function, specs))
    _SUITE_MEMO.append((model, dictionaries, strategy, functions, out))
    if len(_SUITE_MEMO) > _SUITE_MEMO_MAX:
        del _SUITE_MEMO[0]
    return out


@dataclass(frozen=True)
class SuiteRecipe:
    """Everything a pool worker needs to rebuild the campaign's specs.

    Shipped once per worker in the pool initializer; ``total`` lets the
    worker verify its locally generated table against the parent's
    before any index is trusted.
    """

    model: ApiModel
    dictionaries: DictionarySet
    strategy: GenerationStrategy
    functions: tuple[str, ...] | None
    total: int


def build_spec_table(recipe: SuiteRecipe) -> list[TestCallSpec]:
    """Regenerate the flat, suite-ordered spec table from a recipe.

    Raises ``RuntimeError`` when the regenerated table's size disagrees
    with the parent's — a drifted recipe must fail loudly rather than
    let wire indices silently address the wrong specs.
    """
    table = [
        spec
        for _function, specs in generate_suites(
            recipe.model, recipe.dictionaries, recipe.strategy, recipe.functions
        )
        for spec in specs
    ]
    if len(table) != recipe.total:
        raise RuntimeError(
            f"spec table mismatch: worker regenerated {len(table)} specs, "
            f"parent campaign has {recipe.total}"
        )
    return table
