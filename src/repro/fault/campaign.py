"""Campaign orchestration: the whole methodology end to end (Fig. 1).

A :class:`Campaign` binds the preparation-phase artefacts (API model,
dictionaries, strategy, oracle) and runs the generation + execution +
analysis pipeline over the in-scope hypercalls.  Execution is serial by
default; pass ``processes`` to fan the independent test runs across a
process pool (the work is embarrassingly parallel — the paper ran its
campaign from shell scripts for the same reason).  The pool dispatches
in *shards*: specs travel as compact indices into the suites both sides
generate deterministically (see :mod:`repro.fault.wire`), one future
covers a whole batch, and workers stream records back per test on a
results relay — so the per-test cost is the test, not the bookkeeping.

Execution is also *durable*: ``log_path`` checkpoints every record to a
JSONL stream the moment it arrives, the parallel runner supervises its
workers (a test that kills its worker is logged as a ``worker_killed``
record and the pool is respawned — robustness tests kill their own
harness, as the paper's ``XM_set_timer(1,1,1)`` did to TSIM), and
``timeout_s`` arms a per-test wall-clock watchdog.  An interrupted
campaign resumes losslessly from its own partial stream via
``resume_from``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable, Iterator

from repro.fault import failpoints, wire
from repro.fault.apimodel import ApiFunction, ApiModel, api_model_from_table
from repro.fault.classify import Classification, Severity, classify
from repro.fault.combinator import CartesianStrategy, GenerationStrategy
from repro.fault.dictionaries import DictionarySet
from repro.fault.executor import (
    DEFAULT_FRAMES,
    DEFAULT_JOURNAL_BUDGET,
    TestExecutor,
    _init_worker,
    run_shard_payload,
    worker_killed_record,
)
from repro.fault.issues import Issue, cluster_issues
from repro.fault.mutant import TestCallSpec, default_layout
from repro.fault.oracle import Expectation, OracleContext, ReferenceOracle
from repro.fault.plan import CompiledPlan, group_consecutive
from repro.fault.resilience import (
    Quarantine,
    RespawnBreaker,
    RetryPolicy,
    VerdictArbiter,
    quarantined_record,
)
from repro.fault.testlog import CampaignLog, TestRecord
from repro.xm.vulns import VULNERABLE_VERSION


@dataclass
class HypercallSuite:
    """All test cases for one hypercall."""

    function: ApiFunction
    specs: list[TestCallSpec]

    @property
    def size(self) -> int:
        """Number of test cases in the suite."""
        return len(self.specs)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    log: CampaignLog
    classified: list[tuple[TestRecord, Expectation, Classification]]
    issues: list[Issue]
    kernel_version: str
    model: ApiModel
    strategy_name: str
    #: Supervision counters from the run that produced this result
    #: (pool/probe respawns, arbitration retries, quarantine skips,
    #: serial degradation, reset modes).  Offline analysis rehydrates
    #: them from the log's stats trailer; None only for logs that never
    #: carried one (pre-trailer logs, hand-built record lists).
    execution_stats: dict | None = None

    @property
    def total_tests(self) -> int:
        """Executed test cases."""
        return len(self.log)

    def failures(self) -> list[tuple[TestRecord, Expectation, Classification]]:
        """Classified entries that failed."""
        return [item for item in self.classified if item[2].is_failure]

    def severity_counts(self) -> dict[Severity, int]:
        """CRASH histogram over all tests."""
        counts = {severity: 0 for severity in Severity}
        for _record, _expectation, classification in self.classified:
            counts[classification.severity] += 1
        return counts

    def issues_in(self, category: str) -> list[Issue]:
        """Issues raised in one Table III category."""
        return [issue for issue in self.issues if issue.category == category]

    def issue_count(self) -> int:
        """Number of clustered issues (the paper's '9')."""
        return len(self.issues)


ProgressHook = Callable[[int, int, TestRecord], None]
#: Per-record checkpoint callback (the streaming log's append).
RecordSink = Callable[[TestRecord], None]


def _auto_shard_size(total: int, processes: int) -> int:
    """Default shard size for ``total`` specs across ``processes`` workers.

    Big enough to amortise per-task dispatch (at least 16 specs, ~8
    shards per worker on large campaigns so stragglers balance), but
    never so big that a worker sits idle while another holds more than
    its share of a small campaign.
    """
    if total <= 0:
        return 1
    amortised = max(16, total // (processes * 8))
    per_worker = -(-total // processes)  # ceil
    return max(1, min(amortised, per_worker))


def _merge_reset_modes(stats: dict, counts: dict) -> None:
    """Accumulate executor reset-ladder counters into ``execution_stats``."""
    modes = stats.setdefault("reset_modes", {})
    for name, count in counts.items():
        if count:
            modes[name] = modes.get(name, 0) + count


def _merge_phase_times(stats: dict, phases: dict) -> None:
    """Accumulate a ``--profile`` per-phase wall-time breakdown."""
    times = stats.setdefault("phase_times", {})
    for name, seconds in phases.items():
        if seconds:
            times[name] = times.get(name, 0.0) + seconds


def _merge_execution_stats(stats: dict, prior: dict) -> None:
    """Fold a previous (interrupted) run's stats into this run's.

    Counters add, flags OR, the reset-mode histogram merges per mode
    (and the profile's phase timings per phase) — so an
    interrupted+resumed campaign reports the same totals an
    uninterrupted run of the same suite would have.
    """
    for key, value in prior.items():
        if key == "reset_modes":
            _merge_reset_modes(stats, value or {})
        elif key == "phase_times":
            _merge_phase_times(stats, value or {})
        elif isinstance(value, bool):
            stats[key] = bool(stats.get(key)) or value
        elif isinstance(value, (int, float)):
            stats[key] = stats.get(key, 0) + value
        else:
            stats.setdefault(key, value)


#: Process-level :class:`CompiledPlan` memo.  Compilation is pure in
#: (specs, layout, kernel version, frames); keys carry the identity of
#: the shared spec lists (themselves memoized in
#: :func:`repro.fault.wire.generate_suites`), and each entry pins those
#: lists alive so a recycled id() can never alias a different suite.
_PLAN_MEMO: dict[tuple, tuple] = {}
_PLAN_MEMO_MAX = 8


# Default-configuration singletons.  The model, dictionaries and
# strategy are treated as immutable once built, so every
# default-configured campaign shares one instance of each — which is
# what lets the identity-keyed suite and plan memos above actually hit
# across campaign objects (fresh defaults per instance would never
# share a key).


@lru_cache(maxsize=1)
def _default_model() -> ApiModel:
    return api_model_from_table()


@lru_cache(maxsize=1)
def _default_dictionaries() -> DictionarySet:
    return DictionarySet()


@lru_cache(maxsize=1)
def _default_strategy() -> CartesianStrategy:
    return CartesianStrategy()


@dataclass
class Campaign:
    """One configured robustness-testing campaign."""

    model: ApiModel = field(default_factory=_default_model)
    dictionaries: DictionarySet = field(default_factory=_default_dictionaries)
    strategy: GenerationStrategy = field(default_factory=_default_strategy)
    kernel_version: str = VULNERABLE_VERSION
    frames: int = DEFAULT_FRAMES
    functions: tuple[str, ...] | None = None
    oracle_context: OracleContext = field(default_factory=OracleContext)
    #: Testbed factory for the serial executor; None = EagleEye.  The
    #: process-parallel path always uses the default testbed (factories
    #: do not cross process boundaries).
    system_factory: object | None = None
    #: Execute via warm-boot snapshots (see :mod:`repro.fault.executor`);
    #: forced off when ``system_factory`` is custom.
    warm_boot: bool = True
    #: Top rung of the executor's reset ladder: keep a live simulator
    #: per worker and revert it in place between tests (falls back to
    #: full snapshot restores on journal overflow, crash/hang, or an
    #: unjournalable object graph).  Only meaningful under ``warm_boot``.
    delta_reset: bool = True
    #: Board-memory bytes one delta reset may revert; None = unlimited.
    journal_budget: int | None = DEFAULT_JOURNAL_BUDGET
    #: Run every spec both ways (delta reset and full restore) and
    #: require field-for-field record identity; raises on divergence.
    verify_reset: bool = False
    #: Compile the suites into a :class:`~repro.fault.plan.CompiledPlan`
    #: once per campaign (resolved arguments, pre-converted hypercall
    #: arguments, dispatch prechecks, record skeletons) instead of
    #: re-deriving all of it per test.
    compiled_plan: bool = True
    #: Execute consecutive same-hypercall specs as one batched pass
    #: through a single armed simulator loop (snapshot resolved and
    #: journal armed once per group).  Only meaningful under
    #: ``compiled_plan``; the executor falls back to per-spec execution
    #: whenever a watchdog, audit, or reset-ladder degradation needs
    #: per-test bracketing.
    batch_hypercalls: bool = True
    #: Run every planned spec through the uncompiled path too and
    #: require field-for-field record identity; raises on divergence.
    verify_plan: bool = False
    #: Collect a per-phase wall-time breakdown (bringup/run/record/
    #: reset) into ``execution_stats["phase_times"]``.
    profile: bool = False
    #: Suites are deterministic for a fixed configuration, so they are
    #: generated once and reused by run()/analyse()/total_tests().
    _suites: list[HypercallSuite] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: The compiled execution plan over the suites, likewise cached.
    _plan: CompiledPlan | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def paper_campaign(cls, **overrides: object) -> "Campaign":
        """The XtratuM case-study configuration (Table III scope)."""
        return cls(**overrides)  # type: ignore[arg-type]

    # -- generation ---------------------------------------------------------

    def scope(self) -> list[ApiFunction]:
        """The in-scope (tested) hypercalls."""
        return wire.scoped_functions(self.model, self.functions)

    def suites(self) -> list[HypercallSuite]:
        """Generate every suite (Fig. 4 steps 1-3), cached.

        Generation is pure in the campaign configuration, so the suites
        are built once; run() and analyse() no longer each pay a full
        matrix expansion over the same scope.  The expansion itself
        lives in :func:`repro.fault.wire.generate_suites` — the same
        helper pool workers use to regenerate their spec tables, so
        wire indices always address the specs this side generated.
        """
        if self._suites is None:
            self._suites = [
                HypercallSuite(function=function, specs=specs)
                for function, specs in wire.generate_suites(
                    self.model, self.dictionaries, self.strategy, self.functions
                )
            ]
        return self._suites

    def iter_specs(self) -> Iterator[TestCallSpec]:
        """All test cases across suites."""
        for suite in self.suites():
            yield from suite.specs

    def plan(self) -> CompiledPlan:
        """The compiled execution plan over all suites, cached.

        Compilation is pure in the campaign configuration (specs, test
        partition layout, kernel version), so — like :meth:`suites` —
        it runs once and is shared by the serial runner and
        :meth:`analyse`.  Pool workers compile their own copy from the
        wire recipe in their initializer (plans do not cross process
        boundaries; the spec tables they compile from are regenerated
        deterministically on both sides).
        """
        if self._plan is None:
            suites = self.suites()
            key = (
                tuple(id(suite.specs) for suite in suites),
                self.kernel_version,
                self.frames,
            )
            hit = _PLAN_MEMO.get(key)
            if hit is None:
                compiled = CompiledPlan(
                    list(self.iter_specs()),
                    default_layout(),
                    self.kernel_version,
                    self.frames,
                )
                # The pinned spec lists keep the id() key unambiguous.
                hit = (tuple(suite.specs for suite in suites), compiled)
                _PLAN_MEMO[key] = hit
                while len(_PLAN_MEMO) > _PLAN_MEMO_MAX:
                    _PLAN_MEMO.pop(next(iter(_PLAN_MEMO)))
            self._plan = hit[1]
        return self._plan

    def total_tests(self) -> int:
        """Campaign size before execution."""
        return sum(suite.size for suite in self.suites())

    # -- execution ----------------------------------------------------------

    def run(
        self,
        processes: int | None = None,
        progress: ProgressHook | None = None,
        resume_from: CampaignLog | None = None,
        log_path: str | Path | None = None,
        timeout_s: float | None = None,
        shard_size: int | None = None,
        retry_policy: RetryPolicy | None = None,
        quarantine_path: str | Path | None = None,
        log_fsync: bool = False,
    ) -> CampaignResult:
        """Execute the campaign and analyse the logs.

        ``processes=None`` runs serially in-process; an integer fans out
        across a supervised worker pool with process isolation.  The
        pool dispatches *shards* — batches of specs encoded as indices
        into the campaign's own suites — rather than one task per spec,
        so per-test bookkeeping is amortised; ``shard_size`` overrides
        the auto-sized batches (``shard_size=1`` degenerates to per-spec
        dispatch and produces field-for-field identical records).
        ``resume_from`` skips tests already present in an earlier log
        (an interrupted campaign picks up where it stopped, like the
        paper's restartable shell scripts); the analysed result covers
        the union and is ordered — and therefore classified and
        clustered — exactly as an uninterrupted run would be.  Resumed
        records are validated against this campaign's configuration:
        a log recorded on another kernel version or frame count raises
        ``ValueError`` rather than being classified against the wrong
        oracle.

        ``log_path`` streams every record to a JSONL checkpoint file
        the moment it arrives (append mode, flushed per record), so a
        crash or Ctrl-C never loses completed work; pointing it at a
        partial log appends only the missing records.  ``log_fsync``
        follows every checkpoint flush with ``os.fsync``, extending
        durability from process crashes to host power loss.
        ``timeout_s`` arms a per-test wall-clock watchdog.

        ``retry_policy`` controls verdict arbitration (see
        :class:`~repro.fault.resilience.RetryPolicy`): by default a
        suspect ``worker_killed`` / ``watchdog_expired`` outcome is
        re-run once and the verdict needs two agreeing observations;
        ``RetryPolicy(max_attempts=1)`` restores first-sight verdicts.
        ``quarantine_path`` names a persistent quarantine file: specs
        with a confirmed killer verdict are added to it, and specs
        already in it are skipped with a ``quarantined`` record rather
        than re-fed to a fresh pool.
        """
        specs = list(self.iter_specs())
        remaining = specs
        done: list[TestRecord] = []
        if resume_from is not None:
            self._validate_resume(resume_from)
            have = {record.test_id: record for record in resume_from}
            done = [have[s.test_id] for s in specs if s.test_id in have]
            remaining = [s for s in specs if s.test_id not in have]
        if processes is not None and self.system_factory is not None:
            raise ValueError(
                "process-parallel execution supports only the default testbed"
            )
        policy = retry_policy if retry_policy is not None else RetryPolicy()
        stats = {
            "pool_respawns": 0,
            "probe_respawns": 0,
            "retries": 0,
            "degraded_serial": False,
            "quarantined_skips": 0,
            # Per-test bring-up modes across all executors/workers (the
            # reset ladder: delta reset > snapshot restore > cold boot).
            "reset_modes": {},
        }
        if resume_from is not None and resume_from.execution_stats:
            # The interrupted run's supervision counters rode along on
            # its log trailer; fold them in so the resumed campaign
            # reports run totals, not just this process's share.
            _merge_execution_stats(stats, resume_from.execution_stats)
        quarantine: Quarantine | None = None
        if quarantine_path is not None:
            quarantine = Quarantine.load(quarantine_path)
            skipped = [s for s in remaining if s.test_id in quarantine]
            if skipped:
                # Known killers are skipped-with-record: the verdict
                # stays visible in the analysis without feeding the
                # spec to (and losing) another worker.
                remaining = [s for s in remaining if s.test_id not in quarantine]
                done = [
                    *done,
                    *(
                        quarantined_record(
                            spec,
                            self.kernel_version,
                            self.frames,
                            quarantine.entries.get(spec.test_id),
                        )
                        for spec in skipped
                    ),
                ]
                stats["quarantined_skips"] = len(skipped)
        stream = (
            CampaignLog.stream(log_path, fsync=log_fsync)
            if log_path is not None
            else None
        )
        try:
            if stream is not None:
                # Checkpoint resumed records too (no-ops when resuming
                # into the same file), so the stream alone is always a
                # complete restart point.
                for record in done:
                    stream.append(record)
            sink = stream.append if stream is not None else None
            if processes is None:
                records = self._run_serial(
                    remaining, progress, sink, timeout_s, policy, stats
                )
            else:
                records = self._run_parallel(
                    remaining,
                    processes,
                    progress,
                    sink,
                    timeout_s,
                    shard_size,
                    policy,
                    quarantine,
                    stats,
                )
        finally:
            if stream is not None:
                # Trailer the supervision stats onto the stream — even
                # on interrupt — so a log analysed offline reports what
                # the live run did (reset modes, respawns, arbitration)
                # and a resumed campaign can fold this leg's counters
                # into its own.
                try:
                    stream.append_stats(stats)
                finally:
                    stream.close()
            # Quarantine additions survive even an aborted campaign —
            # a confirmed killer must not be forgotten by the next run.
            if quarantine is not None and quarantine.dirty:
                quarantine.save()
        # Merge in global spec order: resumed, parallel and interrupted
        # campaigns must classify and cluster exactly like a serial
        # uninterrupted run.
        order = {spec.test_id: index for index, spec in enumerate(specs)}
        combined = [*done, *records]
        combined.sort(key=lambda record: order[record.test_id])
        log = CampaignLog(combined)
        log.execution_stats = stats
        result = self.analyse(log)
        result.execution_stats = stats
        return result

    def _validate_resume(self, resume_from: CampaignLog) -> None:
        """Reject logs recorded under a different configuration."""
        for record in resume_from:
            if record.kernel_version and record.kernel_version != self.kernel_version:
                raise ValueError(
                    f"cannot resume: record {record.test_id} was executed on "
                    f"kernel {record.kernel_version}, this campaign targets "
                    f"{self.kernel_version}"
                )
            if record.frames and record.frames != self.frames:
                raise ValueError(
                    f"cannot resume: record {record.test_id} ran over "
                    f"{record.frames} major frames, this campaign runs "
                    f"{self.frames}"
                )

    def _run_serial(
        self,
        specs: list[TestCallSpec],
        progress: ProgressHook | None,
        sink: RecordSink | None = None,
        timeout_s: float | None = None,
        policy: RetryPolicy | None = None,
        stats: dict | None = None,
    ) -> list[TestRecord]:
        executor = TestExecutor(
            kernel_version=self.kernel_version,
            frames=self.frames,
            system_factory=self.system_factory,
            warm_boot=self.warm_boot,
            timeout_s=timeout_s,
            delta_reset=self.delta_reset,
            journal_budget=self.journal_budget,
            verify_reset=self.verify_reset,
            verify_plan=self.verify_plan,
            profile=self.profile,
        )
        arbiter = VerdictArbiter(policy) if policy is not None else None
        records: list[TestRecord] = []
        total = len(specs)

        def finish(record: TestRecord) -> None:
            records.append(record)
            if sink is not None:
                sink(record)
            if progress is not None:
                progress(len(records), total, record)

        try:
            if self.compiled_plan:
                plan = self.plan()
                entries = [plan.by_id[spec.test_id] for spec in specs]

                def emit(entry, record: TestRecord) -> None:  # noqa: ANN001
                    finish(
                        self._arbitrated_serial_run(
                            executor, entry.spec, policy, arbiter, record
                        )
                    )

                if self.batch_hypercalls:
                    for group in group_consecutive(entries):
                        executor.run_group(group, emit=emit)
                else:
                    for entry in entries:
                        emit(entry, executor.run_planned(entry))
            else:
                for spec in specs:
                    finish(
                        self._arbitrated_serial_run(executor, spec, policy, arbiter)
                    )
        finally:
            if stats is not None:
                _merge_reset_modes(stats, executor.reset_stats)
                if self.profile:
                    _merge_phase_times(stats, executor.phase_times)
        return records

    def _arbitrated_serial_run(
        self,
        executor: TestExecutor,
        spec: TestCallSpec,
        policy: RetryPolicy | None,
        arbiter: VerdictArbiter | None,
        record: TestRecord | None = None,
    ) -> TestRecord:
        """One serial run, re-trying watchdog verdicts up to the quorum.

        The only process-level verdict the in-process runner can see is
        ``watchdog_expired`` (nothing kills a worker — there is none);
        a suspect expiry is re-run until the quorum agrees, the attempt
        budget runs out, or a re-run completes and wins outright.  A
        planned/batched record enters arbitration via ``record`` —
        re-runs always take the unplanned per-spec path, so a suspect
        verdict is re-checked outside the machinery under suspicion.
        """
        if record is None:
            record = executor.run(spec)
        if arbiter is not None and policy is not None and not policy.single_shot:
            while record.watchdog_expired and not arbiter.observe(
                spec.test_id, "watchdog_expired"
            ):
                policy.backoff(len(arbiter.observations(spec.test_id)))
                record = executor.run(spec)
            arbiter.annotate(record)
        if record.watchdog_expired:
            record.host_context = {
                "processes": 1,
                "shard_size": 1,
                "attempt": record.attempts,
            }
        return record

    def _wire_recipe(self) -> wire.SuiteRecipe:
        """The recipe pool workers regenerate their spec tables from."""
        return wire.SuiteRecipe(
            model=self.model,
            dictionaries=self.dictionaries,
            strategy=self.strategy,
            functions=self.functions,
            total=self.total_tests(),
        )

    def _run_parallel(
        self,
        specs: list[TestCallSpec],
        processes: int,
        progress: ProgressHook | None,
        sink: RecordSink | None = None,
        timeout_s: float | None = None,
        shard_size: int | None = None,
        policy: RetryPolicy | None = None,
        quarantine: Quarantine | None = None,
        stats: dict | None = None,
    ) -> list[TestRecord]:
        """Supervised sharded execution that survives worker deaths.

        Specs are partitioned into shards and each shard is one pool
        task: a persistent worker (warm-boot snapshot built once, in
        the initializer) runs the whole shard and streams records back
        on the results relay in batches — delivery, checkpointing via
        ``sink`` and ``progress`` reporting stay at test granularity on
        the parent side, while the per-test relay put (a pickle plus a
        pipe syscall each) is amortised over the batch.  When a test
        kills its worker the pool breaks; instead of forfeiting the
        run, the supervisor takes the unfinished remainders of every
        announced shard as suspects (a dead worker's unflushed batch
        tail makes some of them innocents that actually finished) and
        re-runs them on a single-worker probe pool with single-spec
        shards — which flush per record, so innocents simply complete
        there, and when the probe pool breaks the killer is exactly the
        suspect without a record.

        Process-level verdicts are *arbitrated* under ``policy``: a
        suspect kill or watchdog expiry is re-run and the verdict needs
        a quorum of observations (a re-run that completes normally wins
        immediately), with the consumed attempts recorded on the
        record.  Confirmed killers are added to ``quarantine``; a
        :class:`~repro.fault.resilience.RespawnBreaker` watches the
        pool respawns and degrades the rest of the campaign to the
        serial in-process runner when respawned pools keep dying
        without progress.  User ``progress``/``sink`` callbacks are
        sandboxed — one warning per hook, a raising callback never
        aborts the round (keyboard interrupts still do).
        """
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if policy is None:
            policy = RetryPolicy(max_attempts=1, quorum=1)
        if stats is None:
            stats = {}
        stats.setdefault("pool_respawns", 0)
        stats.setdefault("probe_respawns", 0)
        stats.setdefault("retries", 0)
        stats.setdefault("degraded_serial", False)
        arbiter = VerdictArbiter(policy)
        breaker = RespawnBreaker()
        total = len(specs)
        records: list[TestRecord] = []
        warned: set[str] = set()
        round_ctx = {"shard_size": 0}

        def guarded(kind: str, hook, *args) -> None:  # noqa: ANN001
            # A user callback must not take the campaign down with it:
            # a raising progress bar (or sink) mid-round would strand
            # the pump/watcher threads and forfeit the run.  Catch,
            # warn once per hook, keep going.  BaseException (e.g.
            # KeyboardInterrupt) still aborts — interrupting from a
            # progress hook is the documented way to stop a campaign —
            # and injected ChaosError stays fatal by design.
            try:
                hook(*args)
            except failpoints.ChaosError:
                raise
            except Exception as exc:
                if kind not in warned:
                    warned.add(kind)
                    warnings.warn(
                        f"campaign {kind} callback raised {exc!r}; "
                        "suppressing further errors from this hook",
                        stacklevel=2,
                    )

        def emit(record: TestRecord) -> None:
            records.append(record)
            if sink is not None:
                guarded("sink", sink, record)
            if progress is not None:
                guarded("progress", progress, len(records), total, record)

        def host_context(attempt: int) -> dict:
            return {
                "processes": processes,
                "shard_size": round_ctx["shard_size"],
                "attempt": attempt,
            }

        def deliver(record: TestRecord) -> bool:
            # Relayed records pass through verdict arbitration before
            # they become campaign output: a suspect watchdog expiry is
            # withheld (False) and its spec re-run until the quorum
            # decides; everything else is emitted immediately.
            if record.watchdog_expired and not policy.single_shot:
                if not arbiter.observe(record.test_id, "watchdog_expired"):
                    stats["retries"] += 1
                    return False
            arbiter.annotate(record)
            if record.watchdog_expired:
                record.host_context = host_context(record.attempts)
            emit(record)
            return True

        remaining = list(specs)
        respawned = False
        while remaining:
            if respawned:
                if breaker.tripped:
                    # Respawned pools keep dying without progress:
                    # stop thrashing and finish in-process, where a
                    # worker kill cannot happen at all.
                    stats["degraded_serial"] = True
                    warnings.warn(
                        f"pool respawn budget exhausted after "
                        f"{stats['pool_respawns']} respawns; degrading to "
                        f"serial execution for {len(remaining)} remaining "
                        "specs",
                        stacklevel=2,
                    )
                    self._run_serial(
                        remaining, None, emit, timeout_s, policy, stats
                    )
                    remaining = []
                    break
                failpoints.fire("campaign.respawn")
                stats["pool_respawns"] += 1
                breaker.note_spawn()
            marker = (len(records), arbiter.total_observations)
            size = shard_size or _auto_shard_size(len(remaining), processes)
            round_ctx["shard_size"] = size
            arrived, retry_ids, suspect_shards, broke = self._pool_round(
                remaining, processes, size, timeout_s, deliver, stats
            )
            resolved = arrived - retry_ids
            if broke:
                if not respawned and not arrived and not suspect_shards:
                    raise RuntimeError(
                        "worker pool died before any test started "
                        "(initializer failure?)"
                    )
                # One probe pool per kill, reused across the whole
                # suspect list — not one pool (and one warm boot) per
                # suspect.  Records that arrived but were withheld for
                # retry still clear their spec of killer suspicion.
                suspects = [spec for shard in suspect_shards for spec in shard]
                ever_arrived = set(arrived)
                while suspects:
                    failpoints.fire("campaign.probe_loop")
                    stats["probe_respawns"] += 1
                    # Single-spec shards: the relay flushes its record
                    # batch at every shard end, so probing one spec per
                    # shard restores exact per-record arrival — the
                    # killer is precisely the suspect without a record,
                    # with no innocents lost in an unflushed batch tail.
                    probe_arrived, probe_retry, _shards, probe_broke = (
                        self._pool_round(
                            suspects, 1, 1, timeout_s, deliver, stats
                        )
                    )
                    ever_arrived |= probe_arrived
                    resolved |= probe_arrived - probe_retry
                    suspects = [
                        s for s in suspects if s.test_id not in resolved
                    ]
                    if not probe_broke:
                        if not probe_retry:
                            break
                        continue
                    killer = next(
                        (s for s in suspects if s.test_id not in ever_arrived),
                        None,
                    )
                    if killer is None:
                        break
                    terminal = policy.single_shot or arbiter.observe(
                        killer.test_id, "worker_killed"
                    )
                    observations = arbiter.observations(killer.test_id) or [
                        "worker_killed"
                    ]
                    if not terminal:
                        stats["retries"] += 1
                        policy.backoff(len(observations))
                        continue  # killer stays first in suspects: re-probe
                    emit(
                        worker_killed_record(
                            killer,
                            self.kernel_version,
                            self.frames,
                            attempts=len(observations),
                            arbitrated=len(observations) > 1,
                            host_context=host_context(len(observations)),
                        )
                    )
                    if quarantine is not None:
                        quarantine.add(
                            killer.test_id, killer.function, observations
                        )
                    resolved.add(killer.test_id)
                    suspects = [
                        s for s in suspects if s.test_id not in resolved
                    ]
            remaining = [s for s in remaining if s.test_id not in resolved]
            if respawned:
                breaker.note_round(
                    (len(records), arbiter.total_observations) != marker
                )
            if not broke and not retry_ids:
                break
            respawned = True
        # Unordered delivery must not leak into analysis: issue clustering
        # and log files are stable in spec order.
        order = {spec.test_id: index for index, spec in enumerate(specs)}
        records.sort(key=lambda record: order[record.test_id])
        return records

    def _pool_round(
        self,
        specs: list[TestCallSpec],
        processes: int,
        shard_size: int,
        timeout_s: float | None,
        deliver: Callable[[TestRecord], bool | None],
        stats: dict | None = None,
    ) -> tuple[set[str], set[str], list[list[TestCallSpec]], bool]:
        """One sharded pool pass: (arrived ids, retry ids, suspects, broke).

        Submits one future per shard; the future only signals shard
        completion — records travel on the results relay in batched
        messages (see ``_RELAY_BATCH_SIZE`` in the executor) and are
        handed to ``deliver`` (checkpoint, progress, verdict
        arbitration) here as they arrive.  A deliver that returns False
        *withholds* the record: its id still counts as arrived (the
        spec produced a record, so it is no killer and the relay owes
        nothing), but it lands in the retry set so the caller re-runs
        the spec instead of treating it as resolved.  The suspect
        shards are the in-order unfinished remainders of the shards
        workers had announced when the pool broke: each contains at
        most one killer plus innocents that were merely in flight,
        queued behind it, or finished but unflushed when the worker
        died — the probe pool re-runs them in order, so the killer is
        still the first suspect that kills its probe.
        """
        import multiprocessing as mp
        import queue as thread_queue
        import threading
        from concurrent.futures import CancelledError, ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        failpoints.fire("campaign.pool_round")
        context = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        relay = context.SimpleQueue()
        shards = [
            specs[start : start + shard_size]
            for start in range(0, len(specs), shard_size)
        ]
        index_of = {
            spec.test_id: index for index, spec in enumerate(self.iter_specs())
        }
        completed: set[str] = set()
        retry_ids: set[str] = set()
        announced: list[int] = []
        finished: list[int] = []
        errors: list[BaseException] = []
        broke = False
        #: Thread-safe staging between the relay pump and this (main)
        #: thread, which must be the one calling ``deliver`` so a hook
        #: that raises interrupts the campaign, not a helper thread.
        inbox: thread_queue.Queue = thread_queue.Queue()
        pool_done = threading.Event()

        def handle(message: tuple) -> None:
            if message[0] == "shard":
                announced.append(message[1])
            elif message[0] == "record":
                record = wire.decode_record(message[1])
                completed.add(record.test_id)
                if deliver(record) is False:
                    retry_ids.add(record.test_id)
            elif message[0] == "records":
                # Batched form of "record" (the workers' hot path —
                # one pickle + pipe syscall per _RELAY_BATCH_SIZE tests
                # instead of per test); decode and deliver in order.
                for encoded in message[1]:
                    record = wire.decode_record(encoded)
                    completed.add(record.test_id)
                    if deliver(record) is False:
                        retry_ids.add(record.test_id)
            elif message[0] == "stats":
                if stats is not None:
                    _merge_reset_modes(stats, message[1])
            elif message[0] == "phases":
                if stats is not None:
                    _merge_phase_times(stats, message[1])

        executor = ProcessPoolExecutor(
            max_workers=min(processes, len(shards)),
            mp_context=context,
            initializer=_init_worker,
            initargs=(
                self.kernel_version,
                self.frames,
                self.warm_boot,
                timeout_s,
                relay,
                self._wire_recipe(),
                self.delta_reset,
                self.journal_budget,
                self.verify_reset,
                self.compiled_plan,
                self.batch_hypercalls,
                self.verify_plan,
                self.profile,
            ),
        )
        pump: threading.Thread | None = None
        watcher: threading.Thread | None = None
        try:
            futures = {
                executor.submit(
                    run_shard_payload,
                    (number, [index_of[s.test_id] for s in shard]),
                ): number
                for number, shard in enumerate(shards)
            }

            def drain() -> None:
                # Move relay messages onto the thread-safe inbox as they
                # arrive.  The parent must never *write* to the relay: a
                # worker the broken pool SIGTERMs mid-put dies holding
                # the queue's writer lock, and a parent-side put would
                # then deadlock forever.  Continuous reading also keeps
                # the pipe from filling, so no worker can wedge in put()
                # while the pool shuts down.  The blocked read wakes
                # with EOF once the workers are gone and relay.close()
                # drops the parent's write end; a frame half-written by
                # a dying worker surfaces here as an unpickling error —
                # either way everything already staged is safe.
                try:
                    while True:
                        inbox.put(relay.get())
                except Exception:
                    pass

            def watch() -> None:
                # Futures only signal shard completion (records travel
                # on the relay); collect which shards finished cleanly
                # so the main thread knows exactly which records it is
                # still owed after the pool winds down.  Submission
                # order via result() rather than as_completed(): pool
                # shutdown with cancel_futures leaves cancelled futures
                # CANCELLED but never notified (cpython process.py skips
                # set_running_or_notify_cancel on them), so completion
                # waiters — and with them as_completed — hang forever,
                # while result() wakes on the condition cancel() does
                # signal.
                nonlocal broke
                for future, number in futures.items():
                    try:
                        future.result()
                    except BrokenProcessPool:
                        broke = True
                    except CancelledError:
                        pass
                    except BaseException as exc:  # worker bug: surface it
                        errors.append(exc)
                    else:
                        finished.append(number)
                pool_done.set()

            pump = threading.Thread(target=drain, name="relay-pump", daemon=True)
            watcher = threading.Thread(target=watch, name="relay-watch", daemon=True)
            pump.start()
            watcher.start()
            while not pool_done.is_set():
                try:
                    handle(inbox.get(timeout=0.05))
                except thread_queue.Empty:
                    pass
            # Every record of a cleanly finished shard was put on the
            # relay before its future resolved (FIFO, synchronous puts),
            # so drain until all of them are in — the pump may lag the
            # futures by a few messages.
            owed = {
                spec.test_id
                for number in finished
                for spec in shards[number]
            }
            while not owed <= completed:
                handle(inbox.get(timeout=10.0))  # Empty here = lost records
            if broke:
                # A sibling worker terminated mid-round may still have
                # completed messages in flight; give the pump a short
                # grace window to salvage them.  Anything it misses is
                # merely re-probed, so the window stays small — it is
                # pure added latency on every worker-kill recovery.
                while True:
                    try:
                        handle(inbox.get(timeout=0.05))
                    except thread_queue.Empty:
                        break
            if errors:
                raise errors[0]
        finally:
            # Safe to wait even on a broken pool: the pump keeps the
            # relay drained, so in-flight workers can always finish
            # their current put and exit.
            executor.shutdown(wait=True, cancel_futures=True)
            if watcher is not None:
                watcher.join()
            relay.close()
            if pump is not None:
                pump.join(timeout=5.0)
        suspect_shards = [
            [s for s in shards[number] if s.test_id not in completed]
            for number in sorted(announced)
        ]
        return (
            completed,
            retry_ids,
            [shard for shard in suspect_shards if shard],
            broke,
        )

    # -- analysis -----------------------------------------------------------

    def analyse(self, log: CampaignLog) -> CampaignResult:
        """Log-analysis phase: oracle, CRASH classification, clustering.

        Execution stats rehydrated from the log's trailer (a streamed
        log analysed offline) carry over onto the result, so the
        offline report matches the live one line for line.
        """
        oracle = ReferenceOracle(self.kernel_version, self.oracle_context)
        plan = self.plan() if self.compiled_plan else None
        spec_index = (
            {}
            if plan is not None  # plan.by_id covers the same specs
            else {spec.test_id: spec for spec in self.iter_specs()}
        )
        classified: list[tuple[TestRecord, Expectation, Classification]] = []
        for record in log:
            entry = plan.by_id.get(record.test_id) if plan is not None else None
            if entry is not None:
                expectation = oracle.expect_planned(entry)
            else:
                spec = spec_index.get(record.test_id)
                if spec is None:
                    spec = self._rebuild_spec(record)
                expectation = oracle.expect(spec)
            classified.append((record, expectation, classify(record, expectation)))
        issues = cluster_issues(classified)
        return self._result(log, classified, issues)

    def _rebuild_spec(self, record: TestRecord) -> TestCallSpec:
        """Reconstruct a spec from a loaded log record's labels."""
        from repro.fault.mutant import ArgSpec

        function = self.model.lookup(record.function)
        args: list[ArgSpec] = []
        for param, label in zip(function.params, record.arg_labels):
            dictionary = self.dictionaries.lookup(param.dictionary_key)
            for tv in dictionary.values:
                if tv.label == label:
                    args.append(ArgSpec.from_test_value(param.name, tv))
                    break
            else:
                raise KeyError(
                    f"{record.test_id}: label {label!r} not in dictionary "
                    f"{param.dictionary_key!r}"
                )
        return TestCallSpec(
            test_id=record.test_id,
            function=record.function,
            category=record.category,
            args=tuple(args),
        )

    def _result(
        self,
        log: CampaignLog,
        classified: list[tuple[TestRecord, Expectation, Classification]],
        issues: list[Issue],
    ) -> CampaignResult:
        return CampaignResult(
            log=log,
            classified=classified,
            issues=issues,
            kernel_version=self.kernel_version,
            model=self.model,
            strategy_name=getattr(self.strategy, "name", "custom"),
            execution_stats=log.execution_stats,
        )
