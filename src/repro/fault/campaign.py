"""Campaign orchestration: the whole methodology end to end (Fig. 1).

A :class:`Campaign` binds the preparation-phase artefacts (API model,
dictionaries, strategy, oracle) and runs the generation + execution +
analysis pipeline over the in-scope hypercalls.  Execution is serial by
default; pass ``processes`` to fan the independent test runs across a
process pool (each test boots its own simulator, so the work is
embarrassingly parallel — the paper ran its campaign from shell scripts
for the same reason).

Execution is also *durable*: ``log_path`` checkpoints every record to a
JSONL stream the moment it arrives, the parallel runner supervises its
workers (a test that kills its worker is logged as a ``worker_killed``
record and the pool is respawned — robustness tests kill their own
harness, as the paper's ``XM_set_timer(1,1,1)`` did to TSIM), and
``timeout_s`` arms a per-test wall-clock watchdog.  An interrupted
campaign resumes losslessly from its own partial stream via
``resume_from``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.fault.apimodel import ApiFunction, ApiModel, api_model_from_table
from repro.fault.classify import Classification, Severity, classify
from repro.fault.combinator import CartesianStrategy, GenerationStrategy
from repro.fault.dictionaries import DictionarySet
from repro.fault.executor import (
    DEFAULT_FRAMES,
    TestExecutor,
    _init_worker,
    run_spec_payload,
    spec_to_dict,
    worker_killed_record,
)
from repro.fault.issues import Issue, cluster_issues
from repro.fault.matrix import build_matrix
from repro.fault.mutant import TestCallSpec, dataset_to_spec
from repro.fault.oracle import Expectation, OracleContext, ReferenceOracle
from repro.fault.testlog import CampaignLog, TestRecord
from repro.xm.vulns import VULNERABLE_VERSION


@dataclass
class HypercallSuite:
    """All test cases for one hypercall."""

    function: ApiFunction
    specs: list[TestCallSpec]

    @property
    def size(self) -> int:
        """Number of test cases in the suite."""
        return len(self.specs)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    log: CampaignLog
    classified: list[tuple[TestRecord, Expectation, Classification]]
    issues: list[Issue]
    kernel_version: str
    model: ApiModel
    strategy_name: str

    @property
    def total_tests(self) -> int:
        """Executed test cases."""
        return len(self.log)

    def failures(self) -> list[tuple[TestRecord, Expectation, Classification]]:
        """Classified entries that failed."""
        return [item for item in self.classified if item[2].is_failure]

    def severity_counts(self) -> dict[Severity, int]:
        """CRASH histogram over all tests."""
        counts = {severity: 0 for severity in Severity}
        for _record, _expectation, classification in self.classified:
            counts[classification.severity] += 1
        return counts

    def issues_in(self, category: str) -> list[Issue]:
        """Issues raised in one Table III category."""
        return [issue for issue in self.issues if issue.category == category]

    def issue_count(self) -> int:
        """Number of clustered issues (the paper's '9')."""
        return len(self.issues)


ProgressHook = Callable[[int, int, TestRecord], None]
#: Per-record checkpoint callback (the streaming log's append).
RecordSink = Callable[[TestRecord], None]


@dataclass
class Campaign:
    """One configured robustness-testing campaign."""

    model: ApiModel = field(default_factory=api_model_from_table)
    dictionaries: DictionarySet = field(default_factory=DictionarySet)
    strategy: GenerationStrategy = field(default_factory=CartesianStrategy)
    kernel_version: str = VULNERABLE_VERSION
    frames: int = DEFAULT_FRAMES
    functions: tuple[str, ...] | None = None
    oracle_context: OracleContext = field(default_factory=OracleContext)
    #: Testbed factory for the serial executor; None = EagleEye.  The
    #: process-parallel path always uses the default testbed (factories
    #: do not cross process boundaries).
    system_factory: object | None = None
    #: Execute via warm-boot snapshots (see :mod:`repro.fault.executor`);
    #: forced off when ``system_factory`` is custom.
    warm_boot: bool = True
    #: Suites are deterministic for a fixed configuration, so they are
    #: generated once and reused by run()/analyse()/total_tests().
    _suites: list[HypercallSuite] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def paper_campaign(cls, **overrides: object) -> "Campaign":
        """The XtratuM case-study configuration (Table III scope)."""
        return cls(**overrides)  # type: ignore[arg-type]

    # -- generation ---------------------------------------------------------

    def scope(self) -> list[ApiFunction]:
        """The in-scope (tested) hypercalls."""
        tested = self.model.tested_functions()
        if self.functions is None:
            return tested
        wanted = set(self.functions)
        return [fn for fn in tested if fn.name in wanted]

    def suites(self) -> list[HypercallSuite]:
        """Generate every suite (Fig. 4 steps 1-3), cached.

        Generation is pure in the campaign configuration, so the suites
        are built once; run() and analyse() no longer each pay a full
        matrix expansion over the same scope.
        """
        if self._suites is None:
            out: list[HypercallSuite] = []
            for function in self.scope():
                matrix = build_matrix(function, self.dictionaries)
                specs = [
                    dataset_to_spec(function, dataset, index)
                    for index, dataset in enumerate(self.strategy.generate(matrix))
                ]
                out.append(HypercallSuite(function=function, specs=specs))
            self._suites = out
        return self._suites

    def iter_specs(self) -> Iterator[TestCallSpec]:
        """All test cases across suites."""
        for suite in self.suites():
            yield from suite.specs

    def total_tests(self) -> int:
        """Campaign size before execution."""
        return sum(suite.size for suite in self.suites())

    # -- execution ----------------------------------------------------------

    def run(
        self,
        processes: int | None = None,
        progress: ProgressHook | None = None,
        resume_from: CampaignLog | None = None,
        log_path: str | Path | None = None,
        timeout_s: float | None = None,
    ) -> CampaignResult:
        """Execute the campaign and analyse the logs.

        ``processes=None`` runs serially in-process; an integer fans out
        across a supervised worker pool with per-test process isolation.
        ``resume_from`` skips tests already present in an earlier log
        (an interrupted campaign picks up where it stopped, like the
        paper's restartable shell scripts); the analysed result covers
        the union and is ordered — and therefore classified and
        clustered — exactly as an uninterrupted run would be.  Resumed
        records are validated against this campaign's configuration:
        a log recorded on another kernel version or frame count raises
        ``ValueError`` rather than being classified against the wrong
        oracle.

        ``log_path`` streams every record to a JSONL checkpoint file
        the moment it arrives (append mode, flushed per record), so a
        crash or Ctrl-C never loses completed work; pointing it at a
        partial log appends only the missing records.  ``timeout_s``
        arms a per-test wall-clock watchdog.
        """
        specs = list(self.iter_specs())
        remaining = specs
        done: list[TestRecord] = []
        if resume_from is not None:
            self._validate_resume(resume_from)
            have = {record.test_id: record for record in resume_from}
            done = [have[s.test_id] for s in specs if s.test_id in have]
            remaining = [s for s in specs if s.test_id not in have]
        if processes is not None and self.system_factory is not None:
            raise ValueError(
                "process-parallel execution supports only the default testbed"
            )
        stream = CampaignLog.stream(log_path) if log_path is not None else None
        try:
            if stream is not None:
                # Checkpoint resumed records too (no-ops when resuming
                # into the same file), so the stream alone is always a
                # complete restart point.
                for record in done:
                    stream.append(record)
            sink = stream.append if stream is not None else None
            if processes is None:
                records = self._run_serial(remaining, progress, sink, timeout_s)
            else:
                records = self._run_parallel(
                    remaining, processes, progress, sink, timeout_s
                )
        finally:
            if stream is not None:
                stream.close()
        # Merge in global spec order: resumed, parallel and interrupted
        # campaigns must classify and cluster exactly like a serial
        # uninterrupted run.
        order = {spec.test_id: index for index, spec in enumerate(specs)}
        combined = [*done, *records]
        combined.sort(key=lambda record: order[record.test_id])
        return self.analyse(CampaignLog(combined))

    def _validate_resume(self, resume_from: CampaignLog) -> None:
        """Reject logs recorded under a different configuration."""
        for record in resume_from:
            if record.kernel_version and record.kernel_version != self.kernel_version:
                raise ValueError(
                    f"cannot resume: record {record.test_id} was executed on "
                    f"kernel {record.kernel_version}, this campaign targets "
                    f"{self.kernel_version}"
                )
            if record.frames and record.frames != self.frames:
                raise ValueError(
                    f"cannot resume: record {record.test_id} ran over "
                    f"{record.frames} major frames, this campaign runs "
                    f"{self.frames}"
                )

    def _run_serial(
        self,
        specs: list[TestCallSpec],
        progress: ProgressHook | None,
        sink: RecordSink | None = None,
        timeout_s: float | None = None,
    ) -> list[TestRecord]:
        executor = TestExecutor(
            kernel_version=self.kernel_version,
            frames=self.frames,
            system_factory=self.system_factory,
            warm_boot=self.warm_boot,
            timeout_s=timeout_s,
        )
        records: list[TestRecord] = []
        for index, spec in enumerate(specs):
            record = executor.run(spec)
            records.append(record)
            if sink is not None:
                sink(record)
            if progress is not None:
                progress(index + 1, len(specs), record)
        return records

    def _run_parallel(
        self,
        specs: list[TestCallSpec],
        processes: int,
        progress: ProgressHook | None,
        sink: RecordSink | None = None,
        timeout_s: float | None = None,
    ) -> list[TestRecord]:
        """Supervised parallel execution that survives worker deaths.

        Specs run on a pool of persistent workers (each builds its
        warm-boot snapshot once, in the initializer).  Every record is
        delivered — and checkpointed via ``sink`` — the moment its
        future completes.  When a test kills its worker the pool breaks;
        instead of forfeiting the run, the supervisor attributes the
        death using the workers' start/done beacon, re-runs each suspect
        alone on a single-worker pool (innocent in-flight specs simply
        complete there; the one that dies again is the killer and
        becomes a ``worker_killed`` record), respawns the pool, and
        continues with the remaining specs.
        """
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        total = len(specs)
        records: list[TestRecord] = []

        def emit(record: TestRecord) -> None:
            records.append(record)
            if sink is not None:
                sink(record)
            if progress is not None:
                progress(len(records), total, record)

        remaining = list(specs)
        while remaining:
            completed, suspects, broke = self._pool_round(
                remaining, processes, timeout_s, emit
            )
            if not broke:
                break
            if not suspects and not completed:
                raise RuntimeError(
                    "worker pool died before any test started "
                    "(initializer failure?)"
                )
            resolved = set(completed)
            for spec in [s for s in remaining if s.test_id in suspects]:
                sub_done, _, sub_broke = self._pool_round(
                    [spec], 1, timeout_s, emit
                )
                if sub_broke or not sub_done:
                    emit(
                        worker_killed_record(spec, self.kernel_version, self.frames)
                    )
                resolved.add(spec.test_id)
            remaining = [s for s in remaining if s.test_id not in resolved]
        # Unordered delivery must not leak into analysis: issue clustering
        # and log files are stable in spec order.
        order = {spec.test_id: index for index, spec in enumerate(specs)}
        records.sort(key=lambda record: order[record.test_id])
        return records

    def _pool_round(
        self,
        specs: list[TestCallSpec],
        processes: int,
        timeout_s: float | None,
        emit: RecordSink,
    ) -> tuple[set[str], set[str], bool]:
        """One pool pass over ``specs``: (completed ids, suspects, broke).

        The suspects are the test ids that workers announced as started
        but never finished when a worker died — the candidate killers
        (plus any innocents that were in flight on sibling workers).
        """
        import multiprocessing as mp
        import threading
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool

        context = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        beacon = context.SimpleQueue()
        completed: set[str] = set()
        broke = False
        # The beacon must be drained *while* the round runs: SimpleQueue
        # puts are synchronous, so once the pipe buffer fills (~64KB,
        # roughly 580 tests' worth of announcements) every worker would
        # block in put() and the round would deadlock.  A parent-side
        # reader consumes announcements continuously; the sets are only
        # read after join(), so no locking is needed.
        started: set[str] = set()
        finished: set[str] = set()

        def drain_beacon() -> None:
            while True:
                kind, test_id = beacon.get()
                if kind == "stop":
                    return
                (started if kind == "start" else finished).add(test_id)

        reader = threading.Thread(
            target=drain_beacon, name="beacon-drain", daemon=True
        )
        reader.start()
        executor = ProcessPoolExecutor(
            max_workers=processes,
            mp_context=context,
            initializer=_init_worker,
            initargs=(
                self.kernel_version,
                self.frames,
                self.warm_boot,
                timeout_s,
                beacon,
            ),
        )
        try:
            futures = [
                executor.submit(run_spec_payload, spec_to_dict(spec))
                for spec in specs
            ]
            for future in as_completed(futures):
                try:
                    record = TestRecord.from_dict(future.result())
                except BrokenProcessPool:
                    broke = True
                    break
                completed.add(record.test_id)
                emit(record)
        finally:
            executor.shutdown(wait=not broke, cancel_futures=True)
            # All worker announcements are queued before their processes
            # exit, so the FIFO guarantees the sentinel lands last and
            # the reader has seen every message by the time it returns.
            beacon.put(("stop", ""))
            reader.join()
            beacon.close()
        return completed, started - finished - completed, broke

    # -- analysis -----------------------------------------------------------

    def analyse(self, log: CampaignLog) -> CampaignResult:
        """Log-analysis phase: oracle, CRASH classification, clustering."""
        oracle = ReferenceOracle(self.kernel_version, self.oracle_context)
        spec_index = {spec.test_id: spec for spec in self.iter_specs()}
        classified: list[tuple[TestRecord, Expectation, Classification]] = []
        for record in log:
            spec = spec_index.get(record.test_id)
            if spec is None:
                spec = self._rebuild_spec(record)
            expectation = oracle.expect(spec)
            classified.append((record, expectation, classify(record, expectation)))
        issues = cluster_issues(classified)
        return self._result(log, classified, issues)

    def _rebuild_spec(self, record: TestRecord) -> TestCallSpec:
        """Reconstruct a spec from a loaded log record's labels."""
        from repro.fault.mutant import ArgSpec

        function = self.model.lookup(record.function)
        args: list[ArgSpec] = []
        for param, label in zip(function.params, record.arg_labels):
            dictionary = self.dictionaries.lookup(param.dictionary_key)
            for tv in dictionary.values:
                if tv.label == label:
                    args.append(ArgSpec.from_test_value(param.name, tv))
                    break
            else:
                raise KeyError(
                    f"{record.test_id}: label {label!r} not in dictionary "
                    f"{param.dictionary_key!r}"
                )
        return TestCallSpec(
            test_id=record.test_id,
            function=record.function,
            category=record.category,
            args=tuple(args),
        )

    def _result(
        self,
        log: CampaignLog,
        classified: list[tuple[TestRecord, Expectation, Classification]],
        issues: list[Issue],
    ) -> CampaignResult:
        return CampaignResult(
            log=log,
            classified=classified,
            issues=issues,
            kernel_version=self.kernel_version,
            model=self.model,
            strategy_name=getattr(self.strategy, "name", "custom"),
        )
