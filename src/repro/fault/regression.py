"""The nine findings as a permanent regression suite.

After a fault-removal campaign, each finding becomes a pinned
regression test: the exact triggering dataset, executed directly,
checked against the defect's documented fix.  This module derives that
suite from the ground-truth registry — the paper's findings as living
tests rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fault.classify import FailureKind, Severity, classify
from repro.fault.executor import TestExecutor
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.oracle import ReferenceOracle
from repro.xm.vulns import KNOWN_VULNERABILITIES, VULNERABLE_VERSION, Vulnerability

#: The canonical triggering dataset per finding: (param, label, value-or-symbol).
_TRIGGERS: dict[str, tuple[tuple[str, str, int | None, str | None], ...]] = {
    "XM-RS-1": (("mode", "2", 2, None),),
    "XM-RS-2": (("mode", "16", 16, None),),
    "XM-RS-3": (("mode", "MAX_U32", 4294967295, None),),
    "XM-ST-1": (
        ("clockId", "HW_CLOCK", 0, None),
        ("absTime", "1", 1, None),
        ("interval", "1", 1, None),
    ),
    "XM-ST-2": (
        ("clockId", "EXEC_CLOCK", 1, None),
        ("absTime", "1", 1, None),
        ("interval", "1", 1, None),
    ),
    "XM-ST-3": (
        ("clockId", "HW_CLOCK", 0, None),
        ("absTime", "1", 1, None),
        ("interval", "LLONG_MIN", -(2**63), None),
    ),
    "XM-MC-1": (
        ("startAddr", "UNMAPPED", 0x50000000, None),
        ("endAddr", "VALID", None, "valid_batch_end"),
    ),
    "XM-MC-2": (
        ("startAddr", "VALID", None, "valid_batch_start"),
        ("endAddr", "UNMAPPED", 0x50000000, None),
    ),
    "XM-MC-3": (
        ("startAddr", "VALID", None, "valid_batch_start"),
        ("endAddr", "VALID", None, "valid_batch_end"),
    ),
}

#: The failure mechanism each finding must exhibit on the vulnerable kernel.
_EXPECTED_KIND: dict[str, FailureKind] = {
    "XM-RS-1": FailureKind.UNEXPECTED_RESET,
    "XM-RS-2": FailureKind.UNEXPECTED_RESET,
    "XM-RS-3": FailureKind.UNEXPECTED_RESET,
    "XM-ST-1": FailureKind.KERNEL_HALT,
    "XM-ST-2": FailureKind.SIM_CRASH,
    "XM-ST-3": FailureKind.WRONG_SUCCESS,
    "XM-MC-1": FailureKind.UNHANDLED_TRAP,
    "XM-MC-2": FailureKind.UNHANDLED_TRAP,
    "XM-MC-3": FailureKind.TEMPORAL_VIOLATION,
}


def vulnerability_spec(vulnerability: Vulnerability) -> TestCallSpec:
    """The pinned triggering test case for one finding."""
    trigger = _TRIGGERS[vulnerability.ident]
    args = tuple(
        ArgSpec(param, label, value=value, symbol=symbol)
        for (param, label, value, symbol) in trigger
    )
    return TestCallSpec(
        test_id=f"regression:{vulnerability.ident}",
        function=vulnerability.hypercall,
        category=vulnerability.category,
        args=args,
    )


def vulnerability_specs() -> list[TestCallSpec]:
    """All nine pinned cases, in paper order."""
    return [vulnerability_spec(v) for v in KNOWN_VULNERABILITIES]


@dataclass(frozen=True)
class RegressionOutcome:
    """Result of replaying one finding on one kernel version."""

    ident: str
    kernel_version: str
    severity: Severity
    kind: FailureKind
    reproduced: bool


def replay(kernel_version: str = VULNERABLE_VERSION) -> list[RegressionOutcome]:
    """Replay every finding's trigger; report per-finding outcome.

    On the vulnerable kernel every outcome should be ``reproduced``; on
    the revised kernel none should be.
    """
    executor = TestExecutor(kernel_version=kernel_version)
    oracle = ReferenceOracle(kernel_version)
    outcomes: list[RegressionOutcome] = []
    for vulnerability in KNOWN_VULNERABILITIES:
        spec = vulnerability_spec(vulnerability)
        record = executor.run(spec)
        classification = classify(record, oracle.expect(spec))
        outcomes.append(
            RegressionOutcome(
                ident=vulnerability.ident,
                kernel_version=kernel_version,
                severity=classification.severity,
                kind=classification.kind,
                reproduced=(
                    classification.kind is _EXPECTED_KIND[vulnerability.ident]
                ),
            )
        )
    return outcomes


def expected_kind(ident: str) -> FailureKind:
    """The mechanism a finding must show when it reproduces."""
    return _EXPECTED_KIND[ident]
