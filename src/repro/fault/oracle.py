"""The reference oracle: expected behaviour per test call.

The paper notes that automated result analysis needs "a logic model of
the whole system … based on the rules stipulated in the product manual"
(§V) and implements Silent/Hindering detection by manual cross-checking.
This module is that logic model, written *from the documented hypercall
contracts* (independently of the kernel implementation): given one test
call and its resolved arguments, it produces an :class:`Expectation` —
the set of acceptable return codes, whether the call legitimately does
not return, and which parameters are invalid (used both for failure
attribution and for the fault-masking analysis).

The oracle is version-aware: the revised kernel's documentation removes
``XM_multicall`` and adds the 50 µs minimum timer interval, so
expectations differ between 3.4.0 and 3.4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fault.dictionaries import Symbol
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.xm import rc
from repro.xm.vulns import FIXED_VERSION, KernelFeatures, VULNERABLE_VERSION

#: Valid EagleEye partition ids (plus -1 = self).
PARTITION_IDS = frozenset({0, 1, 2, 3, 4})
#: FDIR's open port descriptors at test time: 0 = TM_MON (sampling,
#: destination, 64 B), 1 = FDIR_EVT (queuing, source, 48 B, depth 8).
SAMPLING_PORT = 0
QUEUING_PORT = 1
#: Accessible trace streams for a system partition (kernel = -1).
TRACE_STREAMS = frozenset({-1, 0, 1, 2, 3, 4})
#: Valid scheduling plans.
PLAN_IDS = frozenset({0, 1})
#: Documented console write bound.
MAX_CONSOLE = 1024
#: Documented memory_copy bound.
MAX_COPY = 1 << 20
#: HM/trace read batch bound.
MAX_READ = 64
#: Channel geometry the configuration documents.
TM_MON_SIZE = 64
FDIR_EVT_SIZE = 48
FDIR_EVT_DEPTH = 8
#: The valid I/O register window granted to FDIR (APBUART).
UART_WINDOW = range(0x80000100, 0x80000200)


@dataclass(frozen=True)
class OracleContext:
    """Testbed facts the documented contracts depend on."""

    self_partition: int = 0
    partition_ids: frozenset[int] = PARTITION_IDS
    plan_ids: frozenset[int] = PLAN_IDS
    partition_names: tuple[str, ...] = ("FDIR", "AOCS", "PLATFORM", "PAYLOAD", "IO")
    channel_names: tuple[str, ...] = ("CH_TM_AOCS", "CH_CMD", "CH_PL_DATA", "CH_FDIR_EVT")


@dataclass(frozen=True)
class Expectation:
    """What the documentation allows for one test call."""

    allowed: frozenset[int] = frozenset()
    allow_no_return: bool = False
    allow_nonneg: bool = False
    invalid_params: tuple[str, ...] = ()
    note: str = ""

    def rc_acceptable(self, code: int) -> bool:
        """Whether a returned code matches the contract."""
        if code in self.allowed:
            return True
        return self.allow_nonneg and code >= 0


def _ok(*extra: int, note: str = "", invalid: tuple[str, ...] = ()) -> Expectation:
    return Expectation(
        allowed=frozenset({rc.XM_OK, *extra}), invalid_params=invalid, note=note
    )


def _err(code: int, invalid: tuple[str, ...], note: str = "") -> Expectation:
    return Expectation(allowed=frozenset({code}), invalid_params=invalid, note=note)


def _no_return(note: str) -> Expectation:
    return Expectation(allow_no_return=True, note=note)


def _nonneg(invalid: tuple[str, ...] = (), *also: int, note: str = "") -> Expectation:
    return Expectation(
        allowed=frozenset(also), allow_nonneg=True, invalid_params=invalid, note=note
    )


class ReferenceOracle:
    """Documented-contract expectations for the 39 tested hypercalls."""

    def __init__(
        self,
        kernel_version: str = VULNERABLE_VERSION,
        context: OracleContext | None = None,
    ) -> None:
        self.features = KernelFeatures.for_version(kernel_version)
        self.context = context if context is not None else OracleContext()
        #: Expectation cache: the oracle is pure in (function, labels),
        #: and a campaign asks about the same few datasets thousands of
        #: times (every suite reuses the shared dictionaries).
        self._memo: dict[tuple[str, tuple[str, ...]], Expectation] = {}

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _arg(spec: TestCallSpec, name: str) -> ArgSpec:
        for arg in spec.args:
            if arg.param == name:
                return arg
        raise KeyError(f"{spec.function}: no parameter {name!r}")

    @staticmethod
    def _is_symbol(arg: ArgSpec, *symbols: Symbol) -> bool:
        return arg.symbol is not None and Symbol(arg.symbol) in symbols

    def _ptr_valid(self, arg: ArgSpec) -> bool:
        """A pointer is valid when it resolves inside partition memory."""
        return arg.symbol is not None and Symbol(arg.symbol) in (
            Symbol.VALID_BUFFER,
            Symbol.UNALIGNED_BUFFER,
            Symbol.VALID_BATCH_START,
            Symbol.VALID_BATCH_END,
        )

    def _name_valid(self, arg: ArgSpec) -> bool:
        """A name pointer needs both a valid address and termination."""
        return self._is_symbol(arg, Symbol.VALID_NAME)

    # -- entry point -------------------------------------------------------------

    def expect(self, spec: TestCallSpec) -> Expectation:
        """Expectation for one test call (memoized).

        The rules depend only on the function and the labelled dataset
        (labels map one-to-one to test values), so the answer is cached
        per ``(function, arg_labels)``.
        """
        key = (spec.function, spec.arg_labels())
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        handler = getattr(self, f"_x_{spec.function}", None)
        if handler is None:
            raise KeyError(f"no oracle rule for {spec.function}")
        values = {arg.param: arg for arg in spec.args}
        literals = {
            arg.param: (arg.value if arg.value is not None else None)
            for arg in spec.args
        }
        expectation = handler(spec, values, literals)
        self._memo[key] = expectation
        return expectation

    def expect_planned(self, entry) -> Expectation:  # noqa: ANN001 - plan.PlanEntry
        """Expectation for a compiled plan entry.

        Identical to :meth:`expect` on ``entry.spec``, but probes the
        memo with the label tuple the plan already computed instead of
        rebuilding it per record — analysis touches this once per test.
        """
        cached = self._memo.get((entry.function, entry.arg_labels))
        if cached is not None:
            return cached
        return self.expect(entry.spec)

    # -- System Management ----------------------------------------------------------

    def _x_XM_get_system_status(self, spec, args, lit) -> Expectation:
        if not self._ptr_valid(args["status"]):
            return _err(rc.XM_INVALID_PARAM, ("status",))
        return _ok()

    def _x_XM_reset_system(self, spec, args, lit) -> Expectation:
        mode = lit["mode"]
        if mode in (rc.XM_COLD_RESET, rc.XM_WARM_RESET):
            return _no_return(f"documented {'warm' if mode else 'cold'} system reset")
        return _err(rc.XM_INVALID_PARAM, ("mode",))

    # -- Partition Management ----------------------------------------------------------

    def _valid_partition(self, value: int) -> bool:
        return value == rc.XM_PARTITION_SELF or value in self.context.partition_ids

    def _is_self(self, value: int) -> bool:
        return value in (rc.XM_PARTITION_SELF, self.context.self_partition)

    def _x_XM_get_partition_status(self, spec, args, lit) -> Expectation:
        invalid = []
        if not self._valid_partition(lit["partitionId"]):
            invalid.append("partitionId")
        if not self._ptr_valid(args["status"]):
            invalid.append("status")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _ok()

    def _x_XM_halt_partition(self, spec, args, lit) -> Expectation:
        ident = lit["partitionId"]
        if not self._valid_partition(ident):
            return _err(rc.XM_INVALID_PARAM, ("partitionId",))
        if self._is_self(ident):
            return _no_return("documented self-halt")
        return _ok()

    def _x_XM_reset_partition(self, spec, args, lit) -> Expectation:
        invalid = []
        if not self._valid_partition(lit["partitionId"]):
            invalid.append("partitionId")
        if lit["resetMode"] not in (rc.XM_COLD_RESET, rc.XM_WARM_RESET):
            invalid.append("resetMode")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        if self._is_self(lit["partitionId"]):
            return _no_return("documented self-reset")
        return _ok()

    def _x_XM_resume_partition(self, spec, args, lit) -> Expectation:
        if not self._valid_partition(lit["partitionId"]):
            return _err(rc.XM_INVALID_PARAM, ("partitionId",))
        return _ok(rc.XM_NO_ACTION, note="state-dependent")

    def _x_XM_suspend_partition(self, spec, args, lit) -> Expectation:
        ident = lit["partitionId"]
        if not self._valid_partition(ident):
            return _err(rc.XM_INVALID_PARAM, ("partitionId",))
        if self._is_self(ident):
            return _no_return("documented self-suspend")
        return _ok(rc.XM_NO_ACTION, note="state-dependent")

    def _x_XM_shutdown_partition(self, spec, args, lit) -> Expectation:
        ident = lit["partitionId"]
        if not self._valid_partition(ident):
            return _err(rc.XM_INVALID_PARAM, ("partitionId",))
        if self._is_self(ident):
            return _no_return("documented self-shutdown")
        return _ok()

    # -- Time Management ------------------------------------------------------------------

    def _x_XM_get_time(self, spec, args, lit) -> Expectation:
        invalid = []
        if lit["clockId"] not in (rc.XM_HW_CLOCK, rc.XM_EXEC_CLOCK):
            invalid.append("clockId")
        if not self._ptr_valid(args["time"]):
            invalid.append("time")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _ok()

    def _x_XM_set_timer(self, spec, args, lit) -> Expectation:
        invalid = []
        if lit["clockId"] not in (rc.XM_HW_CLOCK, rc.XM_EXEC_CLOCK):
            invalid.append("clockId")
        interval = lit["interval"]
        if interval < 0:
            invalid.append("interval")
        elif 0 < interval < self.features.set_timer_min_interval_us:
            # Only documented after the revision.
            invalid.append("interval")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _ok(note="absTime <= 0 disarms; future absTime arms")

    # -- Plan Management --------------------------------------------------------------------

    def _x_XM_switch_sched_plan(self, spec, args, lit) -> Expectation:
        if lit["planId"] not in self.context.plan_ids:
            return _err(rc.XM_INVALID_PARAM, ("planId",))
        return _ok()

    # -- IPC --------------------------------------------------------------------------------

    def _x_XM_create_sampling_port(self, spec, args, lit) -> Expectation:
        if not self._name_valid(args["portName"]):
            return _err(rc.XM_INVALID_PARAM, ("portName",))
        if lit["direction"] not in (rc.XM_SOURCE_PORT, rc.XM_DESTINATION_PORT):
            return _err(rc.XM_INVALID_PARAM, ("direction",))
        if lit["refreshPeriod"] is not None and lit["refreshPeriod"] < 0:
            return _err(rc.XM_INVALID_PARAM, ("refreshPeriod",))
        # VALID_NAME resolves to TM_MON: a sampling destination of 64 B.
        invalid = []
        if lit["direction"] != rc.XM_DESTINATION_PORT:
            invalid.append("direction")
        if lit["maxMsgSize"] != TM_MON_SIZE:
            invalid.append("maxMsgSize")
        if invalid:
            return _err(rc.XM_INVALID_CONFIG, tuple(invalid))
        return _nonneg(note="descriptor")

    def _x_XM_create_queuing_port(self, spec, args, lit) -> Expectation:
        if not self._name_valid(args["portName"]):
            return _err(rc.XM_INVALID_PARAM, ("portName",))
        if lit["direction"] not in (rc.XM_SOURCE_PORT, rc.XM_DESTINATION_PORT):
            return _err(rc.XM_INVALID_PARAM, ("direction",))
        # VALID_NAME resolves to FDIR_EVT: queuing source, 48 B, depth 8.
        invalid = []
        if lit["direction"] != rc.XM_SOURCE_PORT:
            invalid.append("direction")
        if lit["maxNoMsgs"] != FDIR_EVT_DEPTH:
            invalid.append("maxNoMsgs")
        if lit["maxMsgSize"] != FDIR_EVT_SIZE:
            invalid.append("maxMsgSize")
        if invalid:
            return _err(rc.XM_INVALID_CONFIG, tuple(invalid))
        return _nonneg(note="descriptor")

    def _x_XM_write_sampling_message(self, spec, args, lit) -> Expectation:
        port = lit["portDesc"]
        if port != SAMPLING_PORT:
            return _err(rc.XM_INVALID_PARAM, ("portDesc",))
        # Port 0 is a destination: writing is a mode error, reported
        # before buffer/size validation per the manual.
        return _err(rc.XM_INVALID_MODE, ("portDesc",), note="destination port")

    def _x_XM_read_sampling_message(self, spec, args, lit) -> Expectation:
        port = lit["portDesc"]
        if port != SAMPLING_PORT:
            return _err(rc.XM_INVALID_PARAM, ("portDesc",))
        invalid = []
        if lit["msgSize"] is not None and lit["msgSize"] < TM_MON_SIZE:
            invalid.append("msgSize")
        if not self._ptr_valid(args["msgPtr"]):
            invalid.append("msgPtr")
        if not self._ptr_valid(args["flags"]):
            invalid.append("flags")
        if invalid:
            # Before the first telemetry frame the channel is empty and
            # the call legitimately reports NO_ACTION first.
            return Expectation(
                allowed=frozenset({rc.XM_INVALID_PARAM, rc.XM_NO_ACTION}),
                invalid_params=tuple(invalid),
            )
        return _nonneg((), rc.XM_NO_ACTION, note="message length or empty")

    def _x_XM_send_queuing_message(self, spec, args, lit) -> Expectation:
        port = lit["portDesc"]
        if port != QUEUING_PORT:
            return _err(rc.XM_INVALID_PARAM, ("portDesc",))
        invalid = []
        size = lit["msgSize"]
        if size is not None and not 0 < size <= FDIR_EVT_SIZE:
            invalid.append("msgSize")
        if not self._ptr_valid(args["msgPtr"]):
            invalid.append("msgPtr")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _ok(rc.XM_NO_SPACE, note="queue may fill across invocations")

    def _x_XM_receive_queuing_message(self, spec, args, lit) -> Expectation:
        port = lit["portDesc"]
        if port != QUEUING_PORT:
            return _err(rc.XM_INVALID_PARAM, ("portDesc",))
        # Port 1 is a source: receiving is a mode error.
        return _err(rc.XM_INVALID_MODE, ("portDesc",), note="source port")

    def _x_XM_get_port_status(self, spec, args, lit) -> Expectation:
        if lit["portDesc"] not in (SAMPLING_PORT, QUEUING_PORT):
            return _err(rc.XM_INVALID_PARAM, ("portDesc",))
        if not self._ptr_valid(args["status"]):
            return _err(rc.XM_INVALID_PARAM, ("status",))
        return _ok()

    def _x_XM_flush_port(self, spec, args, lit) -> Expectation:
        if lit["portDesc"] not in (SAMPLING_PORT, QUEUING_PORT):
            return _err(rc.XM_INVALID_PARAM, ("portDesc",))
        return _ok()

    # -- Memory Management ------------------------------------------------------------------

    def _x_XM_memory_copy(self, spec, args, lit) -> Expectation:
        invalid = []
        if not self._valid_partition(lit["dstId"]):
            invalid.append("dstId")
        if not self._valid_partition(lit["srcId"]):
            invalid.append("srcId")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        size = lit["size"]
        if size is not None and not 0 < size <= MAX_COPY:
            return _err(rc.XM_INVALID_PARAM, ("size",))
        # A VALID address resolves into FDIR's area: it is in range only
        # when the corresponding id names FDIR (0 or self).
        src_ok = self._ptr_valid(args["srcAddr"]) and self._is_self(lit["srcId"])
        if not src_ok:
            return _err(
                rc.XM_INVALID_ADDRESS,
                ("srcAddr",) if self._is_self(lit["srcId"]) else ("srcAddr", "srcId"),
            )
        dst_ok = self._ptr_valid(args["dstAddr"]) and self._is_self(lit["dstId"])
        if not dst_ok:
            return _err(
                rc.XM_INVALID_ADDRESS,
                ("dstAddr",) if self._is_self(lit["dstId"]) else ("dstAddr", "dstId"),
            )
        return _ok()

    # -- Health Monitor -----------------------------------------------------------------------

    def _x_XM_hm_status(self, spec, args, lit) -> Expectation:
        if not self._ptr_valid(args["status"]):
            return _err(rc.XM_INVALID_PARAM, ("status",))
        return _ok()

    def _x_XM_hm_read(self, spec, args, lit) -> Expectation:
        count = lit["noLogs"]
        invalid = []
        if count is not None and not 0 < count <= MAX_READ:
            invalid.append("noLogs")
        if not self._ptr_valid(args["log"]):
            invalid.append("log")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _nonneg(note="records read")

    def _x_XM_hm_seek(self, spec, args, lit) -> Expectation:
        offset, whence = lit["offset"], lit["whence"]
        invalid = []
        if whence not in (0, 1, 2):
            invalid.append("whence")
        # The log is empty on a quiet testbed: only offset 0 is in range.
        if offset != 0:
            invalid.append("offset")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _ok()

    # -- Trace ------------------------------------------------------------------------------------

    def _trace_stream_valid(self, value: int) -> bool:
        return value in TRACE_STREAMS

    def _x_XM_trace_open(self, spec, args, lit) -> Expectation:
        if not self._trace_stream_valid(lit["streamId"]):
            return _err(rc.XM_INVALID_PARAM, ("streamId",))
        return _nonneg(note="stream descriptor")

    def _x_XM_trace_read(self, spec, args, lit) -> Expectation:
        invalid = []
        if not self._trace_stream_valid(lit["streamId"]):
            invalid.append("streamId")
        count = lit["noEvents"]
        if count is not None and not 0 < count <= MAX_READ:
            invalid.append("noEvents")
        if not self._ptr_valid(args["events"]):
            invalid.append("events")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _nonneg(note="events read")

    def _x_XM_trace_seek(self, spec, args, lit) -> Expectation:
        invalid = []
        if not self._trace_stream_valid(lit["streamId"]):
            invalid.append("streamId")
        if lit["whence"] not in (0, 1, 2):
            invalid.append("whence")
        if lit["offset"] != 0:
            invalid.append("offset")  # streams are empty on a quiet run
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _ok()

    def _x_XM_trace_status(self, spec, args, lit) -> Expectation:
        invalid = []
        if not self._trace_stream_valid(lit["streamId"]):
            invalid.append("streamId")
        if not self._ptr_valid(args["status"]):
            invalid.append("status")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _ok()

    # -- Interrupts ----------------------------------------------------------------------------------

    def _x_XM_route_irq(self, spec, args, lit) -> Expectation:
        invalid = []
        irq_type, line, vector = lit["irqType"], lit["irqLine"], lit["vector"]
        if irq_type == 0:
            if not 1 <= line <= 15:
                invalid.append("irqLine")
        elif irq_type == 1:
            if not 0 <= line <= 31:
                invalid.append("irqLine")
        else:
            invalid.append("irqType")
        if not 0 <= vector <= 255:
            invalid.append("vector")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _ok()

    def _virq_line(self, spec, lit) -> Expectation:
        if not 0 <= lit["irqLine"] <= 31:
            return _err(rc.XM_INVALID_PARAM, ("irqLine",))
        return _ok()

    def _x_XM_mask_irq(self, spec, args, lit) -> Expectation:
        return self._virq_line(spec, lit)

    def _x_XM_unmask_irq(self, spec, args, lit) -> Expectation:
        return self._virq_line(spec, lit)

    def _x_XM_set_irqpend(self, spec, args, lit) -> Expectation:
        return self._virq_line(spec, lit)

    # -- Miscellaneous ----------------------------------------------------------------------------------

    def _x_XM_multicall(self, spec, args, lit) -> Expectation:
        if not self.features.multicall_available:
            return Expectation(
                allowed=frozenset({rc.XM_NO_SERVICE}),
                note="service removed in the revised kernel",
            )
        invalid = []
        if not self._is_symbol(args["startAddr"], Symbol.VALID_BATCH_START):
            invalid.append("startAddr")
        if not self._is_symbol(args["endAddr"], Symbol.VALID_BATCH_END):
            invalid.append("endAddr")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _nonneg(note="batch entry count")

    def _x_XM_write_console(self, spec, args, lit) -> Expectation:
        length = lit["length"]
        if length == 0:
            return Expectation(allowed=frozenset({0}), note="empty write")
        invalid = []
        if length is not None and length > MAX_CONSOLE:
            invalid.append("length")
        if not self._ptr_valid(args["buffer"]):
            invalid.append("buffer")
        if invalid:
            return _err(rc.XM_INVALID_PARAM, tuple(invalid))
        return _nonneg(note="bytes written")

    def _x_XM_get_gid_by_name(self, spec, args, lit) -> Expectation:
        if not self._name_valid(args["name"]):
            return _err(rc.XM_INVALID_PARAM, ("name",))
        entity = lit["entity"]
        if entity not in (0, 1):
            return _err(rc.XM_INVALID_PARAM, ("entity",))
        # VALID_NAME resolves to "PAYLOAD": a partition, not a channel.
        if entity == 0:
            return _nonneg(note="partition gid")
        return _err(rc.XM_INVALID_CONFIG, ("name",), note="no such channel")

    # -- SPARC ------------------------------------------------------------------------------------------------

    def _io_port_valid(self, value: int) -> bool:
        return value in UART_WINDOW

    def _x_XM_sparc_inport(self, spec, args, lit) -> Expectation:
        if not self._io_port_valid(lit["port"]):
            return _err(rc.XM_INVALID_PARAM, ("port",))
        return _nonneg(note="register value")

    def _x_XM_sparc_outport(self, spec, args, lit) -> Expectation:
        if not self._io_port_valid(lit["port"]):
            return _err(rc.XM_INVALID_PARAM, ("port",))
        return _ok()

    def _atomic(self, spec, args, lit) -> Expectation:
        arg = args["address"]
        if self._ptr_valid(arg):
            return _ok()
        value = lit["address"]
        if value is not None and value % 4:
            return _err(rc.XM_INVALID_PARAM, ("address",))
        return _err(rc.XM_INVALID_ADDRESS, ("address",))

    def _x_XM_sparc_atomic_add(self, spec, args, lit) -> Expectation:
        return self._atomic(spec, args, lit)

    def _x_XM_sparc_atomic_and(self, spec, args, lit) -> Expectation:
        return self._atomic(spec, args, lit)

    def _x_XM_sparc_atomic_or(self, spec, args, lit) -> Expectation:
        return self._atomic(spec, args, lit)
