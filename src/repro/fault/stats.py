"""Vectorised log aggregation.

Campaign logs reach thousands of records; the aggregations the reports
and benches need (per-category counts, severity histograms, wall-time
percentiles, return-code distributions) are computed here with NumPy on
column arrays extracted once from the log — the "vectorise the hot
loop" rule from the optimisation guides, applied to the analysis path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fault.campaign import CampaignResult
from repro.fault.classify import Severity
from repro.fault.testlog import CampaignLog


@dataclass(frozen=True)
class LogColumns:
    """Columnar view of a campaign log."""

    categories: np.ndarray
    functions: np.ndarray
    returned: np.ndarray
    first_rc: np.ndarray
    wall_time_s: np.ndarray
    crashed: np.ndarray
    halted: np.ndarray
    resets: np.ndarray
    hung: np.ndarray
    worker_killed: np.ndarray
    watchdog: np.ndarray
    attempts: np.ndarray
    arbitrated: np.ndarray
    quarantined: np.ndarray

    @classmethod
    def from_log(cls, log: CampaignLog) -> "LogColumns":
        """Extract columns in one pass over the records."""
        n = len(log)
        categories = np.empty(n, dtype=object)
        functions = np.empty(n, dtype=object)
        returned = np.zeros(n, dtype=bool)
        first_rc = np.full(n, np.iinfo(np.int64).min, dtype=np.int64)
        wall = np.zeros(n, dtype=np.float64)
        crashed = np.zeros(n, dtype=bool)
        halted = np.zeros(n, dtype=bool)
        resets = np.zeros(n, dtype=np.int64)
        hung = np.zeros(n, dtype=bool)
        worker_killed = np.zeros(n, dtype=bool)
        watchdog = np.zeros(n, dtype=bool)
        attempts = np.ones(n, dtype=np.int64)
        arbitrated = np.zeros(n, dtype=bool)
        quarantined = np.zeros(n, dtype=bool)
        for i, record in enumerate(log):
            categories[i] = record.category
            functions[i] = record.function
            rc0 = record.first_rc
            if rc0 is not None:
                returned[i] = True
                first_rc[i] = rc0
            wall[i] = record.wall_time_s
            crashed[i] = record.sim_crashed
            halted[i] = record.kernel_halted
            resets[i] = len(record.resets)
            hung[i] = record.sim_hung
            worker_killed[i] = record.worker_killed
            watchdog[i] = record.watchdog_expired
            attempts[i] = record.attempts
            arbitrated[i] = record.arbitrated
            quarantined[i] = record.quarantined
        return cls(
            categories, functions, returned, first_rc, wall, crashed, halted,
            resets, hung, worker_killed, watchdog, attempts, arbitrated,
            quarantined,
        )


def tests_per_category(log: CampaignLog) -> dict[str, int]:
    """Category -> executed tests."""
    cols = LogColumns.from_log(log)
    values, counts = np.unique(cols.categories.astype(str), return_counts=True)
    return dict(zip(values.tolist(), counts.tolist()))


def rc_distribution(log: CampaignLog) -> dict[int, int]:
    """Return code -> count over first invocations that returned."""
    cols = LogColumns.from_log(log)
    codes = cols.first_rc[cols.returned]
    values, counts = np.unique(codes, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def wall_time_stats(log: CampaignLog) -> dict[str, float]:
    """min/median/p95/max/total of per-test wall time, in seconds."""
    cols = LogColumns.from_log(log)
    wall = cols.wall_time_s
    if wall.size == 0:
        return {"min": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0, "total": 0.0}
    return {
        "min": float(wall.min()),
        "median": float(np.median(wall)),
        "p95": float(np.percentile(wall, 95)),
        "max": float(wall.max()),
        "total": float(wall.sum()),
    }


def durability_summary(log: CampaignLog) -> dict[str, int]:
    """Counts of the process-level outcomes the campaign supervisor sees.

    ``worker_killed`` are tests that took their worker process down;
    ``watchdog_expired`` are runaway runs aborted by the wall-clock
    watchdog (a subset of ``sim_hung``).  ``arbitrated`` counts
    verdicts that went through retry-with-quorum arbitration (more than
    one run consumed), ``retried_runs`` the extra runs arbitration
    spent beyond one per record, and ``quarantined`` the known killers
    skipped without execution.
    """
    cols = LogColumns.from_log(log)
    return {
        "records": len(log),
        "worker_killed": int(cols.worker_killed.sum()),
        "watchdog_expired": int(cols.watchdog.sum()),
        "sim_hung": int(cols.hung.sum()),
        "sim_crashed": int(cols.crashed.sum()),
        "arbitrated": int(cols.arbitrated.sum()),
        "retried_runs": int((cols.attempts - 1).sum()),
        "quarantined": int(cols.quarantined.sum()),
    }


def severity_matrix(result: CampaignResult) -> tuple[list[str], np.ndarray]:
    """(category labels, category x severity count matrix)."""
    categories = sorted({r.category for r, _e, _c in result.classified})
    severities = list(Severity)
    matrix = np.zeros((len(categories), len(severities)), dtype=np.int64)
    cat_index = {c: i for i, c in enumerate(categories)}
    sev_index = {s: i for i, s in enumerate(severities)}
    for record, _expectation, classification in result.classified:
        matrix[cat_index[record.category], sev_index[classification.severity]] += 1
    return categories, matrix


def response_diversity(result: CampaignResult, function: str) -> dict[str, set[str]]:
    """Distinct system responses per argument tuple for one hypercall.

    §V observes that "different invalid values often elicit different
    system responses from a given hypercall"; this maps each dataset
    (by its labels) to the set of distinct observable responses it drew
    (return-code name, or the failure mechanism), so a test
    administrator can see which value choices matter.
    """
    from repro.xm import rc as rc_mod

    out: dict[str, set[str]] = {}
    for record, _expectation, classification in result.classified:
        if record.function != function:
            continue
        key = ", ".join(record.arg_labels)
        responses = out.setdefault(key, set())
        if classification.is_failure:
            responses.add(classification.kind.value)
        for invocation in record.invocations:
            if invocation.returned and invocation.rc is not None:
                responses.add(rc_mod.name_of(invocation.rc))
            elif not invocation.returned:
                responses.add("no return")
    return out


def distinct_response_count(result: CampaignResult, function: str) -> int:
    """How many distinct responses one hypercall produced overall."""
    responses: set[str] = set()
    for per_dataset in response_diversity(result, function).values():
        responses |= per_dataset
    return len(responses)


def failure_rate_by_function(result: CampaignResult) -> dict[str, float]:
    """Function -> fraction of its tests that failed."""
    totals: dict[str, int] = {}
    fails: dict[str, int] = {}
    for record, _expectation, classification in result.classified:
        totals[record.function] = totals.get(record.function, 0) + 1
        if classification.is_failure:
            fails[record.function] = fails.get(record.function, 0) + 1
    return {
        fn: fails.get(fn, 0) / total for fn, total in sorted(totals.items())
    }
