"""State-based stress testing (§V).

The paper cites evidence that "robustness results are different when the
system under test is subjected to different states and different stress
conditions" and proposes phantom parameters to set a stressful state
before invoking the test calls.  This module applies that idea to the
*parameterised* campaign: every test runs twice, once on the quiet
testbed and once with a phantom state applied first, and the per-test
classifications are diffed.

A classification that changes under stress is a *state-sensitive
outcome*.  Some are new robustness information (a latent failure only
reachable in the stressed state); others expose context-dependence of
the expected-behaviour oracle itself — e.g. with the HM log pre-filled,
``XM_hm_seek`` offsets the quiet-system oracle deems out of range become
legitimate, which is precisely the paper's argument (§V) that a full
logic model must track system state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fault.campaign import Campaign, CampaignResult
from repro.fault.classify import Classification, Severity, classify
from repro.fault.executor import TestExecutor
from repro.fault.mutant import TestCallSpec
from repro.fault.phantom import PhantomState, _apply_state
from repro.fault.testlog import CampaignLog, TestRecord


class StressExecutor(TestExecutor):
    """A test executor that applies a phantom state before the call."""

    def __init__(self, state: PhantomState, **kw: object) -> None:
        super().__init__(**kw)  # type: ignore[arg-type]
        self.state = state

    def run(self, spec: TestCallSpec) -> TestRecord:
        """Execute with the state setter prepended to the placeholder."""
        from repro.fault.testlog import Invocation
        from repro.testbed import build_system
        from repro.tsim.simulator import SimulatorCrash, SimulatorHang
        from repro.xm.errors import NoReturnFromHypercall

        layout = self.layout
        invocations: list[Invocation] = []
        prepared = {"epoch": -1}

        def payload(ctx, xm) -> None:  # noqa: ANN001
            from repro.fault.stateful_oracle import capture_state

            if prepared["epoch"] != ctx.kernel.boot_epoch:
                for address, data in layout.staging_writes():
                    xm.write_bytes(address, data)
                _apply_state(self.state, ctx, xm)
                prepared["epoch"] = ctx.kernel.boot_epoch
            args = spec.resolve_args(layout)
            snapshot = capture_state(ctx.kernel)
            try:
                code = xm.call(spec.function, *args)
            except NoReturnFromHypercall as exc:
                invocations.append(
                    Invocation(returned=False, note=str(exc), state=snapshot)
                )
                raise
            invocations.append(Invocation(returned=True, rc=code, state=snapshot))

        sim = build_system(fdir_payload=payload, kernel_version=self.kernel_version)
        kernel = sim.boot()
        crashed = hung = False
        try:
            sim.run_major_frames(self.frames)
        except SimulatorCrash:
            crashed = True
        except SimulatorHang:
            hung = True
        return TestRecord(
            test_id=spec.test_id,
            function=spec.function,
            category=spec.category,
            arg_labels=spec.arg_labels(),
            resolved_args=spec.resolve_args(layout),
            invocations=invocations,
            sim_crashed=crashed,
            sim_hung=hung,
            kernel_halted=kernel.is_halted(),
            halt_reason=kernel.halt_reason or "",
            resets=[(r.kind, r.source) for r in kernel.reset_log],
            hm_events=[
                (rec.event.name, rec.partition_id, rec.detail)
                for rec in kernel.hm.records
            ],
            overruns=len(kernel.sched.overruns),
            test_partition_state=(
                kernel.partitions[0].state.value if 0 in kernel.partitions else ""
            ),
            kernel_version=self.kernel_version,
            frames=self.frames,
        )


@dataclass(frozen=True)
class StateSensitivity:
    """One test whose classification changed under stress."""

    test_id: str
    function: str
    nominal: Classification
    stressed: Classification

    @property
    def got_worse(self) -> bool:
        """Whether stress surfaced a (more severe) failure."""
        order = list(Severity)
        return order.index(self.stressed.severity) < order.index(self.nominal.severity)


@dataclass
class StressComparison:
    """Nominal-vs-stressed campaign diff."""

    state: PhantomState
    nominal: CampaignResult
    stressed_log: CampaignLog
    sensitivities: list[StateSensitivity] = field(default_factory=list)

    @property
    def stable_tests(self) -> int:
        """Tests whose classification did not change."""
        return self.nominal.total_tests - len(self.sensitivities)

    def newly_failing(self) -> list[StateSensitivity]:
        """Sensitivities where the stressed run is strictly worse."""
        return [s for s in self.sensitivities if s.got_worse]


def run_stress_comparison(
    state: PhantomState,
    functions: tuple[str, ...] | None = None,
    kernel_version: str | None = None,
) -> StressComparison:
    """Run a scoped campaign nominally and under one phantom state."""
    kw = {} if kernel_version is None else {"kernel_version": kernel_version}
    campaign = Campaign(functions=functions, **kw)  # type: ignore[arg-type]
    nominal = campaign.run()

    executor = StressExecutor(
        state, kernel_version=campaign.kernel_version, frames=campaign.frames
    )
    stressed_records = [executor.run(spec) for spec in campaign.iter_specs()]
    stressed_log = CampaignLog(stressed_records)

    # Classify the stressed records against the same (quiet-system)
    # oracle: divergences are state sensitivities by definition.
    from repro.fault.oracle import ReferenceOracle

    oracle = ReferenceOracle(campaign.kernel_version, campaign.oracle_context)
    spec_index = {spec.test_id: spec for spec in campaign.iter_specs()}
    nominal_cls = {
        record.test_id: classification
        for record, _expectation, classification in nominal.classified
    }
    sensitivities: list[StateSensitivity] = []
    for record in stressed_records:
        expectation = oracle.expect(spec_index[record.test_id])
        stressed_cls = classify(record, expectation)
        baseline = nominal_cls[record.test_id]
        if (stressed_cls.severity, stressed_cls.kind) != (
            baseline.severity,
            baseline.kind,
        ):
            sensitivities.append(
                StateSensitivity(
                    test_id=record.test_id,
                    function=record.function,
                    nominal=baseline,
                    stressed=stressed_cls,
                )
            )
    return StressComparison(
        state=state,
        nominal=nominal,
        stressed_log=stressed_log,
        sensitivities=sensitivities,
    )
