"""State-based stress testing (§V).

The paper cites evidence that "robustness results are different when the
system under test is subjected to different states and different stress
conditions" and proposes phantom parameters to set a stressful state
before invoking the test calls.  This module applies that idea to the
*parameterised* campaign: every test runs twice, once on the quiet
testbed and once with a phantom state applied first, and the per-test
classifications are diffed.

A classification that changes under stress is a *state-sensitive
outcome*.  Some are new robustness information (a latent failure only
reachable in the stressed state); others expose context-dependence of
the expected-behaviour oracle itself — e.g. with the HM log pre-filled,
``XM_hm_seek`` offsets the quiet-system oracle deems out of range become
legitimate, which is precisely the paper's argument (§V) that a full
logic model must track system state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fault.campaign import Campaign, CampaignResult
from repro.fault.classify import Classification, Severity, classify
from repro.fault.executor import CampaignPayload, TestExecutor
from repro.fault.phantom import PhantomState, _apply_state
from repro.fault.testlog import CampaignLog


@dataclass
class StressPayload(CampaignPayload):
    """Campaign placeholder that sets a phantom state before the calls.

    The state is applied once per boot epoch, just before the first
    armed invocation — i.e. inside the test window, after the shared
    settle frame, so stressed runs stay on the standard timeline.
    """

    state: PhantomState = PhantomState.NOMINAL

    def apply_state(self, ctx, xm) -> None:  # noqa: ANN001 - slot signature
        """Drive the kernel into the phantom state."""
        _apply_state(self.state, ctx, xm)


class StressExecutor(TestExecutor):
    """A test executor that applies a phantom state before the call.

    Everything else — settle protocol, warm-boot snapshots, record
    building — is inherited; only the packed placeholder differs.
    """

    def __init__(self, state: PhantomState, **kw: object) -> None:
        super().__init__(**kw)  # type: ignore[arg-type]
        self.state = state

    def _snapshot_key(self) -> tuple:
        # The unarmed payload (with its state field) is *inside* the
        # snapshot, so stressed snapshots must not alias nominal ones.
        return (*super()._snapshot_key(), "stress", self.state.value)

    def _make_payload(self) -> StressPayload:
        return StressPayload(layout=self.layout, state=self.state)


@dataclass(frozen=True)
class StateSensitivity:
    """One test whose classification changed under stress."""

    test_id: str
    function: str
    nominal: Classification
    stressed: Classification

    @property
    def got_worse(self) -> bool:
        """Whether stress surfaced a (more severe) failure."""
        order = list(Severity)
        return order.index(self.stressed.severity) < order.index(self.nominal.severity)


@dataclass
class StressComparison:
    """Nominal-vs-stressed campaign diff."""

    state: PhantomState
    nominal: CampaignResult
    stressed_log: CampaignLog
    sensitivities: list[StateSensitivity] = field(default_factory=list)

    @property
    def stable_tests(self) -> int:
        """Tests whose classification did not change."""
        return self.nominal.total_tests - len(self.sensitivities)

    def newly_failing(self) -> list[StateSensitivity]:
        """Sensitivities where the stressed run is strictly worse."""
        return [s for s in self.sensitivities if s.got_worse]


def run_stress_comparison(
    state: PhantomState,
    functions: tuple[str, ...] | None = None,
    kernel_version: str | None = None,
) -> StressComparison:
    """Run a scoped campaign nominally and under one phantom state."""
    kw = {} if kernel_version is None else {"kernel_version": kernel_version}
    campaign = Campaign(functions=functions, **kw)  # type: ignore[arg-type]
    nominal = campaign.run()

    executor = StressExecutor(
        state, kernel_version=campaign.kernel_version, frames=campaign.frames
    )
    stressed_records = [executor.run(spec) for spec in campaign.iter_specs()]
    stressed_log = CampaignLog(stressed_records)

    # Classify the stressed records against the same (quiet-system)
    # oracle: divergences are state sensitivities by definition.
    from repro.fault.oracle import ReferenceOracle

    oracle = ReferenceOracle(campaign.kernel_version, campaign.oracle_context)
    spec_index = {spec.test_id: spec for spec in campaign.iter_specs()}
    nominal_cls = {
        record.test_id: classification
        for record, _expectation, classification in nominal.classified
    }
    sensitivities: list[StateSensitivity] = []
    for record in stressed_records:
        expectation = oracle.expect(spec_index[record.test_id])
        stressed_cls = classify(record, expectation)
        baseline = nominal_cls[record.test_id]
        if (stressed_cls.severity, stressed_cls.kind) != (
            baseline.severity,
            baseline.kind,
        ):
            sensitivities.append(
                StateSensitivity(
                    test_id=record.test_id,
                    function=record.function,
                    nominal=baseline,
                    stressed=stressed_cls,
                )
            )
    return StressComparison(
        state=state,
        nominal=nominal,
        stressed_log=stressed_log,
        sensitivities=sensitivities,
    )
