"""The fault model's view of a kernel API (the API Header XML content).

The toolset is kernel-agnostic: it consumes an :class:`ApiModel` that
lists hypercall signatures and per-parameter dictionary bindings.  For
the XtratuM campaign the model is generated from the kernel's own
hypercall table; for another separation kernel it would be written (or
parsed from XML) by the test administrator during the preparation phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.xm.api import HYPERCALL_TABLE, Category, HypercallDef


@dataclass(frozen=True)
class ApiParameter:
    """One parameter in the API header."""

    name: str
    type_name: str
    is_pointer: bool = False
    dictionary: str | None = None

    @property
    def dictionary_key(self) -> str:
        """The dictionary this parameter draws values from."""
        return self.dictionary if self.dictionary is not None else self.type_name


@dataclass(frozen=True)
class ApiFunction:
    """One hypercall in the API header."""

    name: str
    return_type: str
    params: tuple[ApiParameter, ...]
    category: str = ""
    tested: bool = True
    untested_reason: str | None = None

    @property
    def arity(self) -> int:
        """Number of parameters."""
        return len(self.params)

    @property
    def has_params(self) -> bool:
        """Whether the data-type model applies directly."""
        return bool(self.params)


@dataclass
class ApiModel:
    """A whole kernel interface."""

    kernel_name: str
    functions: dict[str, ApiFunction] = field(default_factory=dict)

    def add(self, function: ApiFunction) -> None:
        """Register a function; duplicates are an error."""
        if function.name in self.functions:
            raise ValueError(f"duplicate API function: {function.name}")
        self.functions[function.name] = function

    def lookup(self, name: str) -> ApiFunction:
        """Function by name; KeyError with context otherwise."""
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"API function not in model: {name!r}") from None

    def __iter__(self) -> Iterator[ApiFunction]:
        return iter(self.functions.values())

    def __len__(self) -> int:
        return len(self.functions)

    def tested_functions(self) -> list[ApiFunction]:
        """Functions in campaign scope."""
        return [f for f in self if f.tested]

    def untested_functions(self) -> list[ApiFunction]:
        """Functions out of scope, with reasons."""
        return [f for f in self if not f.tested]

    def parameterless_functions(self) -> list[ApiFunction]:
        """Fig. 8's parameter-less group."""
        return [f for f in self if not f.has_params]

    def by_category(self) -> dict[str, list[ApiFunction]]:
        """Table III grouping (insertion order preserved)."""
        groups: dict[str, list[ApiFunction]] = {}
        for fn in self:
            groups.setdefault(fn.category, []).append(fn)
        return groups


def _from_def(hdef: HypercallDef) -> ApiFunction:
    params = tuple(
        ApiParameter(
            name=p.name,
            type_name=p.type_name,
            is_pointer=p.is_pointer,
            dictionary=p.dict_hint,
        )
        for p in hdef.params
    )
    return ApiFunction(
        name=hdef.name,
        return_type=hdef.return_type,
        params=params,
        category=hdef.category.value,
        tested=hdef.tested,
        untested_reason=hdef.untested_reason,
    )


def api_model_from_table(
    table: tuple[HypercallDef, ...] = HYPERCALL_TABLE,
    kernel_name: str = "XtratuM LEON3",
) -> ApiModel:
    """Build the XtratuM API model from the kernel's hypercall table."""
    model = ApiModel(kernel_name)
    for hdef in table:
        model.add(_from_def(hdef))
    return model


def category_order() -> list[str]:
    """Table III category display order."""
    return [cat.value for cat in Category]
