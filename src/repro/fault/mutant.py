"""Mutant source generation (Fig. 5, Mutant Source Generator stage).

Each dataset becomes one *mutant source*: in the paper, a C file with a
single fault placeholder (one hypercall invoked with the dataset),
compiled into the test partition.  Here each mutant carries both:

- the faithful **C source text** (an auditable artefact, and what a
  C-target port of the toolset would compile), and
- an executable :class:`TestCallSpec` the Python test partition
  interprets.

Symbolic dictionary entries (``VALID_BUFFER`` …) resolve against the
:class:`TestPartitionLayout` — fixed addresses inside the FDIR
partition's test-buffer window where the test partition stages valid
names, buffers and the multicall batch before invoking the call.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator

from repro.fault.apimodel import ApiFunction
from repro.fault.combinator import Dataset, GenerationStrategy
from repro.fault.dictionaries import Symbol, TestValue
from repro.fault.matrix import TestValueMatrix
from repro.testbed.eagleeye import partition_area_base
from repro.xal.runtime import TEST_BUFFER_OFFSET
from repro.xm.api import hypercall_by_name

#: Size of one multicall batch entry for XM_mask_irq(1): 3 words.
_BATCH_ENTRY_WORDS = 3
#: Number of entries in the staged batch — sized to overrun a 50 ms slot
#: at 20 us per inner call (4096 * 20 us ~ 82 ms).
BATCH_ENTRIES = 4096


@dataclass(frozen=True)
class TestPartitionLayout:
    """Staged data inside the test partition's buffer window."""

    __test__ = False  # keep pytest from collecting this library class

    base: int

    @property
    def valid_buffer(self) -> int:
        """A large writable scratch buffer."""
        return self.base + 0x100

    @property
    def unaligned_buffer(self) -> int:
        """The same buffer, deliberately odd-aligned."""
        return self.base + 0x101

    @property
    def names(self) -> dict[str, int]:
        """Addresses of staged NUL-terminated identifier strings."""
        return {
            "TM_MON": self.base + 0x800,
            "FDIR_EVT": self.base + 0x820,
            "PAYLOAD": self.base + 0x840,
        }

    @property
    def unterminated_name(self) -> int:
        """80 bytes of 'A' with no terminator within bounds."""
        return self.base + 0x900

    @property
    def batch_start(self) -> int:
        """Start of the staged multicall batch."""
        return self.base + 0x1000

    @property
    def batch_end(self) -> int:
        """One past the staged multicall batch."""
        return self.batch_start + BATCH_ENTRIES * _BATCH_ENTRY_WORDS * 4

    #: Which staged name each hypercall's VALID_NAME resolves to.
    NAME_FOR_FUNCTION = {
        "XM_create_sampling_port": "TM_MON",
        "XM_get_sampling_port_info": "TM_MON",
        "XM_create_queuing_port": "FDIR_EVT",
        "XM_get_queuing_port_info": "FDIR_EVT",
        "XM_get_gid_by_name": "PAYLOAD",
    }

    def resolve(self, symbol: Symbol, function_name: str) -> int:
        """Address a symbolic test value stands for, per function."""
        if symbol is Symbol.VALID_BUFFER:
            return self.valid_buffer
        if symbol is Symbol.UNALIGNED_BUFFER:
            return self.unaligned_buffer
        if symbol is Symbol.VALID_NAME:
            name = self.NAME_FOR_FUNCTION.get(function_name, "TM_MON")
            return self.names[name]
        if symbol is Symbol.UNTERMINATED_NAME:
            return self.unterminated_name
        if symbol is Symbol.VALID_BATCH_START:
            return self.batch_start
        if symbol is Symbol.VALID_BATCH_END:
            return self.batch_end
        raise ValueError(f"unresolvable symbol: {symbol}")

    def staging_writes(self) -> list[tuple[int, bytes]]:
        """(address, data) pairs the test partition stages before a call."""
        writes: list[tuple[int, bytes]] = []
        for name, addr in self.names.items():
            writes.append((addr, name.encode("ascii") + b"\0"))
        writes.append((self.unterminated_name, b"A" * 80))
        entry = struct.pack(
            ">III", hypercall_by_name("XM_mask_irq").number, 1, 1
        )
        writes.append((self.batch_start, entry * BATCH_ENTRIES))
        return writes


def default_layout(partition_id: int = 0) -> TestPartitionLayout:
    """Layout in the FDIR partition's test-buffer window."""
    return TestPartitionLayout(partition_area_base(partition_id) + TEST_BUFFER_OFFSET)


@dataclass(frozen=True)
class ArgSpec:
    """One argument of a test call (picklable)."""

    param: str
    label: str
    value: int | None = None
    symbol: str | None = None

    @classmethod
    def from_test_value(cls, param: str, tv: TestValue) -> "ArgSpec":
        """Encode a dictionary entry."""
        return cls(
            param=param,
            label=tv.label,
            value=tv.value,
            symbol=tv.symbol.value if tv.symbol is not None else None,
        )

    def resolve(self, layout: TestPartitionLayout, function_name: str) -> int:
        """The concrete integer passed to the hypercall."""
        if self.symbol is not None:
            return layout.resolve(Symbol(self.symbol), function_name)
        assert self.value is not None
        return self.value


@dataclass(frozen=True)
class TestCallSpec:
    """One fault placeholder: a hypercall plus one dataset."""

    __test__ = False  # keep pytest from collecting this library class

    test_id: str
    function: str
    category: str
    args: tuple[ArgSpec, ...]

    def resolve_args(self, layout: TestPartitionLayout) -> tuple[int, ...]:
        """Concrete argument tuple for execution."""
        return tuple(arg.resolve(layout, self.function) for arg in self.args)

    def arg_labels(self) -> tuple[str, ...]:
        """Dictionary labels, for logs and reports."""
        return tuple(arg.label for arg in self.args)

    def describe(self) -> str:
        """``XM_set_timer(HW_CLOCK, 1, LLONG_MIN)`` style rendering."""
        return f"{self.function}({', '.join(self.arg_labels())})"


@dataclass(frozen=True)
class MutantSource:
    """One mutant: the C artefact plus the executable spec."""

    spec: TestCallSpec
    c_source: str

    @property
    def filename(self) -> str:
        """Suggested file name for the mutant source."""
        return f"mutant_{self.spec.test_id}.c"


_C_SYMBOL_MACROS = {
    Symbol.VALID_BUFFER.value: "TP_VALID_BUFFER",
    Symbol.UNALIGNED_BUFFER.value: "TP_UNALIGNED_BUFFER",
    Symbol.VALID_NAME.value: "TP_VALID_NAME",
    Symbol.UNTERMINATED_NAME.value: "TP_UNTERMINATED_NAME",
    Symbol.VALID_BATCH_START.value: "TP_BATCH_START",
    Symbol.VALID_BATCH_END.value: "TP_BATCH_END",
}


def _c_literal(arg: ArgSpec, param_type: str, is_pointer: bool) -> str:
    if arg.symbol is not None:
        macro = _C_SYMBOL_MACROS[arg.symbol]
        return f"({param_type} *){macro}" if is_pointer else f"({param_type}){macro}"
    assert arg.value is not None
    suffix = "LL" if abs(arg.value) > 0x7FFFFFFF else ""
    if is_pointer:
        return f"({param_type} *){arg.value:#x}"
    return f"({param_type}){arg.value}{suffix}"


def render_c_source(spec: TestCallSpec, function: ApiFunction) -> str:
    """Render the mutant C source in the paper's test-partition style."""
    call_args = ",\n        ".join(
        _c_literal(arg, p.type_name, p.is_pointer)
        for arg, p in zip(spec.args, function.params)
    )
    arg_comment = ", ".join(
        f"{p.name}={arg.label}" for arg, p in zip(spec.args, function.params)
    )
    invocation = (
        f"{spec.function}(\n        {call_args}\n    )" if spec.args else f"{spec.function}()"
    )
    return f"""/* Mutant source {spec.test_id} — generated by the robustness toolset.
 * Fault placeholder: {spec.function} ({spec.category})
 * Dataset: {arg_comment or '(none)'}
 */
#include <xm.h>
#include "test_partition.h"

void tp_fault_placeholder(void)
{{
    {function.return_type} tp_rc;

    tp_stage_buffers();
    tp_rc = {invocation};
    tp_log_result("{spec.function}", tp_rc);
}}
"""


def generate_mutants(
    matrix: TestValueMatrix,
    strategy: GenerationStrategy,
) -> Iterator[MutantSource]:
    """Generate one mutant per dataset (Fig. 5 end to end)."""
    function = matrix.function
    for index, dataset in enumerate(strategy.generate(matrix)):
        spec = dataset_to_spec(function, dataset, index)
        yield MutantSource(spec=spec, c_source=render_c_source(spec, function))


def dataset_to_spec(function: ApiFunction, dataset: Dataset, index: int) -> TestCallSpec:
    """Encode one dataset as a picklable test-call spec."""
    args = tuple(
        ArgSpec.from_test_value(param.name, tv)
        for param, tv in zip(function.params, dataset)
    )
    return TestCallSpec(
        test_id=f"{function.name}#{index:04d}",
        function=function.name,
        category=function.category,
        args=args,
    )
