"""Test-value dictionaries: the heart of the data type fault model.

A *dictionary* attaches a set of interesting values to a data type —
boundary values, "magic" values from the testing literature, and values
that uncovered issues in previous campaigns (the paper cites Ballista
and the Critical Software RTEMS campaign as sources).  Values that can
be *valid* for some hypercalls are included deliberately to avoid fault
masking (Table II's asterisked entries; Fig. 7).

Two kinds of values exist:

- plain integers, passed through C conversion at the hypercall boundary;
- :class:`Symbol` placeholders (``VALID_BUFFER`` …) resolved against the
  test partition's memory layout at mutant-generation time — the
  Ballista technique for producing *valid* pointer inputs.

Whether a given value is valid is *not* a dictionary property: validity
depends on the hypercall and parameter (per the paper's §V discussion),
and is decided by the :mod:`~repro.fault.oracle`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

LLONG_MIN = -(2**63)
LLONG_MAX = 2**63 - 1
UINT_MAX = 4294967295
INT_MIN = -2147483648
INT_MAX = 2147483647


class Symbol(enum.Enum):
    """Symbolic test values resolved against the test-partition layout."""

    VALID_BUFFER = "valid_buffer"
    UNALIGNED_BUFFER = "unaligned_buffer"
    VALID_NAME = "valid_name"
    UNTERMINATED_NAME = "unterminated_name"
    VALID_BATCH_START = "valid_batch_start"
    VALID_BATCH_END = "valid_batch_end"


@dataclass(frozen=True)
class TestValue:
    """One dictionary entry.

    Exactly one of ``value``/``symbol`` is set.  ``label`` is the short
    name used in logs and the Data Type XML (e.g. ``MIN_S32``);
    ``maybe_valid`` marks Table II's asterisked entries.
    """

    __test__ = False  # keep pytest from collecting this library class

    label: str
    value: int | None = None
    symbol: Symbol | None = None
    maybe_valid: bool = False
    #: Where the value came from: "boundary" (type range), "literature"
    #: (Marick / Ballista suggestions), "previous-campaign" (values that
    #: uncovered issues in earlier tests), "layout" (symbolic), or
    #: "context" (parameter-specific knowledge).  Documents the Table II
    #: sourcing claim; free-form for user dictionaries.
    source: str = ""

    def __post_init__(self) -> None:
        if (self.value is None) == (self.symbol is None):
            raise ValueError("TestValue needs exactly one of value/symbol")

    @property
    def is_symbolic(self) -> bool:
        """Whether the entry needs layout resolution."""
        return self.symbol is not None

    def literal(self) -> int:
        """The integer value; error for symbolic entries."""
        if self.value is None:
            raise ValueError(f"symbolic value {self.label} has no literal")
        return self.value

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.label


def _v(label: str, value: int, maybe_valid: bool = False,
       source: str = "literature") -> TestValue:
    if source == "literature" and label.startswith(("MIN_", "MAX_", "LLONG_")):
        source = "boundary"
    return TestValue(label, value=value, maybe_valid=maybe_valid, source=source)


def _s(label: str, symbol: Symbol, maybe_valid: bool = True) -> TestValue:
    return TestValue(label, symbol=symbol, maybe_valid=maybe_valid, source="layout")


@dataclass(frozen=True)
class TypeDictionary:
    """The test-value set for one data type or parameter context."""

    __test__ = False  # keep pytest from collecting this library class

    name: str
    basic_type: str
    values: tuple[TestValue, ...]
    description: str = ""

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[TestValue]:
        return iter(self.values)

    def labels(self) -> list[str]:
        """Entry labels in order."""
        return [v.label for v in self.values]


# Unmapped probe addresses on the EagleEye memory map.
NULL_PTR = 0
LOW_PTR = 1
UNMAPPED_PTR = 0x50000000
HIGH_PTR = 0xFFFFFFF0


def builtin_dictionaries() -> dict[str, TypeDictionary]:
    """The campaign's dictionaries, keyed by dictionary name.

    Type-level entries reproduce the paper's documented sets exactly:
    ``xm_u32_t`` per Fig. 3 and ``xm_s32_t`` per Table II.  Context
    dictionaries (``clock_id`` …) implement the §V observation that test
    values should be selected with knowledge of the parameter's typical
    use; the paper's own Fig. 3 set (five values for *every* u32) would
    explode Table III's counts, so context sets keep the campaign
    "practically manageable" exactly as the authors describe.
    """
    dicts: list[TypeDictionary] = [
        TypeDictionary(
            "xm_u32_t",
            "xm_u32_t",
            (
                _v("0", 0, maybe_valid=True),
                _v("1", 1, maybe_valid=True),
                _v("2", 2, maybe_valid=True),
                _v("16", 16, maybe_valid=True),
                _v("MAX_U32", UINT_MAX),
            ),
            description="Fig. 3 unsigned int set",
        ),
        TypeDictionary(
            "xm_s32_t",
            "xm_s32_t",
            (
                _v("MIN_S32", INT_MIN),
                _v("-16", -16, maybe_valid=True),
                _v("-1", -1, maybe_valid=True),
                _v("ZERO", 0, maybe_valid=True),
                _v("1", 1, maybe_valid=True),
                _v("2", 2, maybe_valid=True),
                _v("16", 16, maybe_valid=True),
                _v("MAX_S32", INT_MAX),
            ),
            description="Table II signed int set",
        ),
        TypeDictionary(
            "xmTime_t",
            "xm_s64_t",
            (
                _v("LLONG_MIN", LLONG_MIN),
                _v("1", 1, maybe_valid=True),
                _v("1SEC", 1_000_000, maybe_valid=True),
                _v("LLONG_MAX", LLONG_MAX),
            ),
            description="time values in microseconds",
        ),
        TypeDictionary(
            "xmSize_t",
            "xm_u32_t",
            (
                _v("0", 0),
                _v("1", 1, maybe_valid=True),
                _v("16", 16, maybe_valid=True),
                _v("4096", 4096, maybe_valid=True),
                _v("MAX_U32", UINT_MAX),
            ),
            description="sizes in bytes",
        ),
        TypeDictionary(
            "xmAddress_t",
            "xm_u32_t",
            (
                _v("NULL", NULL_PTR),
                _v("LOW", LOW_PTR),
                _v("UNMAPPED", UNMAPPED_PTR),
                _s("VALID", Symbol.VALID_BUFFER),
                _v("HIGH", HIGH_PTR),
            ),
            description="32-bit physical addresses",
        ),
        TypeDictionary(
            "xmIoAddress_t",
            "xm_u32_t",
            (
                _v("NULL", NULL_PTR),
                _v("RAM", 0x40000000),
                _v("APB_GAP", 0x80000000),
                _v("UART_STATUS", 0x80000104, maybe_valid=True),
                _v("MAX_U32", UINT_MAX),
            ),
            description="I/O register addresses",
        ),
        # -- context dictionaries (paper §V) --------------------------------
        TypeDictionary(
            "clock_id",
            "xm_u32_t",
            (_v("HW_CLOCK", 0, maybe_valid=True), _v("EXEC_CLOCK", 1, maybe_valid=True)),
            description="XM clock identifiers",
        ),
        TypeDictionary(
            "plan_id",
            "xm_u32_t",
            (_v("PLAN0", 0, maybe_valid=True), _v("PLAN1", 1, maybe_valid=True)),
            description="scheduling plan identifiers",
        ),
        TypeDictionary(
            "port_id",
            "xm_s32_t",
            (
                _v("-1", -1),
                _v("0", 0, maybe_valid=True),
                _v("1", 1, maybe_valid=True),
                _v("2", 2),
                _v("16", 16),
            ),
            description="port descriptors (FDIR opens 0 and 1)",
        ),
        TypeDictionary(
            "partition_id_ctx",
            "xm_s32_t",
            (
                _v("SELF", -1, maybe_valid=True),
                _v("0", 0, maybe_valid=True),
                _v("1", 1, maybe_valid=True),
                _v("16", 16),
            ),
            description="partition ids for memory services",
        ),
        TypeDictionary(
            "size_ctx",
            "xm_u32_t",
            (
                _v("0", 0),
                _v("16", 16, maybe_valid=True),
                _v("MAX_U32", UINT_MAX),
            ),
            description="compact size set for multi-parameter calls",
        ),
        TypeDictionary(
            "direction_ctx",
            "xm_u32_t",
            (
                _v("SOURCE", 0, maybe_valid=True),
                _v("DESTINATION", 1, maybe_valid=True),
                _v("2", 2),
            ),
            description="port directions",
        ),
        TypeDictionary(
            "entity_ctx",
            "xm_u32_t",
            (
                _v("PARTITION", 0, maybe_valid=True),
                _v("CHANNEL", 1, maybe_valid=True),
            ),
            description="name-resolution entity kinds",
        ),
        TypeDictionary(
            "struct_ptr",
            "xm_u32_t",
            (
                _v("NULL", NULL_PTR),
                _v("UNMAPPED", UNMAPPED_PTR),
                _s("VALID", Symbol.VALID_BUFFER),
            ),
            description="status-structure output pointers",
        ),
        TypeDictionary(
            "buffer_ptr",
            "xm_u32_t",
            (
                _v("NULL", NULL_PTR),
                _v("UNMAPPED", UNMAPPED_PTR),
                _s("UNALIGNED", Symbol.UNALIGNED_BUFFER),
                _s("VALID", Symbol.VALID_BUFFER),
            ),
            description="message/data buffers",
        ),
        TypeDictionary(
            "name_ptr",
            "xm_u32_t",
            (
                _v("NULL", NULL_PTR),
                _v("UNMAPPED", UNMAPPED_PTR),
                _s("VALID_NAME", Symbol.VALID_NAME),
                _s("UNTERMINATED", Symbol.UNTERMINATED_NAME, maybe_valid=False),
            ),
            description="identifier strings",
        ),
        TypeDictionary(
            "out_ptr_small",
            "xm_u32_t",
            (
                _v("NULL", NULL_PTR),
                _s("VALID", Symbol.VALID_BUFFER),
            ),
            description="small scalar output pointers",
        ),
        TypeDictionary(
            "batch_ptr_start",
            "xm_u32_t",
            (
                _v("NULL", NULL_PTR),
                _v("LOW", LOW_PTR),
                _v("UNMAPPED", UNMAPPED_PTR),
                _s("VALID", Symbol.VALID_BATCH_START),
                _v("HIGH", HIGH_PTR),
            ),
            description="multicall batch start pointers",
        ),
        TypeDictionary(
            "batch_ptr_end",
            "xm_u32_t",
            (
                _v("NULL", NULL_PTR),
                _v("LOW", LOW_PTR),
                _v("UNMAPPED", UNMAPPED_PTR),
                _s("VALID", Symbol.VALID_BATCH_END),
                _v("HIGH", HIGH_PTR),
            ),
            description="multicall batch end pointers",
        ),
    ]
    # Plain basic types not listed above fall back to sensible defaults.
    dicts.append(
        TypeDictionary(
            "xm_u8_t",
            "xm_u8_t",
            (_v("0", 0, maybe_valid=True), _v("1", 1, maybe_valid=True), _v("MAX_U8", 255)),
        )
    )
    dicts.append(
        TypeDictionary(
            "xm_s64_t",
            "xm_s64_t",
            (
                _v("LLONG_MIN", LLONG_MIN),
                _v("-1", -1, maybe_valid=True),
                _v("0", 0, maybe_valid=True),
                _v("1", 1, maybe_valid=True),
                _v("LLONG_MAX", LLONG_MAX),
            ),
        )
    )
    return {d.name: d for d in dicts}


@dataclass
class DictionarySet:
    """A named collection of dictionaries used by one campaign."""

    dictionaries: dict[str, TypeDictionary] = field(default_factory=builtin_dictionaries)

    def lookup(self, key: str) -> TypeDictionary:
        """Dictionary by name; KeyError with context otherwise."""
        try:
            return self.dictionaries[key]
        except KeyError:
            raise KeyError(f"no test-value dictionary named {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self.dictionaries

    def add(self, dictionary: TypeDictionary) -> None:
        """Add or replace a dictionary."""
        self.dictionaries[dictionary.name] = dictionary

    def without_valid_values(self) -> "DictionarySet":
        """Ablation variant: drop every maybe-valid entry.

        Used by the fault-masking bench (Fig. 7): without valid entries,
        an invalid first parameter masks later-parameter failures.
        Dictionaries that would become empty keep their first entry.
        """
        stripped: dict[str, TypeDictionary] = {}
        for name, d in self.dictionaries.items():
            values = tuple(v for v in d.values if not v.maybe_valid)
            if not values:
                values = d.values[:1]
            stripped[name] = TypeDictionary(d.name, d.basic_type, values, d.description)
        return DictionarySet(stripped)
