"""XML round trip for the two kernel-specific inputs.

The toolset is configured by two XML files (a technique the paper takes
from the Xception toolset): the **API Header XML** listing hypercalls
and parameter types (Fig. 2), and the **Data Type XML** listing test
values per data type (Fig. 3).  This module writes and parses both in
the paper's format, with small extensions (a ``Dictionary`` attribute
for context dictionaries, ``Symbol`` entries for layout-resolved
values) that are ignored by readers that do not know them.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.fault.apimodel import ApiFunction, ApiModel, ApiParameter
from repro.fault.dictionaries import (
    DictionarySet,
    Symbol,
    TestValue,
    TypeDictionary,
)


class XmlFormatError(ValueError):
    """The document does not follow the expected schema."""


# -- API Header XML -----------------------------------------------------------


def api_model_to_xml(model: ApiModel) -> str:
    """Serialise an API model in the Fig. 2 format."""
    root = ET.Element("ApiHeader", Kernel=model.kernel_name)
    for fn in model:
        fel = ET.SubElement(
            root,
            "Function",
            Name=fn.name,
            ReturnType=fn.return_type,
            IsPointer="NO",
            Category=fn.category,
            Tested="YES" if fn.tested else "NO",
        )
        if fn.untested_reason:
            fel.set("UntestedReason", fn.untested_reason)
        plist = ET.SubElement(fel, "ParametersList")
        for param in fn.params:
            pel = ET.SubElement(
                plist,
                "Parameter",
                Name=param.name,
                Type=param.type_name,
                IsPointer="YES" if param.is_pointer else "NO",
            )
            if param.dictionary is not None:
                pel.set("Dictionary", param.dictionary)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def api_model_from_xml(text: str) -> ApiModel:
    """Parse the Fig. 2 format back into an API model."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    if root.tag != "ApiHeader":
        raise XmlFormatError(f"expected <ApiHeader>, got <{root.tag}>")
    model = ApiModel(root.get("Kernel", "unknown"))
    for fel in root.findall("Function"):
        name = fel.get("Name")
        if not name:
            raise XmlFormatError("<Function> without Name")
        params = []
        plist = fel.find("ParametersList")
        if plist is not None:
            for pel in plist.findall("Parameter"):
                pname = pel.get("Name")
                ptype = pel.get("Type")
                if not pname or not ptype:
                    raise XmlFormatError(f"{name}: parameter missing Name/Type")
                params.append(
                    ApiParameter(
                        name=pname,
                        type_name=ptype,
                        is_pointer=pel.get("IsPointer", "NO") == "YES",
                        dictionary=pel.get("Dictionary"),
                    )
                )
        model.add(
            ApiFunction(
                name=name,
                return_type=fel.get("ReturnType", "xm_s32_t"),
                params=tuple(params),
                category=fel.get("Category", ""),
                tested=fel.get("Tested", "YES") == "YES",
                untested_reason=fel.get("UntestedReason"),
            )
        )
    return model


# -- Data Type XML ------------------------------------------------------------


def dictionaries_to_xml(dicts: DictionarySet) -> str:
    """Serialise a dictionary set in the Fig. 3 format."""
    root = ET.Element("DataTypes")
    for dictionary in dicts.dictionaries.values():
        del_ = ET.SubElement(
            root,
            "DataType",
            Name=dictionary.name,
            BasicType=dictionary.basic_type,
        )
        if dictionary.description:
            del_.set("Description", dictionary.description)
        values = ET.SubElement(del_, "TestValues")
        for tv in dictionary.values:
            if tv.is_symbolic:
                vel = ET.SubElement(values, "Symbol", Name=tv.symbol.value)
            else:
                vel = ET.SubElement(values, "Value")
                vel.text = str(tv.value)
            vel.set("Label", tv.label)
            if tv.maybe_valid:
                vel.set("MaybeValid", "YES")
            if tv.source:
                vel.set("Source", tv.source)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def dictionaries_from_xml(text: str) -> DictionarySet:
    """Parse the Fig. 3 format back into a dictionary set."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    if root.tag != "DataTypes":
        raise XmlFormatError(f"expected <DataTypes>, got <{root.tag}>")
    out: dict[str, TypeDictionary] = {}
    for del_ in root.findall("DataType"):
        name = del_.get("Name")
        if not name:
            raise XmlFormatError("<DataType> without Name")
        values: list[TestValue] = []
        tvs = del_.find("TestValues")
        if tvs is None:
            raise XmlFormatError(f"{name}: missing <TestValues>")
        for vel in tvs:
            maybe_valid = vel.get("MaybeValid", "NO") == "YES"
            if vel.tag == "Value":
                if vel.text is None:
                    raise XmlFormatError(f"{name}: empty <Value>")
                raw = int(vel.text.strip())
                values.append(
                    TestValue(
                        vel.get("Label", vel.text.strip()),
                        value=raw,
                        maybe_valid=maybe_valid,
                        source=vel.get("Source", ""),
                    )
                )
            elif vel.tag == "Symbol":
                sym_name = vel.get("Name", "")
                try:
                    symbol = Symbol(sym_name)
                except ValueError:
                    raise XmlFormatError(f"{name}: unknown symbol {sym_name!r}") from None
                values.append(
                    TestValue(
                        vel.get("Label", sym_name),
                        symbol=symbol,
                        maybe_valid=maybe_valid,
                        source=vel.get("Source", ""),
                    )
                )
            else:
                raise XmlFormatError(f"{name}: unexpected <{vel.tag}>")
        out[name] = TypeDictionary(
            name=name,
            basic_type=del_.get("BasicType", "xm_u32_t"),
            values=tuple(values),
            description=del_.get("Description", ""),
        )
    return DictionarySet(out)


def fig2_excerpt() -> str:
    """The paper's Fig. 2 example: XM_reset_partition's API header."""
    from repro.fault.apimodel import api_model_from_table

    model = api_model_from_table()
    fn = model.lookup("XM_reset_partition")
    sub = ApiModel(model.kernel_name)
    sub.add(fn)
    return api_model_to_xml(sub)


def fig3_excerpt() -> str:
    """The paper's Fig. 3 example: the xm_u32_t test-value set."""
    dicts = DictionarySet()
    sub = DictionarySet({"xm_u32_t": dicts.lookup("xm_u32_t")})
    return dictionaries_to_xml(sub)
