"""The ``test_value_matrix`` (Fig. 5, XML Parser stage).

For one hypercall, the matrix holds the test values associated with each
input parameter, resolved from the dictionary set.  It is the input to
the dataset generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fault.apimodel import ApiFunction
from repro.fault.dictionaries import DictionarySet, TestValue


@dataclass(frozen=True)
class TestValueMatrix:
    """Per-parameter test values for one hypercall."""

    __test__ = False  # keep pytest from collecting this library class

    function: ApiFunction
    columns: tuple[tuple[TestValue, ...], ...]

    @property
    def shape(self) -> tuple[int, ...]:
        """Number of test values per parameter."""
        return tuple(len(col) for col in self.columns)

    @property
    def total_combinations(self) -> int:
        """Eq. 1: the product of per-parameter counts."""
        total = 1
        for col in self.columns:
            total *= len(col)
        return total

    def column(self, index: int) -> tuple[TestValue, ...]:
        """Test values of one parameter."""
        return self.columns[index]


def build_matrix(function: ApiFunction, dictionaries: DictionarySet) -> TestValueMatrix:
    """Resolve each parameter's dictionary into a matrix.

    Raises KeyError when a parameter references an unknown dictionary —
    the preparation-phase error the paper's toolset reports when the two
    XML files disagree.
    """
    if not function.has_params:
        raise ValueError(
            f"{function.name} takes no parameters; the data-type model "
            "does not apply directly (see the phantom-parameter extension)"
        )
    columns = tuple(
        tuple(dictionaries.lookup(param.dictionary_key).values)
        for param in function.params
    )
    return TestValueMatrix(function=function, columns=columns)
