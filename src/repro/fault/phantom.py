"""Phantom parameters: testing parameter-less hypercalls (§V).

The data-type model does not apply directly to the 10 parameter-less
hypercalls (16 % of the API), yet those calls are still influenced by
system state.  Ballista's *phantom parameter* technique treats the
system state as an extra parameter: a dummy module drives the system
into a chosen state before the module under test is invoked.

Here a :class:`PhantomState` is that parameter: each state has a setter
executed (as the test partition) before the parameter-less call.  The
same states double as *stress conditions* for ordinary hypercalls —
the §V observation that robustness results differ under stress.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.fault.apimodel import ApiModel, api_model_from_table
from repro.fault.classify import Classification, FailureKind, Severity
from repro.fault.testlog import Invocation, TestRecord
from repro.testbed import build_system
from repro.testbed.builder import FDIR_SLOT_HOOK
from repro.tsim.simulator import (
    SimSnapshot,
    SimulatorCrash,
    SimulatorHang,
    SnapshotCache,
    SnapshotError,
)
from repro.xm import rc
from repro.xm.errors import NoReturnFromHypercall
from repro.xm.hm import HmEvent
from repro.xm.vulns import VULNERABLE_VERSION


class PhantomState(enum.Enum):
    """System states used as phantom parameters."""

    NOMINAL = "nominal"
    HM_PRESSURE = "hm_pressure"
    IPC_SATURATED = "ipc_saturated"
    PARTITIONS_DEGRADED = "partitions_degraded"
    TIMER_ARMED = "timer_armed"


def _apply_state(state: PhantomState, ctx, xm) -> None:  # noqa: ANN001
    """Drive the system into the phantom state (runs as FDIR)."""
    kernel = ctx.kernel
    if state is PhantomState.NOMINAL:
        return
    if state is PhantomState.HM_PRESSURE:
        # Fill the HM log close to capacity.
        for _ in range(kernel.hm.capacity - 4):
            kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, kernel.sim.now_us)
        return
    if state is PhantomState.IPC_SATURATED:
        port = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)
        if port >= 0:
            for _ in range(8):
                xm.send_queuing_message(port, bytes(48))
        return
    if state is PhantomState.PARTITIONS_DEGRADED:
        xm.call("XM_halt_partition", 3)
        xm.call("XM_suspend_partition", 2)
        return
    if state is PhantomState.TIMER_ARMED:
        xm.set_timer(rc.XM_HW_CLOCK, 100_000, 100_000)
        return
    raise AssertionError(f"unhandled phantom state: {state}")


#: Expected return codes per parameter-less hypercall (from the manual).
_EXPECTED: dict[str, frozenset[int]] = {
    "XM_halt_system": frozenset(),  # never returns
    "XM_idle_self": frozenset({rc.XM_OK}),
    "XM_hm_reset_events": frozenset({rc.XM_OK}),
    "XM_trace_flush": frozenset({rc.XM_OK, rc.XM_NO_ACTION}),
    "XM_enable_irqs": frozenset({rc.XM_OK}),
    "XM_sparc_flush_regwin": frozenset({rc.XM_OK}),
    "XM_sparc_flush_cache": frozenset({rc.XM_OK}),
    "XM_sparc_enable_traps": frozenset({rc.XM_OK}),
    "XM_sparc_disable_traps": frozenset({rc.XM_OK}),
    "XM_sparc_get_psr": frozenset(),  # non-negative PSR word
}
_NONNEG = {"XM_sparc_get_psr"}
_NO_RETURN = {"XM_halt_system"}


@dataclass
class PhantomPayload:
    """Picklable FDIR placeholder for the phantom campaign.

    Follows the campaign timeline: the first slot of the system's life
    settles (no call), then each armed slot invokes the parameter-less
    hypercall, with the phantom state applied once — before the first
    invocation — exactly like the original dummy module.
    """

    function: str | None = None
    state: PhantomState = PhantomState.NOMINAL
    invocations: list[Invocation] = field(default_factory=list)
    applied: bool = False
    settled: bool = False

    def arm(self, case: "PhantomCase") -> None:
        """Point the placeholder at one (hypercall, state) case."""
        self.function = case.function
        self.state = case.state
        self.invocations = []
        self.applied = False

    def __call__(self, ctx, xm) -> None:  # noqa: ANN001 - FdirPayload signature
        """One FDIR slot: settle once, then state + invoke."""
        if not self.settled:
            self.settled = True
            return
        if self.function is None:
            return
        if not self.applied:
            _apply_state(self.state, ctx, xm)
            self.applied = True
        try:
            code = xm.call(self.function)
        except NoReturnFromHypercall as exc:
            self.invocations.append(Invocation(returned=False, note=str(exc)))
            raise
        self.invocations.append(Invocation(returned=True, rc=code))


@dataclass(frozen=True)
class PhantomCase:
    """One (hypercall, phantom state) test."""

    function: str
    state: PhantomState

    @property
    def test_id(self) -> str:
        """Log identifier: ``<hypercall>@<state>``."""
        return f"{self.function}@{self.state.value}"


@dataclass
class PhantomResult:
    """Outcome of a phantom campaign."""

    records: list[TestRecord] = field(default_factory=list)
    classifications: list[Classification] = field(default_factory=list)

    @property
    def failures(self) -> list[tuple[TestRecord, Classification]]:
        """Failing cases."""
        return [
            (record, cls)
            for record, cls in zip(self.records, self.classifications)
            if cls.is_failure
        ]

    def by_state(self) -> dict[PhantomState, int]:
        """Failures per phantom state."""
        out = {state: 0 for state in PhantomState}
        for record, cls in self.failures:
            state = PhantomState(record.test_id.split("@", 1)[1])
            out[state] += 1
        return out


#: Process-wide snapshot cache for phantom campaigns (one boot per
#: kernel version, shared by every campaign instance).
_SNAPSHOT_CACHE = SnapshotCache()


class PhantomCampaign:
    """Parameter-less hypercall coverage via phantom parameters."""

    def __init__(
        self,
        kernel_version: str = VULNERABLE_VERSION,
        states: tuple[PhantomState, ...] = tuple(PhantomState),
        model: ApiModel | None = None,
        frames: int = 2,
        warm_boot: bool = True,
    ) -> None:
        self.kernel_version = kernel_version
        self.states = states
        self.model = model if model is not None else api_model_from_table()
        self.frames = frames
        self.warm_boot = warm_boot

    def cases(self) -> list[PhantomCase]:
        """The cross product of parameter-less calls and states."""
        return [
            PhantomCase(fn.name, state)
            for fn in self.model.parameterless_functions()
            for state in self.states
        ]

    def run(self) -> PhantomResult:
        """Execute every case on a fresh system."""
        result = PhantomResult()
        for case in self.cases():
            record = self._run_case(case)
            result.records.append(record)
            result.classifications.append(self._classify(case, record))
        return result

    def _snapshot_key(self) -> tuple:
        """Snapshot identity for this campaign's booted testbed."""
        return ("EagleEye-phantom", self.kernel_version)

    def _build_snapshot(self) -> SimSnapshot:
        """Boot the testbed once (unarmed) and snapshot after settling."""
        sim = build_system(
            fdir_payload=PhantomPayload(), kernel_version=self.kernel_version
        )
        try:
            kernel = sim.boot()
            sim.run_until(kernel.major_frame_us - 1)
        except (SimulatorCrash, SimulatorHang) as exc:
            raise SnapshotError(f"system failed to settle: {exc}") from exc
        return sim.snapshot()

    def _run_case(self, case: PhantomCase) -> TestRecord:
        if self.warm_boot:
            try:
                return self._run_case_warm(case)
            except SnapshotError:
                self.warm_boot = False
        return self._run_case_cold(case)

    def _run_case_warm(self, case: PhantomCase) -> TestRecord:
        snapshot = _SNAPSHOT_CACHE.get_or_build(
            self._snapshot_key(), self._build_snapshot
        )
        sim = snapshot.restore()
        kernel = sim.kernel
        slot = sim.image.runtime_hooks.get(FDIR_SLOT_HOOK)
        if slot is None or not isinstance(slot.payload, PhantomPayload):
            raise SnapshotError("restored image carries no phantom payload slot")
        payload = slot.payload
        payload.arm(case)
        crashed = hung = False
        try:
            sim.run_until((self.frames + 1) * kernel.major_frame_us)
        except SimulatorCrash:
            crashed = True
        except SimulatorHang:
            hung = True
        record = self._record(case, kernel, payload, crashed, hung)
        snapshot.recycle(sim)
        return record

    def _run_case_cold(self, case: PhantomCase) -> TestRecord:
        payload = PhantomPayload()
        sim = build_system(fdir_payload=payload, kernel_version=self.kernel_version)
        kernel = sim.boot()
        crashed = hung = False
        try:
            sim.run_until(kernel.major_frame_us - 1)  # settle frame
            payload.arm(case)
            sim.run_until((self.frames + 1) * kernel.major_frame_us)
        except SimulatorCrash:
            crashed = True
        except SimulatorHang:
            hung = True
        return self._record(case, kernel, payload, crashed, hung)

    def _record(
        self,
        case: PhantomCase,
        kernel,  # noqa: ANN001
        payload: PhantomPayload,
        crashed: bool,
        hung: bool,
    ) -> TestRecord:
        return TestRecord(
            test_id=case.test_id,
            function=case.function,
            category="(phantom)",
            arg_labels=(case.state.value,),
            invocations=payload.invocations,
            sim_crashed=crashed,
            sim_hung=hung,
            kernel_halted=kernel.is_halted(),
            halt_reason=kernel.halt_reason or "",
            resets=[(r.kind, r.source) for r in kernel.reset_log],
            hm_events=[
                (rec.event.name, rec.partition_id, rec.detail)
                for rec in kernel.hm.records
            ],
            overruns=len(kernel.sched.overruns),
            kernel_version=self.kernel_version,
            frames=self.frames,
        )

    def _classify(self, case: PhantomCase, record: TestRecord) -> Classification:
        if record.sim_crashed:
            return Classification(Severity.CATASTROPHIC, FailureKind.SIM_CRASH)
        if record.sim_hung:
            return Classification(Severity.RESTART, FailureKind.SIM_HANG)
        if case.function in _NO_RETURN:
            if record.never_returned:
                return Classification(Severity.PASS, FailureKind.NONE)
            return Classification(
                Severity.SILENT, FailureKind.WRONG_SUCCESS, "halt returned"
            )
        if record.kernel_halted:
            return Classification(
                Severity.CATASTROPHIC, FailureKind.KERNEL_HALT, record.halt_reason
            )
        if record.never_returned:
            return Classification(Severity.RESTART, FailureKind.NO_RETURN)
        code = record.first_rc
        if code is None:
            # Not invoked at all (e.g. state setter halted the caller):
            # inconclusive, counted as pass with a note.
            return Classification(Severity.PASS, FailureKind.NONE, "not invoked")
        allowed = _EXPECTED.get(case.function, frozenset())
        if code in allowed or (case.function in _NONNEG and code >= 0):
            return Classification(Severity.PASS, FailureKind.NONE)
        if code >= 0:
            return Classification(
                Severity.SILENT, FailureKind.WRONG_SUCCESS, f"rc={code}"
            )
        return Classification(
            Severity.HINDERING, FailureKind.WRONG_ERROR, f"rc={rc.name_of(code)}"
        )
