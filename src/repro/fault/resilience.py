"""Resilient verdicts: retry-with-quorum, killer quarantine, respawn breaker.

PR 2 made campaign *execution* durable (streaming log, supervised pool,
watchdog); this module makes the *verdicts* durable.  Terminal
process-level outcomes — ``worker_killed`` and ``watchdog_expired`` —
were previously issued from a single observation, so one host-load
artefact (an OOM kill, a scheduler stall past the watchdog) was
indistinguishable from a genuinely harness-killing test.  Three pieces
fix that:

- :class:`RetryPolicy` + :class:`VerdictArbiter` — a suspect spec is
  re-run and a *quorum* of lethal observations decides the verdict; a
  re-run that completes normally wins immediately.  The consumed
  ``attempts`` and the ``arbitrated`` provenance land on the record.
- :class:`Quarantine` — specs with a confirmed killer verdict persist
  in a JSON quarantine file; later campaigns skip them with a
  ``quarantined`` record instead of feeding them to a fresh pool, and
  the CLI ``quarantine`` subcommand reviews/edits the list.
- :class:`RespawnBreaker` — a circuit breaker over pool respawns: when
  respawned pools keep dying *without* making progress, execution
  degrades to the serial in-process runner instead of thrashing.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.fault.testlog import TestRecord, atomic_write_text


@dataclass(frozen=True)
class RetryPolicy:
    """How terminal process-level verdicts are arbitrated.

    A suspect spec may consume up to ``max_attempts`` runs; a verdict
    of ``worker_killed`` / ``watchdog_expired`` is only issued once
    ``quorum`` lethal observations agree (a run that completes normally
    ends arbitration at once — the host could run it, so the earlier
    observation was an artefact).  ``backoff_s`` sleeps between repeat
    attempts of the same spec, scaled by the observation count.

    The defaults re-run a suspect once: two agreeing observations make
    the verdict.  ``max_attempts=1`` (or ``quorum=1``) restores the
    PR-2 behaviour where the first observation is terminal.
    """

    max_attempts: int = 3
    quorum: int = 2
    backoff_s: float = 0.0

    def __post_init__(self) -> None:
        """Validate the attempt/quorum shape."""
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 1 <= self.quorum <= self.max_attempts:
            raise ValueError(
                f"quorum must be in 1..max_attempts, got {self.quorum} "
                f"with max_attempts={self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")

    @property
    def single_shot(self) -> bool:
        """Whether the first lethal observation is already terminal."""
        return self.max_attempts == 1 or self.quorum == 1

    def backoff(self, observations: int) -> None:
        """Sleep before the next attempt of a spec observed lethal N times."""
        if self.backoff_s:
            time.sleep(self.backoff_s * max(1, observations))


class VerdictArbiter:
    """Per-spec lethal observations and the verdicts they add up to."""

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self._lethal: dict[str, list[str]] = {}

    @property
    def total_observations(self) -> int:
        """All lethal observations recorded so far (progress metric)."""
        return sum(len(obs) for obs in self._lethal.values())

    def observe(self, test_id: str, kind: str) -> bool:
        """Record one lethal observation; True when the verdict is terminal.

        Terminal means the quorum agreed — or the attempt budget is
        spent, in which case the verdict is issued on what was seen.
        """
        observations = self._lethal.setdefault(test_id, [])
        observations.append(kind)
        count = len(observations)
        return count >= self.policy.quorum or count >= self.policy.max_attempts

    def observations(self, test_id: str) -> list[str]:
        """The lethal observations recorded for one spec."""
        return list(self._lethal.get(test_id, ()))

    def annotate(self, record: TestRecord) -> None:
        """Stamp attempts/arbitrated provenance onto a delivered record.

        A lethal record consumed exactly its observations; a genuine
        record that survived arbitration consumed one run more.  A
        record with no lethal history is left untouched.
        """
        observations = self._lethal.get(record.test_id)
        if not observations:
            return
        lethal = record.worker_killed or record.watchdog_expired
        record.attempts = len(observations) + (0 if lethal else 1)
        record.arbitrated = record.attempts > 1


class Quarantine:
    """A persistent list of specs with confirmed killer verdicts.

    Stored as JSON (``{"version": 1, "entries": {test_id: {...}}}``).
    A missing file is an empty quarantine; :meth:`save` writes
    atomically (temp + replace), like the campaign log.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        entries: dict[str, dict] | None = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.entries: dict[str, dict] = dict(entries or {})
        self.dirty = False

    @classmethod
    def load(cls, path: str | Path) -> "Quarantine":
        """Read a quarantine file; a missing file is an empty list."""
        path = Path(path)
        if not path.exists():
            return cls(path)
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(path, data.get("entries", {}))

    def add(self, test_id: str, function: str, observations: list[str]) -> None:
        """Quarantine one spec (idempotent by test id)."""
        if test_id in self.entries:
            return
        self.entries[test_id] = {
            "function": function,
            "observations": list(observations),
            "added_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
        self.dirty = True

    def remove(self, test_id: str) -> bool:
        """Drop one spec from quarantine; True if it was present."""
        if test_id not in self.entries:
            return False
        del self.entries[test_id]
        self.dirty = True
        return True

    def clear(self) -> None:
        """Empty the quarantine."""
        if self.entries:
            self.dirty = True
        self.entries.clear()

    def __contains__(self, test_id: str) -> bool:
        return test_id in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def save(self) -> None:
        """Atomically write the quarantine file (temp + replace).

        Goes through :func:`~repro.fault.testlog.atomic_write_text`, so
        the published file honors the process umask — ``mkstemp``'s
        0600 temp mode must not survive the rename, or CI stages and
        users sharing the quarantine path cannot read it.
        """
        if self.path is None:
            raise ValueError("this quarantine has no backing path")
        payload = json.dumps(
            {"version": 1, "entries": self.entries}, indent=2, sort_keys=True
        )
        atomic_write_text(self.path, payload + "\n")
        self.dirty = False


@dataclass
class RespawnBreaker:
    """Circuit breaker over pool respawns.

    Every pool created beyond the campaign's first counts as a respawn;
    after a respawned pool's round the caller reports whether it was
    *productive* (delivered a record, or advanced an arbitration with a
    new lethal observation).  ``limit`` consecutive unproductive
    respawns trip the breaker — the campaign stops feeding a dying pool
    and degrades to the serial in-process runner for whatever remains.
    """

    limit: int = 3
    respawns: int = 0
    streak: int = 0

    def note_spawn(self) -> None:
        """Count one pool respawn."""
        self.respawns += 1

    def note_round(self, productive: bool) -> None:
        """Report whether the latest respawned pool's round progressed."""
        self.streak = 0 if productive else self.streak + 1

    @property
    def tripped(self) -> bool:
        """Whether respawning should stop (degrade to serial)."""
        return self.streak >= self.limit


def quarantined_record(
    spec,  # noqa: ANN001 - TestCallSpec (import cycle with mutant avoided)
    kernel_version: str,
    frames: int,
    entry: dict | None = None,
) -> TestRecord:
    """A skipped-without-execution record for a quarantined spec.

    The spec is a *known* killer, so the record keeps the
    ``worker_killed`` verdict (the issue must not vanish from the
    analysis just because the spec was not re-fed to a pool) and marks
    ``quarantined`` so triage can tell a fresh kill from a skip.
    """
    record = TestRecord(
        test_id=spec.test_id,
        function=spec.function,
        category=spec.category,
        arg_labels=spec.arg_labels(),
        worker_killed=True,
        quarantined=True,
        kernel_version=kernel_version,
        frames=frames,
    )
    record.host_context = {
        "quarantined": True,
        "observations": list((entry or {}).get("observations", ())),
    }
    return record
