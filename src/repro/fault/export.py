"""Structured exports: CSV and Markdown for reports and logs.

Campaign artefacts feed downstream documents (qualification dossiers,
issue trackers), so every table the paper reports is exportable in both
formats, plus a side-by-side kernel-version comparison.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

from repro.fault.campaign import CampaignResult
from repro.fault.report import Table3Row, table3_rows, table3_totals
from repro.fault.testlog import CampaignLog
from repro.xm import rc


def table3_csv(result: CampaignResult) -> str:
    """Table III as CSV (with totals row)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["category", "total_hypercalls", "hypercalls_tested", "tests", "raised_issues"]
    )
    for row in [*table3_rows(result), table3_totals(result)]:
        writer.writerow(
            [
                row.category,
                row.total_hypercalls,
                row.hypercalls_tested,
                row.tests,
                row.raised_issues,
            ]
        )
    return buffer.getvalue()


def table3_markdown(result: CampaignResult) -> str:
    """Table III as a GitHub-flavoured Markdown table."""
    lines = [
        "| Hypercall category | Total | Tested | Tests | Raised issues |",
        "|---|---|---|---|---|",
    ]
    for row in [*table3_rows(result), table3_totals(result)]:
        bold = "**" if row.category == "Total" else ""
        lines.append(
            f"| {bold}{row.category}{bold} | {row.total_hypercalls} | "
            f"{row.hypercalls_tested} | {row.tests} | {row.raised_issues} |"
        )
    return "\n".join(lines)


def issues_csv(result: CampaignResult) -> str:
    """The issue list as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["hypercall", "category", "severity", "failure_kind", "cases",
         "known_id", "description"]
    )
    for issue in result.issues:
        writer.writerow(
            [
                issue.hypercall,
                issue.category,
                issue.severity.value,
                issue.kind.value,
                issue.case_count,
                issue.matched_vulnerability or "",
                issue.description,
            ]
        )
    return buffer.getvalue()


def log_csv(log: CampaignLog) -> str:
    """Per-test records as CSV (flat columns for spreadsheet triage)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["test_id", "function", "category", "args", "first_rc", "returned",
         "sim_crashed", "kernel_halted", "resets", "overruns", "hm_events"]
    )
    for record in log:
        first = record.first_rc
        writer.writerow(
            [
                record.test_id,
                record.function,
                record.category,
                " ".join(record.arg_labels),
                rc.name_of(first) if first is not None else "",
                int(not record.never_returned and record.invoked),
                int(record.sim_crashed),
                int(record.kernel_halted),
                len(record.resets),
                record.overruns,
                ";".join(sorted(record.hm_event_names())),
            ]
        )
    return buffer.getvalue()


@dataclass(frozen=True)
class VersionComparison:
    """Side-by-side outcome of the same scope on two kernel versions."""

    left: CampaignResult
    right: CampaignResult

    def fixed_issue_ids(self) -> set[str]:
        """Issues present on the left and absent on the right."""
        return self._ids(self.left) - self._ids(self.right)

    def regressed_issue_ids(self) -> set[str]:
        """Issues absent on the left and present on the right."""
        return self._ids(self.right) - self._ids(self.left)

    @staticmethod
    def _ids(result: CampaignResult) -> set[str]:
        return {
            issue.matched_vulnerability or issue.description
            for issue in result.issues
        }

    def markdown(self) -> str:
        """Render the comparison."""
        left_v = self.left.kernel_version
        right_v = self.right.kernel_version
        lines = [
            f"| | XtratuM {left_v} | XtratuM {right_v} |",
            "|---|---|---|",
            f"| tests | {self.left.total_tests} | {self.right.total_tests} |",
            f"| failing tests | {len(self.left.failures())} | "
            f"{len(self.right.failures())} |",
            f"| issues | {self.left.issue_count()} | {self.right.issue_count()} |",
        ]
        fixed = sorted(self.fixed_issue_ids())
        regressed = sorted(self.regressed_issue_ids())
        lines.append(f"| fixed in {right_v} | | {', '.join(fixed) or '-'} |")
        if regressed:
            lines.append(f"| regressed in {right_v} | | {', '.join(regressed)} |")
        return "\n".join(lines)


def compare_versions(left: CampaignResult, right: CampaignResult) -> VersionComparison:
    """Build a version comparison from two finished campaigns."""
    return VersionComparison(left=left, right=right)
