"""Test execution: pack, boot, run, observe (paper steps 3-5).

For each test case the FDIR test partition carries the fault
placeholder, which stages the layout buffers, invokes the hypercall with
the resolved dataset once per major frame, and records whether/what it
returned.  The executor runs the simulator for a fixed number of major
frames, catching the two simulator-level failures, and distils
everything the paper logs into a
:class:`~repro.fault.testlog.TestRecord`.

Every test observes the same timeline: the system boots, runs one full
*settle* major frame with the placeholder staged but not yet invoking,
then invokes once per major frame for ``frames`` frames.  That shared
settle frame is what makes the two execution modes byte-identical:

- **cold boot** — pack a fresh TSP system, boot it, run the settle
  frame, arm the payload, run the test window;
- **warm boot** (default) — boot *once* per
  ``(testbed, kernel_version, layout)``, capture a deep
  :class:`~repro.tsim.simulator.SimSnapshot` right after the settle
  frame, then run each test by restoring the snapshot, arming the
  restored payload with the spec, and running the same test window.

Warm boot skips the pack/boot/settle work per test (the dominant cost)
and is disabled automatically — with a cold fallback — when a custom
``system_factory`` is installed or the packed software turns out not to
be snapshottable.

Process isolation (worker processes separate from the campaign,
faithful to the paper's one-TSIM-per-test shell scripts) is provided by
the module-level worker entry points used by the parallel campaign
runner; each worker process builds its snapshot once (in the pool
initializer) and reuses it for every *shard* — a batch of spec-table
indices — it is handed.  Workers announce each shard and stream every
finished record back on the results relay, so the campaign can both
checkpoint per record and attribute a worker death to the exact spec
that caused it; an optional wall-clock watchdog (``timeout_s``) turns a
runaway run into a ``sim_hung``-style record instead of a stalled
campaign.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.fault import failpoints
from repro.fault.mutant import TestCallSpec, TestPartitionLayout, default_layout
from repro.fault.plan import CompiledPlan, PlanEntry
from repro.fault.stateful_oracle import capture_state
from repro.fault.testlog import Invocation, TestRecord
from repro.testbed import build_system
from repro.testbed.builder import FDIR_SLOT_HOOK
from repro.tsim.delta import DeltaResetError, Unjournalable
from repro.tsim.simulator import (
    SimSnapshot,
    SimulatorCrash,
    SimulatorHang,
    SnapshotCache,
    SnapshotError,
)
from repro.xm.errors import NoReturnFromHypercall
from repro.xm.vulns import VULNERABLE_VERSION

#: Major frames per test run ("a selected number of cyclic schedules").
DEFAULT_FRAMES = 2
#: Console lines kept in the record.
CONSOLE_TAIL = 8
#: Default cap on board-memory bytes a single delta reset may revert; a
#: test that dirties more falls back to a full snapshot restore.
DEFAULT_JOURNAL_BUDGET = 1 << 20

#: Fault-injection hooks for the campaign supervisor's own tests: a
#: worker that is handed a named test id dies (or spins until the
#: watchdog fires) on purpose, reproducing at process level the paper's
#: tests that killed their own harness (`XM_set_timer(1,1,1)` took TSIM
#: down with it).  Each variable takes a comma-separated list of test
#: ids, or ``*`` for every spec.  Ignored unless set.
KILL_SPEC_ENV = "REPRO_KILL_SPEC"
HANG_SPEC_ENV = "REPRO_HANG_SPEC"
#: Directory of one-shot markers: when set, each injected kill/hang
#: fires only the *first* time a given test id is handed to a worker
#: (a marker file is claimed with O_CREAT|O_EXCL, so the exactly-once
#: guarantee holds across pool respawns and processes).  Transient
#: faults are what verdict arbitration exists to absorb — this is how
#: its tests make a spec lethal once and innocent ever after.
FAULT_ONCE_DIR_ENV = "REPRO_FAULT_ONCE_DIR"


def _fault_once(test_id: str, kind: str) -> bool:
    """Whether an injected fault should fire under the once-marker dir.

    Always True when ``FAULT_ONCE_DIR_ENV`` is unset (faults repeat on
    every run); with it set, the first caller to claim the marker file
    fires and every later attempt stays innocent.
    """
    marker_dir = os.environ.get(FAULT_ONCE_DIR_ENV)
    if not marker_dir:
        return True
    marker = os.path.join(marker_dir, f"{kind}-{test_id}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _fault_targets(value: str | None) -> set[str]:
    """Parse a fault-hook env value into its set of targeted test ids."""
    if not value:
        return set()
    return {target.strip() for target in value.split(",") if target.strip()}


def _kill_injected(test_id: str) -> bool:
    """Whether the kill-injection hook says this worker run must die."""
    targets = _fault_targets(os.environ.get(KILL_SPEC_ENV))
    if "*" not in targets and test_id not in targets:
        return False
    return _fault_once(test_id, "kill")


class ResetVerifyError(RuntimeError):
    """``--verify-reset``: a delta-path record diverged from full restore."""

    def __init__(self, test_id: str, field_name: str) -> None:
        super().__init__(
            f"verify-reset mismatch on {test_id}: field {field_name!r} differs "
            "between the delta-reset and full-restore runs"
        )
        self.test_id = test_id
        self.field_name = field_name


class PlanVerifyError(RuntimeError):
    """``--verify-plan``: a compiled-plan record diverged from unplanned."""

    def __init__(self, test_id: str, field_name: str) -> None:
        super().__init__(
            f"verify-plan mismatch on {test_id}: field {field_name!r} differs "
            "between the compiled-plan and unplanned runs"
        )
        self.test_id = test_id
        self.field_name = field_name


class WatchdogExpired(Exception):
    """A test run exceeded the executor's wall-clock budget.

    ``timeout_s`` defaults to None because the timer-thread watchdog
    delivers this exception asynchronously via
    ``PyThreadState_SetAsyncExc``, which instantiates the class with no
    arguments.
    """

    def __init__(self, timeout_s: float | None = None) -> None:
        budget = f"{timeout_s}s" if timeout_s is not None else "wall-clock"
        super().__init__(f"test run exceeded the {budget} watchdog")
        self.timeout_s = timeout_s


class _ThreadWatchdog:
    """Timer-thread watchdog for executors running off the main thread.

    ``signal.setitimer`` raises ``ValueError`` anywhere but the main
    thread, and the fabric worker agent runs its executor in a thread
    spawned from the asyncio event loop — so off the main thread the
    deadline is enforced by a daemon :class:`threading.Timer` that
    raises :class:`WatchdogExpired` *inside the guarded thread* via
    ``PyThreadState_SetAsyncExc`` (delivered at the next bytecode
    boundary, which interrupts a Python-level livelock exactly like the
    SIGALRM path does).  ``disarm`` both cancels the timer and clears a
    fired-but-not-yet-delivered exception, so a test that finished just
    under the deadline cannot have its completed record destroyed by a
    late delivery.
    """

    def __init__(self, timeout_s: float, thread_id: int) -> None:
        self._thread_id = thread_id
        self._lock = threading.Lock()
        self._fired = False
        self._disarmed = False
        self._timer = threading.Timer(timeout_s, self._fire)
        self._timer.daemon = True
        self._timer.start()

    def _fire(self) -> None:
        import ctypes

        with self._lock:
            if self._disarmed:
                return
            self._fired = True
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(self._thread_id),
                ctypes.py_object(WatchdogExpired),
            )

    def disarm(self) -> None:
        """Cancel the timer and retract a fired-but-undelivered raise."""
        import ctypes

        with self._lock:
            self._disarmed = True
            self._timer.cancel()
            if self._fired:
                # Clear a pending (undelivered) async exception; a
                # no-op when it was already delivered and caught.
                ctypes.pythonapi.PyThreadState_SetAsyncExc(
                    ctypes.c_ulong(self._thread_id), None
                )
                self._fired = False


#: The active watchdog of each non-main thread (see ``_disarm_watchdog``).
_THREAD_WATCHDOG = threading.local()


@contextmanager
def _watchdog(timeout_s: float | None) -> Iterator[None]:
    """Raise :class:`WatchdogExpired` in-thread after ``timeout_s``.

    SIGALRM-based on the main thread of a process (pool workers run
    tests on their own main threads, so the watchdog holds in parallel
    campaigns); off the main thread — a fabric worker agent running the
    executor from its event loop's thread pool — it falls back to a
    :class:`_ThreadWatchdog` timer thread instead of silently running
    unguarded.  Either way a runaway test (a livelock the event budget
    cannot see, e.g. one spinning outside the simulator) is interrupted
    instead of hanging the campaign.
    """
    if not timeout_s:
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        ident = threading.get_ident()
        watchdog = _ThreadWatchdog(timeout_s, ident)
        _THREAD_WATCHDOG.active = watchdog
        try:
            yield
        finally:
            _THREAD_WATCHDOG.active = None
            watchdog.disarm()
        return

    def _fire(signum, frame):  # noqa: ANN001 - signal handler signature
        raise WatchdogExpired(timeout_s)

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _disarm_watchdog() -> None:
    """Stop a pending watchdog before the run's grace period expires.

    Called as soon as the run phase is over: a test that completed just
    under the deadline must not have its finished record discarded — or
    its snapshot recycling aborted midway — by the timer firing during
    record building.  Idempotent with the context manager's own disarm;
    covers both the SIGALRM path and the timer-thread fallback.
    """
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        signal.setitimer(signal.ITIMER_REAL, 0.0)
    active = getattr(_THREAD_WATCHDOG, "active", None)
    if active is not None:
        active.disarm()


def _maybe_injected_hang(test_id: str) -> None:
    """Spin forever when the hang-injection hook names this test."""
    targets = _fault_targets(os.environ.get(HANG_SPEC_ENV))
    if ("*" in targets or test_id in targets) and _fault_once(test_id, "hang"):
        while True:  # interrupted by the watchdog's SIGALRM
            time.sleep(0.01)


@dataclass(frozen=True)
class ExecutionResult:
    """A record plus the executor inputs that produced it."""

    record: TestRecord
    spec: TestCallSpec
    kernel_version: str


@dataclass
class CampaignPayload:
    """The fault placeholder packed into the FDIR partition.

    A plain (picklable) object rather than a closure, so it can travel
    inside warm-boot snapshots.  Unarmed, it only stages the layout
    buffers; :meth:`arm` gives it a spec, after which every FDIR slot
    resolves the dataset (once), captures the kernel state vector and
    invokes the hypercall.

    The first slot of the system's life is the *settle* slot: the
    payload stages and returns without invoking, so the test window
    always starts one major frame after boot — the anchor that keeps
    warm-boot and cold-boot runs on the same timeline.  After a system
    reset there is no settling: the payload re-stages and invokes in the
    same slot, exactly like the packed placeholder on the real testbed.
    """

    layout: TestPartitionLayout
    spec: TestCallSpec | None = None
    invocations: list[Invocation] = field(default_factory=list)
    resolved: tuple[int, ...] | None = None
    staged_epoch: int = -1
    applied_epoch: int = -1
    settled: bool = False
    #: Compiled-plan entry when armed via :meth:`arm_planned`; carries
    #: pre-converted arguments for the kernel's prepared dispatch path.
    plan_entry: PlanEntry | None = None

    def arm(self, spec: TestCallSpec) -> None:
        """Point the placeholder at a test spec, clearing old results.

        The dataset is resolved here, once per arm — resolution is pure
        in (spec, layout), so resolving eagerly is observationally
        identical to the old first-invocation resolution and removes
        the double work the record builder used to do when a test
        crashed before its first invocation ever resolved.
        """
        self.spec = spec
        self.invocations = []
        self.resolved = spec.resolve_args(self.layout)
        self.applied_epoch = -1
        self.plan_entry = None

    def arm_planned(self, entry: PlanEntry) -> None:
        """Arm from a compiled-plan entry: resolution already done."""
        self.spec = entry.spec
        self.invocations = []
        self.resolved = entry.resolved
        self.applied_epoch = -1
        self.plan_entry = entry

    def apply_state(self, ctx, xm) -> None:  # noqa: ANN001 - slot signature
        """Pre-invocation hook, once per boot epoch (stress overrides)."""

    def __call__(self, ctx, xm) -> None:  # noqa: ANN001 - FdirPayload signature
        """One FDIR slot: stage (first slot per epoch), then invoke."""
        epoch = ctx.kernel.boot_epoch
        if self.staged_epoch != epoch:
            for address, data in self.layout.staging_writes():
                xm.write_bytes(address, data)
            self.staged_epoch = epoch
            if not self.settled:
                self.settled = True
                return
        if self.spec is None:
            return
        if self.applied_epoch != epoch:
            self.apply_state(ctx, xm)
            self.applied_epoch = epoch
        if self.resolved is None:  # armed by hand, not via arm()
            self.resolved = self.spec.resolve_args(self.layout)
        state = capture_state(ctx.kernel)
        entry = self.plan_entry
        try:
            if entry is not None:
                code = ctx.kernel.hypercall_prepared(ctx.partition, entry)
            else:
                code = xm.call(self.spec.function, *self.resolved)
        except NoReturnFromHypercall as exc:
            self.invocations.append(
                Invocation(returned=False, note=str(exc), state=state)
            )
            raise
        self.invocations.append(Invocation(returned=True, rc=code, state=state))


#: Process-wide snapshot cache: one boot per (testbed, version, layout)
#: key no matter how many executors run in this process.
_SNAPSHOT_CACHE = SnapshotCache()


class TestExecutor:
    """Runs test-call specs on EagleEye systems (warm-boot by default)."""

    __test__ = False  # keep pytest from collecting this library class

    def __init__(
        self,
        kernel_version: str = VULNERABLE_VERSION,
        frames: int = DEFAULT_FRAMES,
        layout: TestPartitionLayout | None = None,
        system_factory=None,
        warm_boot: bool = True,
        snapshot_cache: SnapshotCache | None = None,
        timeout_s: float | None = None,
        delta_reset: bool = True,
        journal_budget: int | None = DEFAULT_JOURNAL_BUDGET,
        verify_reset: bool = False,
        verify_plan: bool = False,
        profile: bool = False,
    ) -> None:
        self.kernel_version = kernel_version
        self.frames = frames
        #: Per-test wall-clock watchdog; None disables it.
        self.timeout_s = timeout_s
        self.layout = layout if layout is not None else default_layout()
        #: Builds (payload, version) -> Simulator; defaults to EagleEye.
        #: Swapping it retargets the whole campaign to another testbed
        #: (e.g. repro.testbed.dummy.build_dummy_system) — and forces
        #: cold boots, since the snapshot key only describes EagleEye.
        self.system_factory = system_factory if system_factory is not None else build_system
        self.warm_boot = warm_boot and system_factory is None
        self.snapshot_cache = snapshot_cache if snapshot_cache is not None else _SNAPSHOT_CACHE
        #: Top rung of the reset ladder: keep one live simulator per
        #: snapshot key and revert it in place between tests.  Demoted
        #: automatically (see _run_on_snapshot) when the graph proves
        #: unjournalable; individual tests fall back when the run
        #: crashed/hung or the journal overflows its budget.
        self.delta_reset = delta_reset and self.warm_boot
        self.journal_budget = journal_budget
        #: Run every spec both ways (delta-maintained sim and a fresh
        #: snapshot restore) and require field-for-field record identity.
        self.verify_reset = verify_reset
        #: Run every planned spec through the uncompiled path too and
        #: require field-for-field record identity (the compiled-plan
        #: analogue of ``verify_reset``).
        self.verify_plan = verify_plan
        #: Accumulate per-phase wall time into :attr:`phase_times`.
        self.profile = profile
        #: Wall seconds per execution phase (populated when profiling).
        self.phase_times = {
            "bringup": 0.0,
            "run": 0.0,
            "record": 0.0,
            "reset": 0.0,
        }
        #: The delta-maintained live simulator (and the snapshot key it
        #: was restored from), or None between fallbacks.
        self._live = None
        self._live_key: tuple | None = None
        #: Per-test bring-up modes plus fallback/verification counters.
        self.reset_stats = {
            "delta": 0,
            "restore": 0,
            "cold": 0,
            "delta_fallbacks": 0,
            "verified": 0,
            "plan_verified": 0,
        }

    # -- warm boot ---------------------------------------------------------

    def _snapshot_key(self) -> tuple:
        """Build parameters the boot-time state depends on."""
        return ("EagleEye", self.kernel_version, self.layout)

    def _make_payload(self) -> CampaignPayload:
        """Fresh unarmed placeholder (stress executors override)."""
        return CampaignPayload(layout=self.layout)

    def _build_snapshot(self) -> SimSnapshot:
        """Boot once and capture the post-settle system image."""
        sim = self.system_factory(
            fdir_payload=self._make_payload(), kernel_version=self.kernel_version
        )
        try:
            kernel = sim.boot()
            sim.run_until(kernel.major_frame_us - 1)
        except (SimulatorCrash, SimulatorHang) as exc:
            # A system that cannot settle nominally is a cold-path
            # problem; fall back so the failure is recorded per test.
            raise SnapshotError(f"system failed to settle: {exc}") from exc
        return sim.snapshot()

    def prepare(self) -> None:
        """Eagerly build (or fetch) the warm-boot snapshot.

        Worker processes call this from the pool initializer so the
        one-off boot cost is paid before the first test arrives.  Falls
        back to cold boots when the system is not snapshottable.
        """
        if not self.warm_boot:
            return
        try:
            self.snapshot_cache.get_or_build(self._snapshot_key(), self._build_snapshot)
        except SnapshotError:
            self.warm_boot = False

    # -- execution ---------------------------------------------------------

    def run(self, spec: TestCallSpec) -> TestRecord:
        """Execute one test case and log the outcome.

        With ``timeout_s`` set, a runaway run is interrupted by the
        wall-clock watchdog and logged as a hung (``sim_hung``) record
        instead of stalling the campaign.
        """
        failpoints.fire("executor.run")
        started = time.perf_counter()
        try:
            with _watchdog(self.timeout_s):
                _maybe_injected_hang(spec.test_id)
                return self._execute(spec, started)
        except WatchdogExpired:
            return self._watchdog_record(spec, started)

    # -- compiled-plan execution -------------------------------------------

    def compile_suite(self, specs) -> CompiledPlan:  # noqa: ANN001
        """Compile ``specs`` against this executor's configuration."""
        return CompiledPlan(specs, self.layout, self.kernel_version, self.frames)

    def run_planned(self, entry: PlanEntry) -> TestRecord:
        """Planned-path :meth:`run`: same semantics, precomputed facts."""
        failpoints.fire("executor.run")
        started = time.perf_counter()
        try:
            with _watchdog(self.timeout_s):
                _maybe_injected_hang(entry.test_id)
                record = self._execute(entry.spec, started, entry)
        except WatchdogExpired:
            return self._watchdog_record(entry.spec, started)
        if self.verify_plan:
            self._verify_against_unplanned(entry, record)
        return record

    def run_group(self, entries, emit=None, gate=None) -> list[TestRecord]:  # noqa: ANN001
        """Batched same-hypercall pass over consecutive plan ``entries``.

        The whole group runs through one armed simulator loop: snapshot
        resolved once, delta journal armed on the first restore,
        reverted in place between tests — only the per-test arm and the
        run itself are paid per spec.  Order and per-test semantics are
        identical to calling :meth:`run_planned` per entry; campaigns
        fall back to exactly that per-spec path whenever a per-test
        wall-clock watchdog or a verification audit is armed (the
        watchdog must bracket one test, and the audits interleave
        reference runs the shared loop must not absorb).

        ``emit(entry, record)`` fires as each record exists (streamed
        checkpoints keep per-test granularity); ``gate(entry)`` fires
        before each test (the pool worker's kill-injection hook).
        """
        if (
            not (self.warm_boot and self.delta_reset)
            or self.timeout_s
            or self.verify_reset
            or self.verify_plan
        ):
            records = []
            for entry in entries:
                if gate is not None:
                    gate(entry)
                record = self.run_planned(entry)
                if emit is not None:
                    emit(entry, record)
                records.append(record)
            return records
        key = self._snapshot_key()
        try:
            snapshot = self.snapshot_cache.get_or_build(key, self._build_snapshot)
        except SnapshotError:
            self.warm_boot = False
            return self.run_group(entries, emit, gate)
        records = []
        for entry in entries:
            if gate is not None:
                gate(entry)
            failpoints.fire("executor.run")
            started = time.perf_counter()
            _maybe_injected_hang(entry.test_id)
            try:
                record = self._run_on_snapshot(
                    entry.spec, started, snapshot, key, primary=True, entry=entry
                )
            except SnapshotError:
                self.warm_boot = False
                record = self._run_cold(entry.spec, started, entry)
            if emit is not None:
                emit(entry, record)
            records.append(record)
        return records

    def _execute(
        self, spec: TestCallSpec, started: float, entry: PlanEntry | None = None
    ) -> TestRecord:
        if self.warm_boot:
            try:
                return self._run_warm(spec, started, entry)
            except SnapshotError:
                self.warm_boot = False
        return self._run_cold(spec, started, entry)

    def _run_warm(
        self, spec: TestCallSpec, started: float, entry: PlanEntry | None = None
    ) -> TestRecord:
        key = self._snapshot_key()
        snapshot = self.snapshot_cache.get_or_build(key, self._build_snapshot)
        record = self._run_on_snapshot(
            spec, started, snapshot, key, primary=True, entry=entry
        )
        if self.verify_reset:
            self._verify_against_fresh(spec, record, snapshot, key)
        return record

    def _run_on_snapshot(
        self,
        spec: TestCallSpec,
        started: float,
        snapshot: SimSnapshot,
        key: tuple,
        primary: bool,
        entry: PlanEntry | None = None,
    ) -> TestRecord:
        """One warm run: reuse the delta-maintained sim or restore fresh.

        ``primary=False`` is the verification reference path: always a
        fresh restore, never kept, never counted in the bring-up stats.
        ``entry`` switches the payload and record builder onto the
        compiled-plan fast paths (same observable behaviour).
        """
        prof = self.profile
        t0 = time.perf_counter() if prof else 0.0
        reuse = primary and self.delta_reset
        sim = None
        delta_used = False
        if reuse and self._live is not None and self._live_key == key:
            sim, self._live = self._live, None
            delta_used = True
        if sim is None:
            sim = snapshot.restore()
            if reuse:
                try:
                    sim.arm_delta(self.journal_budget)
                except Unjournalable:
                    # The graph holds an object the journal cannot
                    # revert; delta reset is off for good on this
                    # executor (full restores still work).
                    self.delta_reset = False
                    self.reset_stats["delta_fallbacks"] += 1
                    reuse = False
        if primary:
            self.reset_stats["delta" if delta_used else "restore"] += 1
        keep = False
        try:
            kernel = sim.kernel
            slot = sim.image.runtime_hooks.get(FDIR_SLOT_HOOK)
            if slot is None or not isinstance(slot.payload, CampaignPayload):
                raise SnapshotError("restored image carries no campaign payload slot")
            payload = slot.payload
            if entry is not None:
                payload.arm_planned(entry)
            else:
                payload.arm(spec)
            if prof:
                t1 = time.perf_counter()
                self.phase_times["bringup"] += t1 - t0
                t0 = t1
            crashed = hung = False
            try:
                sim.run_until((self.frames + 1) * kernel.major_frame_us)
            except SimulatorCrash:
                crashed = True
            except SimulatorHang:
                hung = True
            # The run phase is over; the completed test's record and the
            # snapshot recycle must not race a late watchdog SIGALRM.
            if self.timeout_s:
                _disarm_watchdog()
            if prof:
                t1 = time.perf_counter()
                self.phase_times["run"] += t1 - t0
                t0 = t1
            record = self._build_record(
                spec, sim, kernel, payload, crashed, hung, started, entry
            )
            if prof:
                t1 = time.perf_counter()
                self.phase_times["record"] += t1 - t0
                t0 = t1
            # Crashed/hung simulators are never trusted for in-place
            # reuse: the next test pays a full restore.
            if reuse and not crashed and not hung:
                keep = self._try_delta_reset(sim)
                if prof:
                    self.phase_times["reset"] += time.perf_counter() - t0
            return record
        finally:
            # Pooled buffers must come back on every exit path — a
            # raising _build_record (or the watchdog, or an injected
            # recycle fault) must not leak the restored simulator's
            # memory.  A kept simulator owns its buffers until the next
            # test takes it over.
            try:
                failpoints.fire("executor.recycle")
            finally:
                if keep:
                    self._live = sim
                    self._live_key = key
                else:
                    sim.disarm_delta()
                    snapshot.recycle(sim)

    def _try_delta_reset(self, sim) -> bool:  # noqa: ANN001
        """Bottom of a clean run: revert in place for the next test."""
        try:
            sim.reset()
            return True
        except DeltaResetError:
            # Journal overflow or a baseline destroyed mid-run (in-test
            # cold reset): drop this simulator; the next test restores.
            self.reset_stats["delta_fallbacks"] += 1
            return False

    def _verify_against_fresh(
        self,
        spec: TestCallSpec,
        record: TestRecord,
        snapshot: SimSnapshot,
        key: tuple,
    ) -> None:
        """Re-run ``spec`` from a fresh restore and require identity."""
        reference = self._run_on_snapshot(
            spec, time.perf_counter(), snapshot, key, primary=False
        )
        primary_dict = record.to_dict()
        reference_dict = reference.to_dict()
        for fields in (primary_dict, reference_dict):
            fields.pop("wall_time_s", None)  # the only nondeterministic field
        if primary_dict != reference_dict:
            diverging = next(
                name
                for name in primary_dict
                if primary_dict[name] != reference_dict.get(name)
            )
            raise ResetVerifyError(spec.test_id, diverging)
        self.reset_stats["verified"] += 1

    def _verify_against_unplanned(self, entry: PlanEntry, record: TestRecord) -> None:
        """Re-run ``entry``'s spec via the uncompiled path; require identity."""
        started = time.perf_counter()
        if self.warm_boot:
            key = self._snapshot_key()
            snapshot = self.snapshot_cache.get_or_build(key, self._build_snapshot)
            reference = self._run_on_snapshot(
                entry.spec, started, snapshot, key, primary=False
            )
        else:
            reference = self._run_cold(entry.spec, started)
            self.reset_stats["cold"] -= 1  # the audit is not a bring-up
        planned_dict = record.to_dict()
        reference_dict = reference.to_dict()
        for fields in (planned_dict, reference_dict):
            fields.pop("wall_time_s", None)  # the only nondeterministic field
        if planned_dict != reference_dict:
            diverging = next(
                name
                for name in planned_dict
                if planned_dict[name] != reference_dict.get(name)
            )
            raise PlanVerifyError(entry.test_id, diverging)
        self.reset_stats["plan_verified"] += 1

    def _run_cold(
        self, spec: TestCallSpec, started: float, entry: PlanEntry | None = None
    ) -> TestRecord:
        self.reset_stats["cold"] += 1
        prof = self.profile
        t0 = time.perf_counter() if prof else 0.0
        payload = self._make_payload()
        sim = self.system_factory(
            fdir_payload=payload, kernel_version=self.kernel_version
        )
        kernel = sim.boot()
        crashed = hung = False
        try:
            sim.run_until(kernel.major_frame_us - 1)  # settle frame
            if prof:
                t1 = time.perf_counter()
                self.phase_times["bringup"] += t1 - t0
                t0 = t1
            if entry is not None:
                payload.arm_planned(entry)
            else:
                payload.arm(spec)
            sim.run_until((self.frames + 1) * kernel.major_frame_us)
        except SimulatorCrash:
            crashed = True
        except SimulatorHang:
            hung = True
        if self.timeout_s:
            _disarm_watchdog()
        if prof:
            t1 = time.perf_counter()
            self.phase_times["run"] += t1 - t0
            t0 = t1
        record = self._build_record(
            spec, sim, kernel, payload, crashed, hung, started, entry
        )
        if prof:
            self.phase_times["record"] += time.perf_counter() - t0
        return record

    def _watchdog_record(self, spec: TestCallSpec, started: float) -> TestRecord:
        """A sim-hung-style record for a run the watchdog had to kill."""
        return TestRecord(
            test_id=spec.test_id,
            function=spec.function,
            category=spec.category,
            arg_labels=spec.arg_labels(),
            sim_hung=True,
            watchdog_expired=True,
            kernel_version=self.kernel_version,
            frames=self.frames,
            wall_time_s=time.perf_counter() - started,
        )

    def _build_record(
        self,
        spec: TestCallSpec,
        sim,  # noqa: ANN001
        kernel,  # noqa: ANN001
        payload: CampaignPayload,
        crashed: bool,
        hung: bool,
        started: float,
        entry: PlanEntry | None = None,
    ) -> TestRecord:
        if entry is not None:
            # The static half of the record was compiled with the plan.
            return TestRecord(
                invocations=payload.invocations,
                sim_crashed=crashed,
                sim_hung=hung,
                kernel_halted=kernel.is_halted(),
                halt_reason=kernel.halt_reason or "",
                resets=[(r.kind, r.source) for r in kernel.reset_log],
                hm_events=[
                    (rec.event.name, rec.partition_id, rec.detail)
                    for rec in kernel.hm.records
                ],
                overruns=len(kernel.sched.overruns),
                test_partition_state=(
                    kernel.partitions[0].state.value if 0 in kernel.partitions else ""
                ),
                console_tail=sim.machine.uart.lines()[-CONSOLE_TAIL:],
                kernel_version=self.kernel_version,
                frames=self.frames,
                wall_time_s=time.perf_counter() - started,
                **entry.record_base,
            )
        resolved = (
            payload.resolved
            if payload.resolved is not None
            else spec.resolve_args(self.layout)
        )
        return TestRecord(
            test_id=spec.test_id,
            function=spec.function,
            category=spec.category,
            arg_labels=spec.arg_labels(),
            resolved_args=resolved,
            invocations=payload.invocations,
            sim_crashed=crashed,
            sim_hung=hung,
            kernel_halted=kernel.is_halted(),
            halt_reason=kernel.halt_reason or "",
            resets=[(r.kind, r.source) for r in kernel.reset_log],
            hm_events=[
                (rec.event.name, rec.partition_id, rec.detail)
                for rec in kernel.hm.records
            ],
            overruns=len(kernel.sched.overruns),
            test_partition_state=(
                kernel.partitions[0].state.value if 0 in kernel.partitions else ""
            ),
            console_tail=sim.machine.uart.lines()[-CONSOLE_TAIL:],
            kernel_version=self.kernel_version,
            frames=self.frames,
            wall_time_s=time.perf_counter() - started,
        )


def worker_killed_record(
    spec: TestCallSpec,
    kernel_version: str,
    frames: int,
    attempts: int = 1,
    arbitrated: bool = False,
    host_context: dict | None = None,
) -> TestRecord:
    """Parent-side record for a spec whose run killed its worker.

    The worker is dead, so nothing was observed beyond the kill itself;
    the supervisor logs the spec as a first-class ``worker_killed``
    outcome (the process-level analogue of the paper's simulator-crash
    failure mode) and the campaign carries on.  ``attempts`` /
    ``arbitrated`` carry the verdict-arbitration provenance and
    ``host_context`` the pool shape the kills were observed under, so
    triage can separate kernel-caused deaths from host-load artefacts.
    """
    return TestRecord(
        test_id=spec.test_id,
        function=spec.function,
        category=spec.category,
        arg_labels=spec.arg_labels(),
        worker_killed=True,
        kernel_version=kernel_version,
        frames=frames,
        attempts=attempts,
        arbitrated=arbitrated,
        host_context=host_context,
    )


# -- process-pool entry points ---------------------------------------------

#: Per-worker executor installed by :func:`_init_worker`.
_WORKER: TestExecutor | None = None
#: Results relay (a SimpleQueue): workers announce each shard on
#: arrival and stream finished records back in batches (see
#: ``_RELAY_BATCH_SIZE``), so the parent can checkpoint as they arrive
#: and, when a worker dies, narrow the killer to the announced shard's
#: specs without records.  SimpleQueue puts are synchronous (no feeder
#: thread), so every message put before a kill survives it.
_RELAY = None
#: Records accumulated per relay message.  One put per record cost a
#: pickle + pipe syscall + parent wakeup per test — on a single-CPU
#: host that dispatch overhead made the parallel path slower than
#: serial (BENCH speedup_over_serial_w1: 0.48).  Batching amortises it
#: ~32x; the worst case a worker kill can lose is one unflushed batch,
#: and those specs are simply re-probed (they are suspects precisely
#: because no record arrived).
_RELAY_BATCH_SIZE = 32
#: Spec table regenerated from the campaign's SuiteRecipe — the wire
#: format for a shard is a list of indices into this table, not pickled
#: spec dicts (see :mod:`repro.fault.wire`).
_SPEC_TABLE: list[TestCallSpec] | None = None
#: Compiled plan over the spec table (same order, same indices), or
#: None when the campaign runs uncompiled.
_PLAN: CompiledPlan | None = None
#: Whether shards run as batched same-hypercall groups.
_BATCH: bool = True
#: Reset-stats counts already relayed to the parent (per-shard deltas
#: are sent, so pool respawns and multi-shard workers both sum cleanly).
_STATS_SENT: dict[str, int] = {}
#: Phase seconds already relayed to the parent (same delta scheme).
_PHASES_SENT: dict[str, float] = {}


def _init_worker(
    kernel_version: str,
    frames: int,
    warm_boot: bool,
    timeout_s: float | None = None,
    relay=None,  # noqa: ANN001 - mp.SimpleQueue proxy
    recipe=None,  # noqa: ANN001 - wire.SuiteRecipe
    delta_reset: bool = True,
    journal_budget: int | None = DEFAULT_JOURNAL_BUDGET,
    verify_reset: bool = False,
    compiled_plan: bool = True,
    batch_hypercalls: bool = True,
    verify_plan: bool = False,
    profile: bool = False,
) -> None:
    global _WORKER, _RELAY, _SPEC_TABLE, _PLAN, _BATCH, _STATS_SENT, _PHASES_SENT
    failpoints.mark_worker_process()
    _WORKER = TestExecutor(
        kernel_version=kernel_version,
        frames=frames,
        warm_boot=warm_boot,
        timeout_s=timeout_s,
        delta_reset=delta_reset,
        journal_budget=journal_budget,
        verify_reset=verify_reset,
        verify_plan=verify_plan,
        profile=profile,
    )
    _RELAY = relay
    _STATS_SENT = {}
    _PHASES_SENT = {}
    _PLAN = None
    _BATCH = batch_hypercalls
    if recipe is not None:
        from repro.fault.wire import build_spec_table

        _SPEC_TABLE = build_spec_table(recipe)
        if compiled_plan:
            # Derived, not shipped: the recipe is the wire format, and
            # compilation is pure in it, so both sides hold the same
            # plan (table indices double as plan-entry indices).
            _PLAN = _WORKER.compile_suite(_SPEC_TABLE)
    _WORKER.prepare()


def run_shard_payload(shard: tuple[int, list[int]]) -> int:
    """Pool worker: run one shard on this process's persistent executor.

    ``shard`` is ``(shard_no, indices)`` — indices into the spec table
    both sides derived from the campaign's recipe.  The worker announces
    the shard on the relay, then runs each spec in order and streams
    records back in batches (compact
    :func:`~repro.fault.wire.encode_record` form, ``_RELAY_BATCH_SIZE``
    per message plus a final flush), amortising the per-message pickle
    and pipe syscall that made one-record-per-put dispatch slower than
    serial.  A worker death loses at most the unflushed tail of a batch;
    those specs land in the suspect set (no record arrived) and the
    probe pool re-runs them in order, so killer attribution still
    converges on the first spec that actually kills.  Under a compiled
    plan the shard executes as batched same-hypercall groups, and the
    kill-injection gate still fires between tests, so supervision
    semantics are unchanged.  Returns the number of specs run (records
    travel on the relay, not the future).
    """
    assert _WORKER is not None, "pool started without _init_worker"
    assert _SPEC_TABLE is not None, "pool started without a suite recipe"
    from repro.fault.plan import group_consecutive
    from repro.fault.wire import encode_record

    shard_no, indices = shard
    if _RELAY is not None:
        _RELAY.put(("shard", shard_no))

    pending: list[dict] = []

    def relay_record(record: TestRecord) -> None:
        if _RELAY is not None:
            pending.append(encode_record(record))
            if len(pending) >= _RELAY_BATCH_SIZE:
                _RELAY.put(("records", pending[:]))
                pending.clear()

    def flush_records() -> None:
        if _RELAY is not None and pending:
            _RELAY.put(("records", pending[:]))
            pending.clear()

    if _PLAN is not None:
        entries = [_PLAN.entries[index] for index in indices]

        def gate(entry: PlanEntry) -> None:
            if _kill_injected(entry.test_id):
                os._exit(17)  # fault injection: die like a harness-killing test

        def emit(entry: PlanEntry, record: TestRecord) -> None:
            relay_record(record)

        if _BATCH:
            for group in group_consecutive(entries):
                _WORKER.run_group(group, emit=emit, gate=gate)
        else:
            for entry in entries:
                gate(entry)
                relay_record(_WORKER.run_planned(entry))
        count = len(entries)
    else:
        specs = [_SPEC_TABLE[index] for index in indices]
        for spec in specs:
            if _kill_injected(spec.test_id):
                os._exit(17)  # fault injection: die like a harness-killing test
            relay_record(_WORKER.run(spec))
        count = len(specs)
    flush_records()
    if _RELAY is not None:
        delta = {
            name: count_ - _STATS_SENT.get(name, 0)
            for name, count_ in _WORKER.reset_stats.items()
            if count_ != _STATS_SENT.get(name, 0)
        }
        if delta:
            _STATS_SENT.update(_WORKER.reset_stats)
            _RELAY.put(("stats", delta))
        if _WORKER.profile:
            phases = {
                name: seconds - _PHASES_SENT.get(name, 0.0)
                for name, seconds in _WORKER.phase_times.items()
                if seconds != _PHASES_SENT.get(name, 0.0)
            }
            if phases:
                _PHASES_SENT.update(_WORKER.phase_times)
                _RELAY.put(("phases", phases))
    return count
