"""Test execution: pack, boot, run, observe (paper steps 3-5).

For each test case a *fresh* TSP system is packed: the FDIR test
partition carries the fault placeholder, which stages the layout
buffers, invokes the hypercall with the resolved dataset once per major
frame, and records whether/what it returned.  The executor then runs
the simulator for a fixed number of major frames, catching the two
simulator-level failures, and distils everything the paper logs into a
:class:`~repro.fault.testlog.TestRecord`.

Two isolation modes exist:

- in-process (default): fast, exact; a simulator crash is an exception,
  not a process death, so no isolation is required for correctness;
- subprocess: one OS process per test, faithful to the paper's
  one-TSIM-per-test shell scripts and used by the parallel campaign
  runner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.fault.mutant import TestCallSpec, TestPartitionLayout, default_layout
from repro.fault.testlog import Invocation, TestRecord
from repro.testbed import build_system
from repro.tsim.simulator import SimulatorCrash, SimulatorHang
from repro.xm.errors import NoReturnFromHypercall
from repro.xm.vulns import VULNERABLE_VERSION

#: Major frames per test run ("a selected number of cyclic schedules").
DEFAULT_FRAMES = 2
#: Console lines kept in the record.
CONSOLE_TAIL = 8


@dataclass(frozen=True)
class ExecutionResult:
    """A record plus the executor inputs that produced it."""

    record: TestRecord
    spec: TestCallSpec
    kernel_version: str


class TestExecutor:
    """Runs test-call specs on fresh EagleEye systems."""

    __test__ = False  # keep pytest from collecting this library class

    def __init__(
        self,
        kernel_version: str = VULNERABLE_VERSION,
        frames: int = DEFAULT_FRAMES,
        layout: TestPartitionLayout | None = None,
        system_factory=None,
    ) -> None:
        self.kernel_version = kernel_version
        self.frames = frames
        self.layout = layout if layout is not None else default_layout()
        #: Builds (payload, version) -> Simulator; defaults to EagleEye.
        #: Swapping it retargets the whole campaign to another testbed
        #: (e.g. repro.testbed.dummy.build_dummy_system).
        self.system_factory = system_factory if system_factory is not None else build_system

    def run(self, spec: TestCallSpec) -> TestRecord:
        """Execute one test case and log the outcome."""
        started = time.perf_counter()
        layout = self.layout
        invocations: list[Invocation] = []
        staged_epoch = {"epoch": -1}

        def payload(ctx, xm) -> None:  # noqa: ANN001 - FdirPayload signature
            from repro.fault.stateful_oracle import capture_state

            if staged_epoch["epoch"] != ctx.kernel.boot_epoch:
                for address, data in layout.staging_writes():
                    xm.write_bytes(address, data)
                staged_epoch["epoch"] = ctx.kernel.boot_epoch
            args = spec.resolve_args(layout)
            state = capture_state(ctx.kernel)
            try:
                code = xm.call(spec.function, *args)
            except NoReturnFromHypercall as exc:
                invocations.append(
                    Invocation(returned=False, note=str(exc), state=state)
                )
                raise
            invocations.append(Invocation(returned=True, rc=code, state=state))

        sim = self.system_factory(
            fdir_payload=payload, kernel_version=self.kernel_version
        )
        kernel = sim.boot()
        crashed = hung = False
        try:
            sim.run_major_frames(self.frames)
        except SimulatorCrash:
            crashed = True
        except SimulatorHang:
            hung = True

        record = TestRecord(
            test_id=spec.test_id,
            function=spec.function,
            category=spec.category,
            arg_labels=spec.arg_labels(),
            resolved_args=spec.resolve_args(layout),
            invocations=invocations,
            sim_crashed=crashed,
            sim_hung=hung,
            kernel_halted=kernel.is_halted(),
            halt_reason=kernel.halt_reason or "",
            resets=[(r.kind, r.source) for r in kernel.reset_log],
            hm_events=[
                (rec.event.name, rec.partition_id, rec.detail)
                for rec in kernel.hm.records
            ],
            overruns=len(kernel.sched.overruns),
            test_partition_state=(
                kernel.partitions[0].state.value if 0 in kernel.partitions else ""
            ),
            console_tail=sim.machine.uart.lines()[-CONSOLE_TAIL:],
            kernel_version=self.kernel_version,
            frames=self.frames,
            wall_time_s=time.perf_counter() - started,
        )
        return record


def run_spec_dict(payload: tuple[dict, str, int]) -> dict:
    """Module-level worker for process pools (picklable in/out).

    Takes ``(spec_as_dict, kernel_version, frames)`` and returns the
    record as a dict.
    """
    from repro.fault.mutant import ArgSpec

    spec_dict, version, frames = payload
    spec = TestCallSpec(
        test_id=spec_dict["test_id"],
        function=spec_dict["function"],
        category=spec_dict["category"],
        args=tuple(ArgSpec(**arg) for arg in spec_dict["args"]),
    )
    executor = TestExecutor(kernel_version=version, frames=frames)
    return executor.run(spec).to_dict()


def spec_to_dict(spec: TestCallSpec) -> dict:
    """Picklable plain-dict form of a spec."""
    return {
        "test_id": spec.test_id,
        "function": spec.function,
        "category": spec.category,
        "args": [
            {
                "param": a.param,
                "label": a.label,
                "value": a.value,
                "symbol": a.symbol,
            }
            for a in spec.args
        ],
    }
