"""Per-test logging (the paper's Log Analysis inputs, §III-C).

During each test execution the campaign logs exactly what the paper
lists: return codes, exception handlers (here: HM events and simulator
exceptions), partition and kernel statuses, and the fault monitor's
actions.  A :class:`TestRecord` is the machine-readable unit; a
:class:`CampaignLog` persists them as JSONL for later analysis.  The
dict codec itself lives in :mod:`repro.fault.wire`, shared with the
process-pool relay so the two serialisation paths cannot drift.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.fault import failpoints

#: JSONL trailer key for campaign-level execution stats: a line of the
#: form ``{"__campaign_stats__": {...}}`` appended after the records.
#: Record parsing skips it (it has no ``test_id``), so logs with and
#: without a trailer load interchangeably; the last trailer wins when a
#: resumed stream appended more than one.
STATS_KEY = "__campaign_stats__"


def atomic_write_text(
    path: Path, text: str, failpoint: str | None = None
) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    ``mkstemp`` creates the temp file 0600; the file is re-permissioned
    to honor the process umask before the rename, so the published
    artefact is readable by other users/CI stages sharing the path —
    the rename must not narrow permissions the direct-write path would
    have granted.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        if failpoint is not None:
            failpoints.fire(failpoint)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class Invocation:
    """Outcome of one invocation of the test call (once per major frame).

    ``state`` is the optional pre-call system snapshot used by the
    state-aware oracle (see :mod:`repro.fault.stateful_oracle`).
    """

    returned: bool
    rc: int | None = None
    note: str = ""
    state: dict | None = None


@dataclass
class TestRecord:
    """Everything logged for one executed test case."""

    __test__ = False  # keep pytest from collecting this library class

    test_id: str
    function: str
    category: str
    arg_labels: tuple[str, ...] = ()
    resolved_args: tuple[int, ...] = ()
    invocations: list[Invocation] = field(default_factory=list)
    sim_crashed: bool = False
    sim_hung: bool = False
    kernel_halted: bool = False
    halt_reason: str = ""
    resets: list[tuple[str, str]] = field(default_factory=list)
    hm_events: list[tuple[str, int, str]] = field(default_factory=list)
    overruns: int = 0
    test_partition_state: str = ""
    console_tail: list[str] = field(default_factory=list)
    kernel_version: str = ""
    frames: int = 0
    wall_time_s: float = 0.0
    #: The test took its worker process down with it (the process-level
    #: analogue of the paper's simulator-crash failure mode); built by
    #: the campaign supervisor, not by an executor.
    worker_killed: bool = False
    #: The run exceeded the per-test wall-clock watchdog and was aborted.
    watchdog_expired: bool = False
    #: Runs this verdict consumed (see resilience.VerdictArbiter); 1
    #: means the first observation was accepted without arbitration.
    attempts: int = 1
    #: The verdict went through retry-with-quorum arbitration (the
    #: record consumed more than one run before being issued).
    arbitrated: bool = False
    #: The spec was skipped as a known killer (resilience.Quarantine);
    #: the worker_killed verdict is inherited, not freshly observed.
    quarantined: bool = False
    #: Host-side execution context for post-hoc triage of process-level
    #: verdicts (process count, shard size, attempt number) — separates
    #: kernel-caused deaths from host-load artefacts.  None on records
    #: whose verdict never involved the pool supervisor.
    host_context: dict | None = None

    @property
    def invoked(self) -> bool:
        """Whether the fault placeholder ran at least once."""
        return bool(self.invocations)

    @property
    def first_rc(self) -> int | None:
        """Return code of the first invocation, if it returned."""
        for inv in self.invocations:
            if inv.returned:
                return inv.rc
            return None
        return None

    @property
    def never_returned(self) -> bool:
        """Whether the first invocation failed to return."""
        return bool(self.invocations) and not self.invocations[0].returned

    def hm_event_names(self) -> set[str]:
        """Distinct HM event codes observed."""
        return {name for (name, _pid, _detail) in self.hm_events}

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :func:`repro.fault.wire.record_to_dict`)."""
        from repro.fault import wire

        return wire.record_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TestRecord":
        """Inverse of :meth:`to_dict`.

        Keys this version does not know (a log written by newer code)
        are dropped with a warning rather than crashing the load, so
        old analysers keep working on forward-compatible logs (see
        :func:`repro.fault.wire.record_from_dict`).
        """
        from repro.fault import wire

        return wire.record_from_dict(data)


def _read_jsonl(path: Path) -> list[dict]:
    """Parse a JSONL file, tolerating a truncated final line.

    A crash mid-append can leave a half-written last record; readers
    drop it (with a warning) instead of refusing to load — resume must
    work in exactly the crash scenario the streaming log exists for,
    and the stream's dedup-by-id append rewrites the lost record.
    Corruption anywhere *before* the last line is still an error.
    """
    with path.open("r", encoding="utf-8") as fh:
        lines = [line for line in (raw.strip() for raw in fh) if line]
    out: list[dict] = []
    for index, line in enumerate(lines):
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                warnings.warn(
                    f"{path}: dropping truncated final record "
                    "(interrupted mid-append?)",
                    stacklevel=3,
                )
                break
            raise
    return out


class CampaignLog:
    """An append-only collection of test records with JSONL persistence.

    ``execution_stats`` carries the run-level supervision counters
    (reset modes, pool respawns, arbitration retries) alongside the
    records: :meth:`save` persists them as a tagged trailer line and
    :meth:`load` rehydrates them, so a log analysed offline reports
    exactly what the live run reported.
    """

    def __init__(self, records: Iterable[TestRecord] = ()) -> None:
        self.records: list[TestRecord] = list(records)
        #: Supervision counters of the run that wrote this log; None
        #: when the log predates the trailer or never had a live run.
        self.execution_stats: dict | None = None

    def append(self, record: TestRecord) -> None:
        """Add one record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TestRecord]:
        return iter(self.records)

    def by_function(self, function: str) -> list[TestRecord]:
        """Records of one hypercall."""
        return [r for r in self.records if r.function == function]

    def by_category(self, category: str) -> list[TestRecord]:
        """Records of one Table III category."""
        return [r for r in self.records if r.category == category]

    def save(self, path: str | Path) -> None:
        """Write JSONL atomically.

        The records go to a temporary file in the same directory which
        is then renamed over the target, so a crash mid-write can never
        truncate or corrupt an existing log.  ``execution_stats``, when
        present, is appended as a tagged trailer line after the records.
        """
        lines = [json.dumps(record.to_dict()) for record in self.records]
        if self.execution_stats is not None:
            lines.append(json.dumps({STATS_KEY: self.execution_stats}))
        text = "".join(line + "\n" for line in lines)
        atomic_write_text(Path(path), text, failpoint="testlog.replace")

    @classmethod
    def load(cls, path: str | Path) -> "CampaignLog":
        """Read JSONL (a truncated final line is dropped, see _read_jsonl).

        A stats trailer rehydrates ``execution_stats``; unknown record
        fields from a newer writer warn once per distinct field set,
        not once per record (see :func:`repro.fault.wire.dedup_unknown_fields`).
        """
        from repro.fault import wire

        log = cls()
        with wire.dedup_unknown_fields():
            for data in _read_jsonl(Path(path)):
                if STATS_KEY in data:
                    log.execution_stats = data[STATS_KEY]
                    continue
                log.append(TestRecord.from_dict(data))
        return log

    @classmethod
    def stream(
        cls, path: str | Path, flush_every: int = 1, fsync: bool = False
    ) -> "LogStream":
        """Open a crash-durable append stream (see :class:`LogStream`)."""
        return LogStream(path, flush_every=flush_every, fsync=fsync)


class LogStream:
    """Streaming checkpoint writer: every record hits disk as it arrives.

    Opened in append mode, so pointing it at a partial log continues
    that log; records whose test id is already on disk are skipped,
    which makes resuming into the same file idempotent.  By default
    each append is written and flushed immediately — an interrupted
    campaign loses at most the record being written, never a completed
    one.  ``flush_every=N`` relaxes the cadence to one flush per N
    appends (plus one on close) for hosts where the per-record
    ``flush()`` shows up next to very fast tests; the durability window
    then widens to at most N records.

    ``flush()`` hands the bytes to the OS but not to the platter: a
    *host* power loss (as opposed to a process crash) can still lose
    flushed records sitting in kernel buffers.  ``fsync=True`` follows
    every flush with ``os.fsync``, extending the durability claim to
    power loss at the cost of a disk round-trip per checkpoint (the
    price is measured in ``benchmarks/bench_durability.py``).
    """

    def __init__(
        self, path: str | Path, flush_every: int = 1, fsync: bool = False
    ) -> None:
        self.path = Path(path)
        #: Appends between flushes; 1 = checkpoint every record.
        self.flush_every = max(1, int(flush_every))
        #: Follow each flush with os.fsync (durable against power loss).
        self.fsync = bool(fsync)
        self._unflushed = 0
        #: Test ids already present on disk when the stream was opened
        #: (plus everything appended since); appends of these are no-ops.
        self.existing: set[str] = set()
        repair_newline = False
        if self.path.exists():
            # Scan byte-wise so a half-written tail (a crash mid-append)
            # can be truncated away — left in place, the next append
            # would concatenate onto it and corrupt a mid-file line.
            raw = self.path.read_bytes()
            raw_lines = raw.splitlines(keepends=True)
            offset = 0
            for index, raw_line in enumerate(raw_lines):
                stripped = raw_line.strip()
                if stripped:
                    try:
                        data = json.loads(stripped)
                    except json.JSONDecodeError:
                        if index == len(raw_lines) - 1:
                            warnings.warn(
                                f"{self.path}: dropping truncated final "
                                "record (interrupted mid-append?)",
                                stacklevel=3,
                            )
                            break
                        raise
                    # Stats trailers (and any other non-record line)
                    # carry no test id and never dedup an append.
                    if data.get("test_id") is not None:
                        self.existing.add(data["test_id"])
                offset += len(raw_line)
            if offset < len(raw):
                os.truncate(self.path, offset)
            elif raw and not raw.endswith(b"\n"):
                repair_newline = True
        self._fh = self.path.open("a", encoding="utf-8")
        if repair_newline:
            self._fh.write("\n")
            self._fh.flush()
        self.written = 0

    def append(self, record: TestRecord) -> None:
        """Checkpoint one record (write + flush, deduplicated by id)."""
        if record.test_id in self.existing:
            return
        line = json.dumps(record.to_dict()) + "\n"
        if failpoints.fire("testlog.append") == "short-write":
            # Cooperative power-loss model: persist only a prefix of
            # the line, then fail as if the host died mid-append — the
            # truncated tail exercises the repair path in __init__.
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            raise failpoints.ChaosError(
                "failpoint 'testlog.append' fired (injected short write)"
            )
        self._fh.write(line)
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self._flush()
            self._unflushed = 0
        self.existing.add(record.test_id)
        self.written += 1

    def append_stats(self, stats: dict) -> None:
        """Checkpoint the run's execution stats as a tagged trailer line.

        Not deduplicated: a resumed stream appends its own (merged)
        trailer after the one already in the file, and loaders keep the
        last.  The canonical end-of-run :meth:`CampaignLog.save`
        rewrite collapses the log back to records + one trailer.
        """
        self._fh.write(json.dumps({STATS_KEY: stats}) + "\n")
        self._flush()
        self._unflushed = 0

    def _flush(self) -> None:
        """Flush — and, with ``fsync=True``, sync — the stream to disk."""
        failpoints.fire("testlog.flush")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._flush()
            self._fh.close()

    def __enter__(self) -> "LogStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
