"""Per-test logging (the paper's Log Analysis inputs, §III-C).

During each test execution the campaign logs exactly what the paper
lists: return codes, exception handlers (here: HM events and simulator
exceptions), partition and kernel statuses, and the fault monitor's
actions.  A :class:`TestRecord` is the machine-readable unit; a
:class:`CampaignLog` persists them as JSONL for later analysis.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Invocation:
    """Outcome of one invocation of the test call (once per major frame).

    ``state`` is the optional pre-call system snapshot used by the
    state-aware oracle (see :mod:`repro.fault.stateful_oracle`).
    """

    returned: bool
    rc: int | None = None
    note: str = ""
    state: dict | None = None


@dataclass
class TestRecord:
    """Everything logged for one executed test case."""

    __test__ = False  # keep pytest from collecting this library class

    test_id: str
    function: str
    category: str
    arg_labels: tuple[str, ...] = ()
    resolved_args: tuple[int, ...] = ()
    invocations: list[Invocation] = field(default_factory=list)
    sim_crashed: bool = False
    sim_hung: bool = False
    kernel_halted: bool = False
    halt_reason: str = ""
    resets: list[tuple[str, str]] = field(default_factory=list)
    hm_events: list[tuple[str, int, str]] = field(default_factory=list)
    overruns: int = 0
    test_partition_state: str = ""
    console_tail: list[str] = field(default_factory=list)
    kernel_version: str = ""
    frames: int = 0
    wall_time_s: float = 0.0

    @property
    def invoked(self) -> bool:
        """Whether the fault placeholder ran at least once."""
        return bool(self.invocations)

    @property
    def first_rc(self) -> int | None:
        """Return code of the first invocation, if it returned."""
        for inv in self.invocations:
            if inv.returned:
                return inv.rc
            return None
        return None

    @property
    def never_returned(self) -> bool:
        """Whether the first invocation failed to return."""
        return bool(self.invocations) and not self.invocations[0].returned

    def hm_event_names(self) -> set[str]:
        """Distinct HM event codes observed."""
        return {name for (name, _pid, _detail) in self.hm_events}

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        data = asdict(self)
        data["arg_labels"] = list(self.arg_labels)
        data["resolved_args"] = list(self.resolved_args)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TestRecord":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        data["arg_labels"] = tuple(data.get("arg_labels", ()))
        data["resolved_args"] = tuple(data.get("resolved_args", ()))
        data["invocations"] = [
            Invocation(**inv) for inv in data.get("invocations", [])
        ]
        data["resets"] = [tuple(r) for r in data.get("resets", [])]
        data["hm_events"] = [tuple(e) for e in data.get("hm_events", [])]
        return cls(**data)


class CampaignLog:
    """An append-only collection of test records with JSONL persistence."""

    def __init__(self, records: Iterable[TestRecord] = ()) -> None:
        self.records: list[TestRecord] = list(records)

    def append(self, record: TestRecord) -> None:
        """Add one record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TestRecord]:
        return iter(self.records)

    def by_function(self, function: str) -> list[TestRecord]:
        """Records of one hypercall."""
        return [r for r in self.records if r.function == function]

    def by_category(self, category: str) -> list[TestRecord]:
        """Records of one Table III category."""
        return [r for r in self.records if r.category == category]

    def save(self, path: str | Path) -> None:
        """Write JSONL."""
        with Path(path).open("w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_dict()) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "CampaignLog":
        """Read JSONL."""
        log = cls()
        with Path(path).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    log.append(TestRecord.from_dict(json.loads(line)))
        return log
