"""The dry-run truth base (§VI future work).

The paper closes by proposing "a dry run by manually cross-checking
return codes against reference documentation … establishing a truth
base to which robustness testing results may be compared".  This module
produces that artefact mechanically:

- :func:`build_truthbase` walks every generated test case and records
  the oracle's documented expectation — a reviewable table a domain
  expert can audit *before* any test executes (the dry run);
- :func:`compare_to_truthbase` replays a finished campaign against the
  (possibly expert-amended) truth base, reporting every divergence
  between documented and observed behaviour.

The truth base serialises to JSONL so it can be versioned, diffed and
annotated independently of the toolset.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.fault.campaign import Campaign, CampaignResult
from repro.fault.oracle import Expectation
from repro.xm import rc


@dataclass(frozen=True)
class TruthEntry:
    """Documented expectation for one test case."""

    test_id: str
    function: str
    call: str
    allowed_rcs: tuple[int, ...]
    allow_nonneg: bool
    allow_no_return: bool
    invalid_params: tuple[str, ...]
    note: str = ""

    @classmethod
    def from_expectation(
        cls, test_id: str, function: str, call: str, expectation: Expectation
    ) -> "TruthEntry":
        """Freeze one oracle verdict."""
        return cls(
            test_id=test_id,
            function=function,
            call=call,
            allowed_rcs=tuple(sorted(expectation.allowed)),
            allow_nonneg=expectation.allow_nonneg,
            allow_no_return=expectation.allow_no_return,
            invalid_params=expectation.invalid_params,
            note=expectation.note,
        )

    def describe_expected(self) -> str:
        """Human-readable expected behaviour."""
        parts = [rc.name_of(code) for code in self.allowed_rcs]
        if self.allow_nonneg:
            parts.append("non-negative result")
        if self.allow_no_return:
            parts.append("no return")
        return " | ".join(parts) if parts else "(nothing)"

    def to_dict(self) -> dict:
        """JSON form."""
        return {
            "test_id": self.test_id,
            "function": self.function,
            "call": self.call,
            "allowed_rcs": list(self.allowed_rcs),
            "allow_nonneg": self.allow_nonneg,
            "allow_no_return": self.allow_no_return,
            "invalid_params": list(self.invalid_params),
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TruthEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            test_id=data["test_id"],
            function=data["function"],
            call=data["call"],
            allowed_rcs=tuple(data["allowed_rcs"]),
            allow_nonneg=data["allow_nonneg"],
            allow_no_return=data["allow_no_return"],
            invalid_params=tuple(data["invalid_params"]),
            note=data.get("note", ""),
        )


@dataclass
class TruthBase:
    """The reviewable dry-run table."""

    kernel_version: str
    entries: dict[str, TruthEntry] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, test_id: str) -> TruthEntry | None:
        """Entry by test id."""
        return self.entries.get(test_id)

    def save(self, path: str | Path) -> None:
        """Write JSONL (first line is a header record)."""
        with Path(path).open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kernel_version": self.kernel_version}) + "\n")
            for entry in self.entries.values():
                fh.write(json.dumps(entry.to_dict()) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "TruthBase":
        """Read JSONL."""
        with Path(path).open("r", encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            base = cls(kernel_version=header["kernel_version"])
            for line in fh:
                line = line.strip()
                if line:
                    entry = TruthEntry.from_dict(json.loads(line))
                    base.entries[entry.test_id] = entry
        return base

    def expected_error_share(self) -> float:
        """Fraction of tests whose documented outcome is an error code."""
        if not self.entries:
            return 0.0
        errors = sum(
            1
            for entry in self.entries.values()
            if entry.allowed_rcs
            and all(code < 0 for code in entry.allowed_rcs)
            and not entry.allow_nonneg
            and not entry.allow_no_return
        )
        return errors / len(self.entries)


def build_truthbase(campaign: Campaign) -> TruthBase:
    """The dry run: record every documented expectation, execute nothing."""
    from repro.fault.oracle import ReferenceOracle

    oracle = ReferenceOracle(campaign.kernel_version, campaign.oracle_context)
    base = TruthBase(kernel_version=campaign.kernel_version)
    for spec in campaign.iter_specs():
        expectation = oracle.expect(spec)
        base.entries[spec.test_id] = TruthEntry.from_expectation(
            spec.test_id, spec.function, spec.describe(), expectation
        )
    return base


@dataclass(frozen=True)
class TruthDivergence:
    """One observed outcome that contradicts the truth base."""

    test_id: str
    call: str
    expected: str
    observed: str


def compare_to_truthbase(
    result: CampaignResult, base: TruthBase
) -> list[TruthDivergence]:
    """Replay a campaign's observations against the truth base."""
    divergences: list[TruthDivergence] = []
    for record in result.log:
        entry = base.lookup(record.test_id)
        if entry is None:
            continue
        observed = _observed_outcome(record)
        if _consistent(entry, record):
            continue
        divergences.append(
            TruthDivergence(
                test_id=record.test_id,
                call=entry.call,
                expected=entry.describe_expected(),
                observed=observed,
            )
        )
    return divergences


def _observed_outcome(record) -> str:  # noqa: ANN001
    if record.sim_crashed:
        return "simulator crash"
    if record.sim_hung:
        return "hang"
    if record.kernel_halted:
        return f"kernel halt ({record.halt_reason})"
    if record.never_returned:
        return "no return"
    code = record.first_rc
    if code is None:
        return "not invoked"
    return rc.name_of(code)


def _consistent(entry: TruthEntry, record) -> bool:  # noqa: ANN001
    if record.sim_crashed or record.sim_hung or record.kernel_halted:
        return False
    if record.never_returned:
        return entry.allow_no_return
    code = record.first_rc
    if code is None:
        return True  # never invoked: nothing to compare
    if code in entry.allowed_rcs:
        return True
    return entry.allow_nonneg and code >= 0
