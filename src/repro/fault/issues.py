"""Issue clustering: from failing test cases to reportable defects.

The paper reports *9 notable issues* out of 2662 tests, "some of which
share common robustness vulnerabilities" — i.e. failing test cases are
grouped into defects by human judgment.  This module encodes that
judgment as an explicit, reproducible rule.  Each failure kind defines
what distinguishes two defects:

================== =====================================================
failure kind        clustering key (besides hypercall + kind)
================== =====================================================
unexpected reset    the accepted invalid argument tuple — every invalid
                    value the kernel *acted on* is a distinct missing
                    validation (paper: reset(2), reset(16), reset(-1U))
kernel halt /       none — one defect per hypercall and mechanism
simulator crash     (paper: the 1 µs interval issue per clock)
silent / hindering  the blamed parameter (paper: the negative interval,
                    counted once across both clocks)
unhandled trap      the first invalid pointer parameter (paper: the
                    startAddr and endAddr cases, counted separately)
temporal violation  none
worker killed       none — one defect per hypercall (the process-level
                    analogue of a simulator crash, recorded by the
                    campaign supervisor)
================== =====================================================

Applied to the campaign this yields exactly the paper's 3 + 3 + 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fault.classify import Classification, FailureKind, Severity
from repro.fault.oracle import Expectation
from repro.fault.testlog import TestRecord
from repro.xm.vulns import KNOWN_VULNERABILITIES, Vulnerability


@dataclass
class Issue:
    """One clustered defect."""

    hypercall: str
    category: str
    kind: FailureKind
    detail_key: str
    severity: Severity
    description: str
    test_cases: list[str] = field(default_factory=list)
    example_args: tuple[str, ...] = ()
    matched_vulnerability: str | None = None

    @property
    def key(self) -> tuple[str, str, str]:
        """The clustering identity."""
        return (self.hypercall, self.kind.value, self.detail_key)

    @property
    def case_count(self) -> int:
        """Failing test cases folded into the issue."""
        return len(self.test_cases)


def _detail_key(
    record: TestRecord,
    classification: Classification,
    expectation: Expectation,
) -> str:
    kind = classification.kind
    if kind is FailureKind.UNEXPECTED_RESET:
        return "args=" + ",".join(record.arg_labels)
    if kind in (FailureKind.WRONG_SUCCESS, FailureKind.WRONG_ERROR):
        blamed = expectation.invalid_params[0] if expectation.invalid_params else "?"
        return f"param={blamed}"
    if kind in (FailureKind.UNHANDLED_TRAP, FailureKind.SPATIAL_VIOLATION):
        blamed = expectation.invalid_params[0] if expectation.invalid_params else "?"
        return f"param={blamed}"
    return ""


def _describe(record: TestRecord, classification: Classification, key: str) -> str:
    call = f"{record.function}({', '.join(record.arg_labels)})"
    return f"{call}: {classification.kind.value} — {classification.detail}"


def cluster_issues(
    classified: list[tuple[TestRecord, Expectation, Classification]],
) -> list[Issue]:
    """Group failing tests into issues, most severe first."""
    issues: dict[tuple[str, str, str], Issue] = {}
    severity_order = list(Severity)
    for record, expectation, classification in classified:
        if not classification.is_failure:
            continue
        key_detail = _detail_key(record, classification, expectation)
        key = (record.function, classification.kind.value, key_detail)
        issue = issues.get(key)
        if issue is None:
            issue = Issue(
                hypercall=record.function,
                category=record.category,
                kind=classification.kind,
                detail_key=key_detail,
                severity=classification.severity,
                description=_describe(record, classification, key_detail),
                example_args=record.arg_labels,
            )
            issues[key] = issue
        issue.test_cases.append(record.test_id)
        if severity_order.index(classification.severity) < severity_order.index(
            issue.severity
        ):
            issue.severity = classification.severity
            issue.description = _describe(record, classification, key_detail)
    result = sorted(
        issues.values(),
        key=lambda i: (severity_order.index(i.severity), i.hypercall, i.detail_key),
    )
    _match_known(result)
    return result


def _match_known(issues: list[Issue]) -> None:
    """Attach ground-truth vulnerability idents where they apply."""
    unclaimed: list[Vulnerability] = list(KNOWN_VULNERABILITIES)
    for issue in issues:
        for vuln in unclaimed:
            if vuln.hypercall != issue.hypercall:
                continue
            if _matches(issue, vuln):
                issue.matched_vulnerability = vuln.ident
                unclaimed.remove(vuln)
                break


def _matches(issue: Issue, vuln: Vulnerability) -> bool:
    kind = issue.kind
    if vuln.ident.startswith("XM-RS"):
        value = {"XM-RS-1": "2", "XM-RS-2": "16", "XM-RS-3": "MAX_U32"}[vuln.ident]
        return kind is FailureKind.UNEXPECTED_RESET and issue.detail_key == f"args={value}"
    if vuln.ident == "XM-ST-1":
        return kind is FailureKind.KERNEL_HALT
    if vuln.ident == "XM-ST-2":
        return kind is FailureKind.SIM_CRASH
    if vuln.ident == "XM-ST-3":
        return kind is FailureKind.WRONG_SUCCESS and issue.detail_key == "param=interval"
    if vuln.ident == "XM-MC-1":
        return kind is FailureKind.UNHANDLED_TRAP and issue.detail_key == "param=startAddr"
    if vuln.ident == "XM-MC-2":
        return kind is FailureKind.UNHANDLED_TRAP and issue.detail_key == "param=endAddr"
    if vuln.ident == "XM-MC-3":
        return kind is FailureKind.TEMPORAL_VIOLATION
    return False
