"""The state-aware oracle: §V's full logic model.

The static :class:`~repro.fault.oracle.ReferenceOracle` assumes a quiet
system, which is exactly the limitation §V describes: "the output of a
particular test call is context-dependent, heavily affected by the
state of the system when the test call is invoked … an automated oracle
… is only possible if it considers the state of the separation kernel
at that moment."

This module implements that proposal:

- the executor snapshots a small *state vector* at every invocation
  (:func:`capture_state`, stored on the
  :class:`~repro.fault.testlog.Invocation`);
- :class:`StatefulOracle` refines the static expectations of the
  state-dependent services (`XM_hm_seek`, `XM_trace_seek`,
  `XM_read_sampling_message`, `XM_hm_read`) using that snapshot;
- :func:`classify_stateful` evaluates each invocation against its own
  expectation.

The stress bench shows the payoff: the Pass→Silent divergences the
static oracle reports under HM-log pressure disappear — they were
oracle artefacts, not kernel defects.
"""

from __future__ import annotations

from repro.fault.classify import Classification, FailureKind, Severity, classify
from repro.fault.mutant import TestCallSpec
from repro.fault.oracle import Expectation, OracleContext, ReferenceOracle
from repro.fault.testlog import Invocation, TestRecord
from repro.xm import rc
from repro.xm.vulns import VULNERABLE_VERSION


#: str(stream_id) memo — capture_state runs once per invocation and the
#: handful of stream ids repeat for the life of the process.
_STREAM_KEYS: dict[int, str] = {}


def capture_state(kernel) -> dict:  # noqa: ANN001
    """Snapshot the state the contracts of stateful services depend on."""
    tm_chan = kernel.ipc.channels.get("CH_TM_AOCS")
    hm = kernel.hm
    hm_len = len(hm.records)
    trace_lens = {}
    trace_cursors = {}
    keys = _STREAM_KEYS
    for stream_id, stream in kernel.tracemgr.streams.items():
        key = keys.get(stream_id)
        if key is None:
            key = keys[stream_id] = str(stream_id)
        trace_lens[key] = len(stream.events)
        trace_cursors[key] = stream.cursor
    return {
        "hm_len": hm_len,
        "hm_cursor": hm.read_cursor,
        "hm_unread": hm_len - hm.read_cursor,
        "trace_lens": trace_lens,
        "trace_cursors": trace_cursors,
        "tm_message": int(tm_chan is not None and tm_chan.message is not None),
    }


class StatefulOracle(ReferenceOracle):
    """Expectations refined by a per-invocation state snapshot."""

    def expect_in_state(self, spec: TestCallSpec, state: dict | None) -> Expectation:
        """State-aware expectation; falls back to the static rule."""
        static = self.expect(spec)
        if not state:
            return static
        refiner = getattr(self, f"_s_{spec.function}", None)
        if refiner is None:
            return static
        return refiner(spec, state, static)

    # -- refinements ---------------------------------------------------------

    @staticmethod
    def _seek_valid(offset: int, whence: int, length: int, cursor: int) -> bool:
        if whence == 0:
            target = offset
        elif whence == 1:
            target = cursor + offset
        elif whence == 2:
            target = length + offset
        else:
            return False
        return 0 <= target <= length

    def _s_XM_hm_seek(self, spec, state, static) -> Expectation:  # noqa: ANN001
        offset = self._arg(spec, "offset").value or 0
        whence = self._arg(spec, "whence").value or 0
        if self._seek_valid(offset, whence, state["hm_len"], state["hm_cursor"]):
            return Expectation(allowed=frozenset({rc.XM_OK}), note="in range (state)")
        return Expectation(
            allowed=frozenset({rc.XM_INVALID_PARAM}),
            invalid_params=("offset",) if whence in (0, 1, 2) else ("whence",),
            note="out of range (state)",
        )

    def _s_XM_trace_seek(self, spec, state, static) -> Expectation:  # noqa: ANN001
        if static.invalid_params and "streamId" in static.invalid_params:
            return static
        stream_id = self._arg(spec, "streamId").value or 0
        offset = self._arg(spec, "offset").value or 0
        whence = self._arg(spec, "whence").value or 0
        length = state["trace_lens"].get(str(stream_id), 0)
        cursor = state["trace_cursors"].get(str(stream_id), 0)
        if self._seek_valid(offset, whence, length, cursor):
            return Expectation(allowed=frozenset({rc.XM_OK}), note="in range (state)")
        return Expectation(
            allowed=frozenset({rc.XM_INVALID_PARAM}),
            invalid_params=("offset",) if whence in (0, 1, 2) else ("whence",),
            note="out of range (state)",
        )

    def _s_XM_read_sampling_message(self, spec, state, static) -> Expectation:  # noqa: ANN001
        if not static.rc_acceptable(rc.XM_NO_ACTION):
            return static
        # With the channel state known, the empty/full ambiguity is gone.
        if state["tm_message"]:
            allowed = frozenset(code for code in static.allowed if code != rc.XM_NO_ACTION)
            return Expectation(
                allowed=allowed,
                allow_nonneg=static.allow_nonneg,
                invalid_params=static.invalid_params,
                note="message present (state)",
            )
        if static.invalid_params:
            # Empty channel: NO_ACTION precedes the parameter checks.
            return Expectation(
                allowed=frozenset({rc.XM_NO_ACTION}),
                invalid_params=static.invalid_params,
                note="empty channel (state)",
            )
        return static


def classify_stateful(
    record: TestRecord,
    spec: TestCallSpec,
    oracle: StatefulOracle,
) -> Classification:
    """Classify each invocation against its own state's expectation."""
    severities = list(Severity)
    worst: Classification | None = None
    invocations = record.invocations or [Invocation(returned=False, note="not invoked")]
    for invocation in invocations:
        expectation = oracle.expect_in_state(spec, getattr(invocation, "state", None))
        single = TestRecord(
            test_id=record.test_id,
            function=record.function,
            category=record.category,
            arg_labels=record.arg_labels,
            resolved_args=record.resolved_args,
            invocations=[invocation] if record.invocations else [],
            sim_crashed=record.sim_crashed,
            sim_hung=record.sim_hung,
            kernel_halted=record.kernel_halted,
            halt_reason=record.halt_reason,
            resets=record.resets,
            hm_events=record.hm_events,
            overruns=record.overruns,
        )
        classification = classify(single, expectation)
        if worst is None or severities.index(classification.severity) < severities.index(
            worst.severity
        ):
            worst = classification
    assert worst is not None
    return worst


def stateful_stress_comparison(
    state,  # noqa: ANN001 - PhantomState
    functions: tuple[str, ...],
    kernel_version: str = VULNERABLE_VERSION,
    context: OracleContext | None = None,
):
    """Re-run the stress comparison with the state-aware oracle.

    Returns ``(static_sensitivities, stateful_sensitivities)`` so the
    caller can see how many divergences the full logic model resolves.
    """
    from repro.fault.campaign import Campaign
    from repro.fault.stress import StressExecutor

    campaign = Campaign(functions=functions, kernel_version=kernel_version)
    nominal = campaign.run()
    executor = StressExecutor(state, kernel_version=kernel_version)
    stressed = [executor.run(spec) for spec in campaign.iter_specs()]

    static_oracle = ReferenceOracle(kernel_version, context or campaign.oracle_context)
    stateful = StatefulOracle(kernel_version, context or campaign.oracle_context)
    spec_index = {spec.test_id: spec for spec in campaign.iter_specs()}
    nominal_cls = {
        record.test_id: classification
        for record, _expectation, classification in nominal.classified
    }

    static_div = []
    stateful_div = []
    for record in stressed:
        spec = spec_index[record.test_id]
        baseline = nominal_cls[record.test_id]
        static_cls = classify(record, static_oracle.expect(spec))
        stateful_cls = classify_stateful(record, spec, stateful)
        if (static_cls.severity, static_cls.kind) != (baseline.severity, baseline.kind):
            static_div.append((record.test_id, static_cls))
        if stateful_cls.is_failure and stateful_cls.kind in (
            FailureKind.WRONG_SUCCESS,
            FailureKind.WRONG_ERROR,
        ):
            stateful_div.append((record.test_id, stateful_cls))
    return static_div, stateful_div
