"""Dictionary feedback: "values that uncovered issues in previous tests".

The paper's dictionaries are seeded from the testing literature *and*
from values that exposed problems in earlier campaigns (§III-A, §IV-B).
This module closes that loop mechanically:

- :func:`offending_values` extracts, from a finished campaign, which
  (dictionary, value) pairs participated in failing test cases and how
  often — the raw material for the next campaign's dictionaries;
- :func:`value_effectiveness` scores every dictionary entry by the
  failures it participated in (a vectorised param×value attribution);
- :func:`extend_dictionaries` folds offending literal values into a
  dictionary set, so a campaign against kernel N+1 inherits what
  kernel N taught.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fault.campaign import Campaign, CampaignResult
from repro.fault.dictionaries import DictionarySet, TestValue, TypeDictionary


@dataclass(frozen=True)
class OffendingValue:
    """One dictionary entry implicated in failures."""

    dictionary: str
    label: str
    failures: int
    tests: int

    @property
    def failure_rate(self) -> float:
        """Failures over appearances."""
        return self.failures / self.tests if self.tests else 0.0


def _param_dictionaries(result: CampaignResult) -> dict[str, list[str]]:
    """function -> per-parameter dictionary names."""
    out: dict[str, list[str]] = {}
    for fn in result.model.tested_functions():
        out[fn.name] = [p.dictionary_key for p in fn.params]
    return out


def value_effectiveness(result: CampaignResult) -> list[OffendingValue]:
    """Score every (dictionary, label) by participation in failures.

    Uses a vectorised two-pass tally: one pass builds the index of
    (dictionary, label) pairs, a NumPy pass accumulates appearance and
    failure counts.
    """
    dict_by_fn = _param_dictionaries(result)
    keys: dict[tuple[str, str], int] = {}
    rows: list[int] = []
    fails: list[bool] = []
    for record, _expectation, classification in result.classified:
        param_dicts = dict_by_fn.get(record.function)
        if param_dicts is None:
            continue
        failed = classification.is_failure
        for dictionary, label in zip(param_dicts, record.arg_labels):
            key = (dictionary, label)
            index = keys.setdefault(key, len(keys))
            rows.append(index)
            fails.append(failed)
    if not rows:
        return []
    row_arr = np.asarray(rows, dtype=np.int64)
    fail_arr = np.asarray(fails, dtype=np.int64)
    tests = np.bincount(row_arr, minlength=len(keys))
    failures = np.bincount(row_arr, weights=fail_arr, minlength=len(keys)).astype(
        np.int64
    )
    scored = [
        OffendingValue(
            dictionary=dictionary,
            label=label,
            failures=int(failures[index]),
            tests=int(tests[index]),
        )
        for (dictionary, label), index in keys.items()
    ]
    scored.sort(key=lambda v: (-v.failure_rate, -v.failures, v.dictionary, v.label))
    return scored


def offending_values(result: CampaignResult) -> list[OffendingValue]:
    """The subset of :func:`value_effectiveness` with at least one failure."""
    return [value for value in value_effectiveness(result) if value.failures]


def extend_dictionaries(
    base: DictionarySet,
    result: CampaignResult,
    source: DictionarySet | None = None,
) -> DictionarySet:
    """Fold a campaign's offending literal values into ``base``.

    Values already present are left alone; symbolic entries cannot be
    transplanted (their meaning is layout-bound) and are skipped.
    Returns a new set; ``base`` is not modified.
    """
    source = source if source is not None else DictionarySet()
    extended: dict[str, TypeDictionary] = dict(base.dictionaries)
    for offending in offending_values(result):
        source_dict = source.dictionaries.get(offending.dictionary)
        if source_dict is None:
            continue
        entry = next(
            (tv for tv in source_dict.values if tv.label == offending.label), None
        )
        if entry is None or entry.is_symbolic:
            continue
        target = extended.get(offending.dictionary)
        if target is None:
            extended[offending.dictionary] = TypeDictionary(
                source_dict.name,
                source_dict.basic_type,
                (entry,),
                source_dict.description,
            )
            continue
        if any(tv.label == entry.label for tv in target.values):
            continue
        extended[offending.dictionary] = TypeDictionary(
            target.name,
            target.basic_type,
            (*target.values, entry),
            target.description,
        )
    return DictionarySet(extended)


def feedback_report(result: CampaignResult, top: int = 10) -> str:
    """Render the most effective dictionary values."""
    scored = value_effectiveness(result)
    lines = ["dictionary           value        failures  tests  rate"]
    lines.append("-" * len(lines[0]))
    for value in scored[:top]:
        lines.append(
            f"{value.dictionary:<20} {value.label:<12} "
            f"{value.failures:>8}  {value.tests:>5}  {value.failure_rate:>5.0%}"
        )
    return "\n".join(lines)


def regression_dictionaries(result: CampaignResult) -> DictionarySet:
    """Dictionaries trimmed to offending values only.

    The minimal regression campaign: re-test a revised kernel with just
    the values that hurt it before (plus one valid entry per dictionary
    to avoid masking).
    """
    offenders: dict[str, set[str]] = {}
    for value in offending_values(result):
        offenders.setdefault(value.dictionary, set()).add(value.label)
    source = DictionarySet()
    trimmed: dict[str, TypeDictionary] = {}
    for name, dictionary in source.dictionaries.items():
        labels = offenders.get(name, set())
        keep = [tv for tv in dictionary.values if tv.label in labels]
        valid = next((tv for tv in dictionary.values if tv.maybe_valid), None)
        if valid is not None and valid not in keep:
            keep.append(valid)
        if not keep:
            keep = [dictionary.values[0]]
        trimmed[name] = TypeDictionary(
            dictionary.name, dictionary.basic_type, tuple(keep), dictionary.description
        )
    return DictionarySet(trimmed)
