"""Fault-masking analysis (Fig. 7).

Masking occurs when parameter validity checks on one parameter hide
robustness failures behind another: ``hypercall(<invalid>, <faulty>)``
returns a clean error code from the first check, so the faulty second
parameter is never exercised.  The paper's countermeasure is including
*valid* values in the dictionaries (Table II's asterisked entries).

Two tools implement the analysis:

- :func:`masking_pairs` mines a finished campaign for concrete masking
  evidence: datasets where a failure occurs only once earlier
  parameters hold valid values.
- :func:`masked_issue_comparison` runs the ablation: the same campaign
  with valid entries stripped from the dictionaries, demonstrating
  which issues disappear (for ``XM_multicall``, every invalid
  ``startAddr`` masks the ``endAddr`` defect and the temporal defect).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fault.campaign import Campaign, CampaignResult


@dataclass(frozen=True)
class MaskingPair:
    """Evidence that one parameter masks failures in another."""

    function: str
    masking_param: str
    masked_param: str
    masked_failure: str
    failing_case: str
    masked_case: str


def masking_pairs(result: CampaignResult) -> list[MaskingPair]:
    """Mine a campaign for Fig. 7-style masking evidence.

    For every failing test whose expectation blames a *later* parameter,
    find a sibling test identical at and after that parameter but with
    an invalid *earlier* parameter — in the sibling, the failure (or the
    clean error code) is attributed to the earlier parameter, so the
    later parameter's defect is invisible: Fig. 7's Case 1 masking
    Case 2.
    """
    pairs: list[MaskingPair] = []
    by_function: dict[str, list] = {}
    for item in result.classified:
        by_function.setdefault(item[0].function, []).append(item)
    for function, items in by_function.items():
        failures = [
            (r, e, c)
            for (r, e, c) in items
            if c.is_failure and e.invalid_params
        ]
        for record, expectation, classification in failures:
            blamed = expectation.invalid_params[0]
            params = [
                arg for arg in _spec_params(result, record)
            ]
            if blamed not in params:
                continue
            blamed_pos = params.index(blamed)
            for sibling, sib_exp, sib_cls in items:
                if sibling is record:
                    continue
                if not _differs_only_before(record, sibling, blamed_pos):
                    continue
                if not sib_exp.invalid_params:
                    continue
                earlier = sib_exp.invalid_params[0]
                if earlier in params and params.index(earlier) < blamed_pos:
                    pairs.append(
                        MaskingPair(
                            function=function,
                            masking_param=earlier,
                            masked_param=blamed,
                            masked_failure=classification.kind.value,
                            failing_case=record.test_id,
                            masked_case=sibling.test_id,
                        )
                    )
                    break
    return pairs


def _spec_params(result: CampaignResult, record) -> list[str]:  # noqa: ANN001
    function = result.model.lookup(record.function)
    return [p.name for p in function.params]


def _differs_only_before(record, sibling, position: int) -> bool:  # noqa: ANN001
    """Labels match at/after ``position``, differ somewhere before it."""
    a, b = record.arg_labels, sibling.arg_labels
    if len(a) != len(b) or a[position:] != b[position:]:
        return False
    return a[:position] != b[:position]


@dataclass(frozen=True)
class MaskingAblation:
    """Outcome of the valid-values ablation."""

    full_result: CampaignResult
    stripped_result: CampaignResult

    @property
    def full_issue_ids(self) -> set[str]:
        """Issues found with the complete dictionaries."""
        return {i.matched_vulnerability or i.description for i in self.full_result.issues}

    @property
    def stripped_issue_ids(self) -> set[str]:
        """Issues still found without valid dictionary entries."""
        return {
            i.matched_vulnerability or i.description
            for i in self.stripped_result.issues
        }

    @property
    def masked_issue_ids(self) -> set[str]:
        """Issues the ablation loses to fault masking."""
        return self.full_issue_ids - self.stripped_issue_ids


def masked_issue_comparison(
    functions: tuple[str, ...] | None = None,
    processes: int | None = None,
) -> MaskingAblation:
    """Run the campaign with and without valid dictionary entries."""
    full = Campaign(functions=functions)
    stripped = Campaign(
        functions=functions,
        dictionaries=full.dictionaries.without_valid_values(),
    )
    return MaskingAblation(
        full_result=full.run(processes=processes),
        stripped_result=stripped.run(processes=processes),
    )
