"""The data-type fault model robustness-testing toolset.

This package is the paper's contribution: a black-box fault-injection
framework for separation kernels that derives test cases from the data
types of hypercall parameters (Ballista lineage).

Pipeline (Figs. 1, 4 and 5 of the paper):

1. :mod:`~repro.fault.dictionaries` + :mod:`~repro.fault.apimodel` —
   the Data Type XML and API Header XML inputs (round-tripped by
   :mod:`~repro.fault.xmlio`).
2. :mod:`~repro.fault.matrix` — the ``test_value_matrix`` of values per
   parameter.
3. :mod:`~repro.fault.combinator` — dataset generation (Eq. 1 cartesian
   product, plus pairwise/random ablation strategies).
4. :mod:`~repro.fault.mutant` — one mutant source (C text + executable
   spec) per dataset.
5. :mod:`~repro.fault.executor` / :mod:`~repro.fault.campaign` — packing
   the test partition, running the TSP system on the simulator, logging.
6. :mod:`~repro.fault.oracle`, :mod:`~repro.fault.classify`,
   :mod:`~repro.fault.issues` — log analysis: expected-behaviour oracle,
   CRASH-scale classification, issue clustering.
7. :mod:`~repro.fault.report` — Tables I-III, Fig. 8 and the issue list.
"""

from repro.fault.dictionaries import (
    DictionarySet,
    Symbol,
    TestValue,
    TypeDictionary,
    builtin_dictionaries,
)
from repro.fault.apimodel import ApiFunction, ApiParameter, api_model_from_table
from repro.fault.matrix import TestValueMatrix, build_matrix
from repro.fault.combinator import (
    CartesianStrategy,
    OneFactorStrategy,
    PairwiseStrategy,
    RandomSampleStrategy,
    combinations_total,
)
from repro.fault.mutant import MutantSource, TestCallSpec, generate_mutants
from repro.fault.testlog import CampaignLog, TestRecord
from repro.fault.oracle import Expectation, OracleContext, ReferenceOracle
from repro.fault.classify import Classification, FailureKind, Severity, classify
from repro.fault.issues import Issue, cluster_issues
from repro.fault.executor import ExecutionResult, TestExecutor
from repro.fault.campaign import Campaign, CampaignResult
from repro.fault.truthbase import TruthBase, build_truthbase, compare_to_truthbase
from repro.fault.feedback import (
    extend_dictionaries,
    offending_values,
    regression_dictionaries,
    value_effectiveness,
)
from repro.fault.stress import StressComparison, StressExecutor, run_stress_comparison
from repro.fault.stateful_oracle import StatefulOracle, capture_state, classify_stateful
from repro.fault.regression import replay as replay_known_vulnerabilities
from repro.fault.regression import vulnerability_specs
from repro.fault.phantom import PhantomCampaign, PhantomState
from repro.fault.dossier import build_dossier, write_dossier
from repro.fault import report

__all__ = [
    "DictionarySet",
    "Symbol",
    "TestValue",
    "TypeDictionary",
    "builtin_dictionaries",
    "ApiFunction",
    "ApiParameter",
    "api_model_from_table",
    "TestValueMatrix",
    "build_matrix",
    "CartesianStrategy",
    "OneFactorStrategy",
    "PairwiseStrategy",
    "RandomSampleStrategy",
    "combinations_total",
    "MutantSource",
    "TestCallSpec",
    "generate_mutants",
    "CampaignLog",
    "TestRecord",
    "Expectation",
    "OracleContext",
    "ReferenceOracle",
    "Classification",
    "FailureKind",
    "Severity",
    "classify",
    "Issue",
    "cluster_issues",
    "ExecutionResult",
    "TestExecutor",
    "Campaign",
    "CampaignResult",
    "TruthBase",
    "build_truthbase",
    "compare_to_truthbase",
    "extend_dictionaries",
    "offending_values",
    "regression_dictionaries",
    "value_effectiveness",
    "StressComparison",
    "StressExecutor",
    "run_stress_comparison",
    "StatefulOracle",
    "capture_state",
    "classify_stateful",
    "replay_known_vulnerabilities",
    "vulnerability_specs",
    "PhantomCampaign",
    "PhantomState",
    "build_dossier",
    "write_dossier",
    "report",
]
