"""Qualification dossier generation.

Robustness campaigns in the space domain feed verification dossiers.
:func:`build_dossier` renders one self-contained Markdown document from
a finished campaign: configuration, coverage, Table III, the issue list
with CRASH severities, the severity heatmap, truth-base statistics and
the dictionary-feedback ranking — everything a reviewer needs without
touching the toolset.
"""

from __future__ import annotations

from pathlib import Path

from repro.fault.campaign import Campaign, CampaignResult
from repro.fault.classify import Severity
from repro.fault.export import table3_markdown
from repro.fault.feedback import offending_values
from repro.fault.report import fig8_data
from repro.fault.stats import wall_time_stats


def _issues_markdown(result: CampaignResult) -> str:
    if not result.issues:
        return "No robustness issues raised.\n"
    lines = [
        "| # | Hypercall | Severity | Failure | Cases | Known id |",
        "|---|---|---|---|---|---|",
    ]
    for index, issue in enumerate(result.issues, start=1):
        lines.append(
            f"| {index} | `{issue.hypercall}` | {issue.severity.value} | "
            f"{issue.kind.value} | {issue.case_count} | "
            f"{issue.matched_vulnerability or '-'} |"
        )
    lines.append("")
    for issue in result.issues:
        lines.append(f"- **{issue.matched_vulnerability or 'unregistered'}** — "
                     f"{issue.description}")
    return "\n".join(lines)


def _severity_markdown(result: CampaignResult) -> str:
    counts = result.severity_counts()
    lines = ["| Severity | Tests |", "|---|---|"]
    for severity in Severity:
        lines.append(f"| {severity.value} | {counts[severity]} |")
    return "\n".join(lines)


def _offenders_markdown(result: CampaignResult, top: int = 10) -> str:
    offenders = offending_values(result)[:top]
    if not offenders:
        return "No dictionary value participated in a failure.\n"
    lines = [
        "| Dictionary | Value | Failures | Tests | Rate |",
        "|---|---|---|---|---|",
    ]
    for value in offenders:
        lines.append(
            f"| `{value.dictionary}` | `{value.label}` | {value.failures} | "
            f"{value.tests} | {value.failure_rate:.0%} |"
        )
    return "\n".join(lines)


def build_dossier(result: CampaignResult, campaign: Campaign | None = None) -> str:
    """Render the full Markdown dossier for one campaign."""
    fig8 = fig8_data(result.model)
    wall = wall_time_stats(result.log)
    failing = len(result.failures())
    sections = [
        "# Robustness campaign dossier",
        "",
        "## Campaign configuration",
        "",
        f"- kernel under test: **XtratuM {result.kernel_version}**",
        f"- generation strategy: **{result.strategy_name}**",
        f"- testbed: EagleEye TSP (5 partitions, 250 ms major frame; "
        f"FDIR system partition hosts the fault placeholders)",
        f"- API scope: {fig8.tested} of {fig8.total_hypercalls} hypercalls "
        f"({fig8.tested_share:.0%}); {fig8.untested_parameterless} "
        f"parameter-less out of scope",
        "",
        "## Coverage and outcomes (Table III)",
        "",
        table3_markdown(result),
        "",
        f"**{result.total_tests} tests executed, {failing} failing, "
        f"{result.issue_count()} distinct issues.**",
        "",
        "## Raised issues",
        "",
        _issues_markdown(result),
        "",
        "## CRASH severity distribution",
        "",
        _severity_markdown(result),
        "",
        "## Most effective dictionary values",
        "",
        _offenders_markdown(result),
        "",
        "## Execution statistics",
        "",
        f"- total execution time: {wall['total']:.1f} s "
        f"(median {wall['median'] * 1e3:.1f} ms, p95 {wall['p95'] * 1e3:.1f} ms, "
        f"max {wall['max'] * 1e3:.1f} ms per test)",
        "",
    ]
    if campaign is not None:
        from repro.fault.truthbase import build_truthbase

        truthbase = build_truthbase(campaign)
        sections += [
            "## Dry-run truth base",
            "",
            f"- documented expectations: {len(truthbase)}",
            f"- expected-error share: {truthbase.expected_error_share():.0%} "
            "(most generated datasets are invalid by construction)",
            "",
        ]
    return "\n".join(sections)


def write_dossier(
    result: CampaignResult,
    path: str | Path,
    campaign: Campaign | None = None,
) -> Path:
    """Render and write the dossier; returns the path."""
    out = Path(path)
    out.write_text(build_dossier(result, campaign), encoding="utf-8")
    return out
