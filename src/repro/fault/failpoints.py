"""Failpoints: seeded fault injection against the campaign harness itself.

The paper's method assumes the *kernel* under test is hostile; this
module assumes the *host* is.  A failpoint is a named site inside the
execution stack — campaign pool rounds, probe loops and respawns,
executor runs and snapshot recycling, log appends/flushes/replaces, the
relay codecs — where a configured fault fires:

- ``raise``        — raise :class:`ChaosError` at the site (an abrupt
  host failure: the campaign is interrupted exactly there);
- ``kill``         — ``os._exit`` the process, but only when it is a
  pool worker (in the campaign parent the action degrades to ``raise``
  so a chaos run never takes the test harness itself down);
- ``delay``        — sleep a few milliseconds, perturbing thread and
  pool interleavings;
- ``short-write``  — *cooperative*: the site is told to write only a
  prefix of its payload and then crash, modelling power loss mid-append.

Sites are compiled into the hot paths as cheap no-ops and armed through
the ``REPRO_FAILPOINTS`` environment variable (inherited by pool
workers), either per site (``testlog.append=raise:0.1``) or in *chaos
mode* (``chaos:<seed>[:<rate>]``), where a seeded RNG arms every site
probabilistically.  The randomized soak tests drive campaigns under
many chaos seeds and assert the durability invariant the whole
execution stack claims: *interrupted anywhere + resumed from the
streaming log == uninterrupted*.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass

#: Environment variable holding the armed failpoint rules.
ENV_VAR = "REPRO_FAILPOINTS"

#: Probability per hit that an armed chaos-mode site fires.
DEFAULT_CHAOS_RATE = 0.05

#: The injection sites wired through the execution stack, with the
#: actions each may fire.  ``kill`` only appears on sites that execute
#: inside pool workers; ``short-write`` only on sites that own a file
#: write and cooperate with the injected truncation.
SITES: dict[str, tuple[str, ...]] = {
    "campaign.pool_round": ("raise", "delay"),
    "campaign.probe_loop": ("raise", "delay"),
    "campaign.respawn": ("raise", "delay"),
    "executor.run": ("raise", "delay", "kill"),
    "executor.recycle": ("raise", "delay"),
    "testlog.append": ("raise", "delay", "short-write"),
    "testlog.flush": ("raise", "delay"),
    "testlog.replace": ("raise", "delay"),
    "wire.encode": ("raise", "delay", "kill"),
    "wire.decode": ("raise", "delay"),
}

#: Exit status used by the ``kill`` action (distinct from the
#: executor's ``REPRO_KILL_SPEC`` status 17, so a post-mortem can tell
#: an injected harness kill from an injected test kill).
KILL_STATUS = 23


class ChaosError(RuntimeError):
    """An injected host fault (the failpoint analogue of a crash).

    Deliberately *not* a subclass of any domain error: nothing in the
    stack catches it on purpose, so a fired ``raise`` failpoint
    interrupts the campaign exactly where it hit — which is the point.
    """


@dataclass(frozen=True)
class Rule:
    """One armed failpoint site: what fires, and when.

    ``action`` is a concrete action name, or ``"*"`` for chaos mode
    (drawn per fire from the site's allowed actions).  ``probability``
    is the chance per hit; ``at_hit`` instead fires exactly once, on
    the Nth hit (1-based) — the deterministic form unit tests use.
    """

    action: str
    probability: float = 1.0
    at_hit: int | None = None


def _site_rng(seed: int, site: str) -> random.Random:
    """Deterministic per-(seed, site) RNG, stable across processes.

    Python's string ``hash`` is salted per process, so the stream is
    derived from a digest instead — the same seed must replay the same
    fault schedule in the parent and in every forked worker.
    """
    digest = hashlib.sha256(f"{seed}:{site}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class Failpoints:
    """An armed set of failpoint rules (see the module docstring)."""

    def __init__(self, rules: dict[str, Rule], seed: int = 0) -> None:
        unknown = sorted(set(rules) - set(SITES))
        if unknown:
            raise ValueError(
                f"unknown failpoint site(s) {unknown}; known: {sorted(SITES)}"
            )
        for site, rule in rules.items():
            if rule.action != "*" and rule.action not in SITES[site]:
                raise ValueError(
                    f"action {rule.action!r} not allowed at {site!r} "
                    f"(allowed: {SITES[site]})"
                )
        self.rules = dict(rules)
        self.seed = seed
        self._hits = {site: 0 for site in rules}
        self._rng = {site: _site_rng(seed, site) for site in rules}

    @classmethod
    def chaos(cls, seed: int, rate: float = DEFAULT_CHAOS_RATE) -> "Failpoints":
        """Arm every site probabilistically from one seed."""
        return cls(
            {site: Rule(action="*", probability=rate) for site in SITES},
            seed=seed,
        )

    @classmethod
    def parse(cls, text: str) -> "Failpoints":
        """Parse the ``REPRO_FAILPOINTS`` grammar.

        Either ``chaos:<seed>[:<rate>]``, or a comma-separated list of
        ``site=action`` clauses where ``action`` may carry ``:<prob>``
        (probabilistic) or ``@<n>`` (fire once, on the nth hit):
        ``testlog.append=short-write@3,executor.run=raise:0.1``.
        """
        text = text.strip()
        if text.startswith("chaos:"):
            parts = text.split(":")
            seed = int(parts[1])
            rate = float(parts[2]) if len(parts) > 2 else DEFAULT_CHAOS_RATE
            return cls.chaos(seed, rate)
        rules: dict[str, Rule] = {}
        for clause in filter(None, (c.strip() for c in text.split(","))):
            site, _, spec = clause.partition("=")
            if not spec:
                raise ValueError(
                    f"failpoint clause {clause!r} is not site=action"
                )
            action, probability, at_hit = spec, 1.0, None
            if "@" in spec:
                action, _, nth = spec.partition("@")
                at_hit = int(nth)
            elif ":" in spec:
                action, _, prob = spec.partition(":")
                probability = float(prob)
            rules[site] = Rule(
                action=action, probability=probability, at_hit=at_hit
            )
        return cls(rules)

    def fire(self, site: str) -> str | None:
        """One hit on a site; fault the process if the site is armed.

        ``raise`` raises, ``kill`` exits a worker process (degrading to
        ``raise`` elsewhere), ``delay`` sleeps and returns None.  The
        cooperative ``short-write`` action is returned to the caller,
        which owns the write being truncated.  Unarmed or non-firing
        hits return None.
        """
        rule = self.rules.get(site)
        if rule is None:
            return None
        self._hits[site] += 1
        rng = self._rng[site]
        if rule.at_hit is not None:
            if self._hits[site] != rule.at_hit:
                return None
        elif rule.probability < 1.0 and rng.random() >= rule.probability:
            return None
        action = rule.action
        if action == "*":
            action = rng.choice(SITES[site])
        if action == "kill" and not _WORKER_PROCESS:
            action = "raise"
        if action == "delay":
            time.sleep(rng.uniform(0.001, 0.02))
            return None
        if action == "kill":
            os._exit(KILL_STATUS)
        if action == "raise":
            raise ChaosError(f"failpoint {site!r} fired (injected host fault)")
        return action

    def hits(self, site: str) -> int:
        """How many times a site has been hit (fired or not)."""
        return self._hits.get(site, 0)


#: True in pool worker processes (set by the pool initializer); arms
#: the ``kill`` action — the campaign parent never kills itself.
_WORKER_PROCESS = False


def mark_worker_process() -> None:
    """Flag this process as a pool worker (arms the ``kill`` action)."""
    global _WORKER_PROCESS
    _WORKER_PROCESS = True


#: (env value, parsed Failpoints) cache so the per-hit cost of an
#: unarmed site is one environment lookup.
_PARSED: tuple[str | None, Failpoints | None] = (None, None)


def active() -> Failpoints | None:
    """The armed failpoints of this process, from ``REPRO_FAILPOINTS``.

    Reparsed only when the variable changes; hit counters and RNG
    streams persist across calls while it stays the same.
    """
    global _PARSED
    raw = os.environ.get(ENV_VAR) or None
    if raw != _PARSED[0]:
        _PARSED = (raw, Failpoints.parse(raw) if raw else None)
    return _PARSED[1]


def fire(site: str) -> str | None:
    """Hit one site if armed; a no-op when ``REPRO_FAILPOINTS`` is unset."""
    failpoints = active()
    return failpoints.fire(site) if failpoints is not None else None
