"""XM extended types (Table I): aliases of the basic fixed-width types.

The extended types carry semantic meaning (a time, an address, an
identifier) but share representation with a basic type.  Each alias is its
own :class:`~repro.xtypes.inttypes.IntTypeDescriptor` so that dictionaries
can attach *different* test-value sets to, say, ``xmTime_t`` and
``xm_s64_t`` even though both are 64-bit signed.
"""

from __future__ import annotations

from repro.xtypes.inttypes import IntTypeDescriptor

# 32-bit unsigned aliases (Table I groups these under xm_u32_t).
XM_WORD = IntTypeDescriptor("xmWord_t", 32, False, "unsigned int")
XM_ADDRESS = IntTypeDescriptor("xmAddress_t", 32, False, "unsigned int")
XM_IO_ADDRESS = IntTypeDescriptor("xmIoAddress_t", 32, False, "unsigned int")
XM_SIZE = IntTypeDescriptor("xmSize_t", 32, False, "unsigned int")
XM_ID = IntTypeDescriptor("xmId_t", 32, False, "unsigned int")

# 32-bit signed alias.
XM_SSIZE = IntTypeDescriptor("xmSSize_t", 32, True, "signed int")

# 64-bit signed alias: times are expressed in microseconds in XtratuM.
XM_TIME = IntTypeDescriptor("xmTime_t", 64, True, "signed long long")

#: Mapping from extended type name to (descriptor, basic-type name).
EXTENDED_ALIASES: dict[str, tuple[IntTypeDescriptor, str]] = {
    "xmWord_t": (XM_WORD, "xm_u32_t"),
    "xmAddress_t": (XM_ADDRESS, "xm_u32_t"),
    "xmIoAddress_t": (XM_IO_ADDRESS, "xm_u32_t"),
    "xmSize_t": (XM_SIZE, "xm_u32_t"),
    "xmId_t": (XM_ID, "xm_u32_t"),
    "xmSSize_t": (XM_SSIZE, "xm_s32_t"),
    "xmTime_t": (XM_TIME, "xm_s64_t"),
}
