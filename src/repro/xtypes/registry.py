"""The Table I type registry.

Maps every XM interface type name to its descriptor, its basic-type group
and the ANSI C declaration, exactly as the paper's Table I lays them out.
The registry is the single source of truth consulted by the fault-model
dictionaries and the XML round-trip code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.xtypes.extended import EXTENDED_ALIASES
from repro.xtypes.inttypes import BASIC_TYPES, IntTypeDescriptor


@dataclass(frozen=True)
class TypeEntry:
    """One row of the (expanded) Table I.

    ``basic_name`` is the XM basic type the entry aliases; for basic types
    it equals ``descriptor.name``.
    """

    descriptor: IntTypeDescriptor
    basic_name: str

    @property
    def name(self) -> str:
        """The XM type name."""
        return self.descriptor.name

    @property
    def is_extended(self) -> bool:
        """True when the entry is an extended alias, not a basic type."""
        return self.basic_name != self.descriptor.name

    @property
    def size_bits(self) -> int:
        """Width in bits (Table I "Size" column)."""
        return self.descriptor.bits

    @property
    def c_decl(self) -> str:
        """Table I "ANSI C Types" column."""
        return self.descriptor.c_decl


class TypeRegistry:
    """Registry of XM interface types.

    A fresh registry contains exactly the Table I contents; users testing a
    different kernel register their own types with :meth:`register`.
    """

    def __init__(self, populate: bool = True) -> None:
        self._entries: dict[str, TypeEntry] = {}
        if populate:
            for desc in BASIC_TYPES:
                self.register(desc, basic_name=desc.name)
            for name, (desc, basic) in EXTENDED_ALIASES.items():
                assert name == desc.name
                self.register(desc, basic_name=basic)

    def register(self, descriptor: IntTypeDescriptor, basic_name: str | None = None) -> TypeEntry:
        """Add a type; returns its entry.  Re-registering a name is an error."""
        if descriptor.name in self._entries:
            raise ValueError(f"type already registered: {descriptor.name}")
        basic = basic_name or descriptor.name
        if basic != descriptor.name and basic not in self._entries:
            raise ValueError(f"unknown basic type: {basic}")
        entry = TypeEntry(descriptor, basic)
        self._entries[descriptor.name] = entry
        return entry

    def lookup(self, name: str) -> TypeEntry:
        """Return the entry for ``name``; KeyError with context otherwise."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"unknown XM type: {name!r}") from None

    def descriptor(self, name: str) -> IntTypeDescriptor:
        """Shortcut for ``lookup(name).descriptor``."""
        return self.lookup(name).descriptor

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[TypeEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def basic_types(self) -> list[TypeEntry]:
        """Entries for the eight basic types, in Table I order."""
        return [e for e in self if not e.is_extended]

    def extended_types(self) -> list[TypeEntry]:
        """Entries for the extended aliases, in Table I order."""
        return [e for e in self if e.is_extended]

    def group_by_basic(self) -> dict[str, list[TypeEntry]]:
        """Table I layout: basic type name → [basic entry, aliases...]."""
        groups: dict[str, list[TypeEntry]] = {}
        for entry in self:
            groups.setdefault(entry.basic_name, []).append(entry)
        return groups

    def table1_rows(self) -> list[dict[str, object]]:
        """Rows of Table I: basic type, extended aliases, size, C type."""
        rows: list[dict[str, object]] = []
        for basic, entries in self.group_by_basic.__call__().items():
            aliases = [e.name for e in entries if e.is_extended]
            base = next(e for e in entries if not e.is_extended)
            rows.append(
                {
                    "basic": basic,
                    "extended": aliases,
                    "size_bits": base.size_bits,
                    "c_decl": base.c_decl,
                }
            )
        return rows


_DEFAULT: TypeRegistry | None = None


def default_registry() -> TypeRegistry:
    """The shared, lazily-built Table I registry (treat as read-only)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = TypeRegistry()
    return _DEFAULT
