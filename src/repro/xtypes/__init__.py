"""XtratuM data types (Table I of the paper).

XtratuM's interface types are compiler- and cross-development-independent
fixed-width integers.  This package models them with exact C semantics:
wrap-around on overflow for unsigned types, two's-complement wrap for
signed types, and explicit size/signedness metadata so the fault-injection
dictionaries can reason about type ranges.

The public surface:

- :class:`~repro.xtypes.inttypes.XmInt` — an immutable fixed-width integer
  value with C conversion semantics.
- The concrete type descriptors ``XM_U8 … XM_S64`` and the extended
  aliases (``XM_TIME``, ``XM_ADDRESS`` …).
- :class:`~repro.xtypes.registry.TypeRegistry` — the Table I registry
  mapping XM type names to descriptors and ANSI C declarations.
"""

from repro.xtypes.inttypes import (
    IntTypeDescriptor,
    XmInt,
    XM_U8,
    XM_S8,
    XM_U16,
    XM_S16,
    XM_U32,
    XM_S32,
    XM_U64,
    XM_S64,
)
from repro.xtypes.extended import (
    XM_TIME,
    XM_ADDRESS,
    XM_IO_ADDRESS,
    XM_SIZE,
    XM_SSIZE,
    XM_ID,
    XM_WORD,
    EXTENDED_ALIASES,
)
from repro.xtypes.registry import TypeRegistry, TypeEntry, default_registry

__all__ = [
    "IntTypeDescriptor",
    "XmInt",
    "XM_U8",
    "XM_S8",
    "XM_U16",
    "XM_S16",
    "XM_U32",
    "XM_S32",
    "XM_U64",
    "XM_S64",
    "XM_TIME",
    "XM_ADDRESS",
    "XM_IO_ADDRESS",
    "XM_SIZE",
    "XM_SSIZE",
    "XM_ID",
    "XM_WORD",
    "EXTENDED_ALIASES",
    "TypeRegistry",
    "TypeEntry",
    "default_registry",
]
