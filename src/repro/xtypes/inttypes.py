"""Fixed-width integer types with C conversion semantics.

XtratuM's hypercall ABI passes machine words; an out-of-range Python int
supplied by a test dictionary must behave exactly as it would after the C
calling convention truncated it.  :class:`IntTypeDescriptor` captures the
width/signedness of one XM basic type and performs that truncation;
:class:`XmInt` is an immutable value tagged with its descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class IntTypeDescriptor:
    """Width/signedness descriptor for one XM basic integer type.

    Parameters
    ----------
    name:
        XM type name, e.g. ``"xm_u32_t"``.
    bits:
        Storage width in bits (8, 16, 32 or 64).
    signed:
        True for two's-complement signed types.
    c_decl:
        The ANSI C declaration from Table I, e.g. ``"unsigned int"``.
    """

    name: str
    bits: int
    signed: bool
    c_decl: str

    def __post_init__(self) -> None:
        if self.bits not in (8, 16, 32, 64):
            raise ValueError(f"unsupported width: {self.bits} bits")
        # convert() runs once per hypercall argument on the simulator's
        # hottest path; cache the derived constants the properties
        # otherwise recompute per call (frozen, so via object.__setattr__).
        object.__setattr__(self, "_modulus", 1 << self.bits)
        object.__setattr__(
            self,
            "_max",
            (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1,
        )

    @property
    def min(self) -> int:
        """Smallest representable value."""
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max(self) -> int:
        """Largest representable value."""
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    @property
    def size_bytes(self) -> int:
        """Storage size in bytes."""
        return self.bits // 8

    @property
    def modulus(self) -> int:
        """2**bits — the wrap-around modulus."""
        return 1 << self.bits

    def contains(self, value: int) -> bool:
        """Whether ``value`` is representable without conversion."""
        return self.min <= value <= self.max

    def convert(self, value: int) -> int:
        """Apply C integer-conversion semantics to an arbitrary int.

        Unsigned types wrap modulo ``2**bits``; signed types wrap into
        two's-complement range (implementation-defined in C, but every
        relevant SPARC/GCC target wraps, and so did the paper's testbed).
        """
        wrapped = value % self._modulus
        if self.signed and wrapped > self._max:
            wrapped -= self._modulus
        return wrapped

    def to_unsigned(self, value: int) -> int:
        """Reinterpret a representable value as its raw bit pattern."""
        return self.convert(value) % self.modulus

    def boundary_values(self) -> tuple[int, ...]:
        """The classic boundary values for this type (dictionary seeds)."""
        if self.signed:
            return (self.min, -1, 0, 1, self.max)
        return (0, 1, self.max)

    def iter_range_probes(self) -> Iterator[int]:
        """Yield boundary values plus one-off-the-edge probes."""
        yield from self.boundary_values()
        yield self.min - 1
        yield self.max + 1

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.name


class XmInt:
    """An immutable integer value tagged with an XM type descriptor.

    Construction applies C conversion, so ``XmInt(XM_U8, 256)`` holds 0 and
    ``XmInt(XM_S8, 255)`` holds -1.  Arithmetic returns plain Python ints
    of the converted result; the class intentionally does not emulate C
    usual-arithmetic-conversions between *different* XM types because the
    kernel model never mixes them implicitly.
    """

    __slots__ = ("_type", "_value")

    def __init__(self, type_: IntTypeDescriptor, value: int) -> None:
        object.__setattr__(self, "_type", type_)
        object.__setattr__(self, "_value", type_.convert(int(value)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("XmInt is immutable")

    @property
    def type(self) -> IntTypeDescriptor:
        """The XM type descriptor this value is tagged with."""
        return self._type

    @property
    def value(self) -> int:
        """The converted Python integer value."""
        return self._value

    @property
    def raw(self) -> int:
        """The raw (unsigned) bit pattern of the stored value."""
        return self._type.to_unsigned(self._value)

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, XmInt):
            return self._type == other._type and self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._type.name, self._value))

    def __add__(self, other: "XmInt | int") -> "XmInt":
        return XmInt(self._type, self._value + int(other))

    def __sub__(self, other: "XmInt | int") -> "XmInt":
        return XmInt(self._type, self._value - int(other))

    def __mul__(self, other: "XmInt | int") -> "XmInt":
        return XmInt(self._type, self._value * int(other))

    def __neg__(self) -> "XmInt":
        return XmInt(self._type, -self._value)

    def __and__(self, other: "XmInt | int") -> "XmInt":
        return XmInt(self._type, self.raw & self._type.to_unsigned(int(other)))

    def __or__(self, other: "XmInt | int") -> "XmInt":
        return XmInt(self._type, self.raw | self._type.to_unsigned(int(other)))

    def __xor__(self, other: "XmInt | int") -> "XmInt":
        return XmInt(self._type, self.raw ^ self._type.to_unsigned(int(other)))

    def __lshift__(self, bits: int) -> "XmInt":
        return XmInt(self._type, self.raw << bits)

    def __rshift__(self, bits: int) -> "XmInt":
        # C semantics: logical shift for unsigned, arithmetic for signed.
        return XmInt(self._type, self._value >> bits)

    def __lt__(self, other: "XmInt | int") -> bool:
        return self._value < int(other)

    def __le__(self, other: "XmInt | int") -> bool:
        return self._value <= int(other)

    def __gt__(self, other: "XmInt | int") -> bool:
        return self._value > int(other)

    def __ge__(self, other: "XmInt | int") -> bool:
        return self._value >= int(other)

    def __repr__(self) -> str:
        return f"XmInt({self._type.name}, {self._value})"


# Table I basic types -------------------------------------------------------

XM_U8 = IntTypeDescriptor("xm_u8_t", 8, False, "unsigned char")
XM_S8 = IntTypeDescriptor("xm_s8_t", 8, True, "signed char")
XM_U16 = IntTypeDescriptor("xm_u16_t", 16, False, "unsigned short")
XM_S16 = IntTypeDescriptor("xm_s16_t", 16, True, "signed short")
XM_U32 = IntTypeDescriptor("xm_u32_t", 32, False, "unsigned int")
XM_S32 = IntTypeDescriptor("xm_s32_t", 32, True, "signed int")
XM_U64 = IntTypeDescriptor("xm_u64_t", 64, False, "unsigned long long")
XM_S64 = IntTypeDescriptor("xm_s64_t", 64, True, "signed long long")

BASIC_TYPES: tuple[IntTypeDescriptor, ...] = (
    XM_U8,
    XM_S8,
    XM_U16,
    XM_S16,
    XM_U32,
    XM_S32,
    XM_U64,
    XM_S64,
)
