"""Distributed campaign fabric: coordinator, worker agents, wire frames.

The process-pool runner in :mod:`repro.fault.campaign` promoted to a
network protocol: a socket coordinator (:mod:`repro.fabric.coordinator`)
leases shards of spec-table indices to worker agents
(:mod:`repro.fabric.worker`) over length-prefixed JSON frames
(:mod:`repro.fabric.frames`), with heartbeats, lease expiry, work
stealing and quorum-arbitrated killer verdicts.  See the "Distributed
fabric" section of docs/ARCHITECTURE.md.
"""

from repro.fabric.config import PROTOCOL_VERSION, FabricConfig, FabricError
from repro.fabric.coordinator import FabricCoordinator, coordinate
from repro.fabric.frames import MAX_FRAME, FrameError, encode_frame, read_frame
from repro.fabric.worker import WorkerAgent, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "FabricConfig",
    "FabricError",
    "FabricCoordinator",
    "coordinate",
    "MAX_FRAME",
    "FrameError",
    "encode_frame",
    "read_frame",
    "WorkerAgent",
    "run_worker",
]
