"""The fabric worker agent: connect, lease, execute, stream records.

One agent process serves one coordinator.  The control plane is an
asyncio connection (hello/welcome, lease grants, revocations,
heartbeats); the data plane is the same :class:`~repro.fault.executor`
the pool path uses, running leases on a thread so the event loop keeps
heartbeating while tests execute — which is exactly why the per-test
watchdog has an off-main-thread fallback (see ``_watchdog`` in the
executor).  Records travel back as batches of compact
:func:`~repro.fault.wire.encode_record` dicts, flushed by count and by
time so the coordinator always sees lease progress well inside its
lease timeout.

The agent is deliberately stateless between leases: everything it
knows (spec table, compiled plan, executor) derives from the welcome
frame's :class:`~repro.fabric.config.FabricConfig`, so a worker that
reconnects — or a fresh worker replacing a dead one — rebuilds the
identical state and any spec index means the same test.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time

from repro.fabric.config import PROTOCOL_VERSION, FabricConfig, FabricError
from repro.fabric.frames import FrameError, encode_frame, read_frame
from repro.fault import wire
from repro.fault.executor import TestExecutor, _kill_injected
from repro.fault.plan import group_consecutive
from repro.fault.testlog import TestRecord

#: Records per batch frame on the data plane (the fabric analogue of
#: the pool relay's ``_RELAY_BATCH_SIZE``).
DEFAULT_FLUSH_RECORDS = 32
#: Maximum seconds a finished record may sit unflushed: keeps the
#: coordinator's view of lease progress fresh even when records are
#: trickling in far below the batch size.
DEFAULT_FLUSH_INTERVAL_S = 0.5
DEFAULT_HEARTBEAT_S = 2.0

#: Sentinel queued by the reader task when the connection is gone.
_CLOSED = {"type": "__closed__"}


class WorkerAgent:
    """One fabric worker: a connection loop around a local executor."""

    def __init__(
        self,
        host: str,
        port: int,
        name: str | None = None,
        reconnect: bool = True,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        flush_records: int = DEFAULT_FLUSH_RECORDS,
        flush_interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
        connect_attempts: int = 20,
        connect_delay_s: float = 0.25,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.reconnect = reconnect
        self.heartbeat_s = heartbeat_s
        self.flush_records = max(1, flush_records)
        self.flush_interval_s = flush_interval_s
        self.connect_attempts = connect_attempts
        self.connect_delay_s = connect_delay_s
        #: Spec indices revoked (stolen) from this worker's current
        #: lease; read by the execution thread, written by the event
        #: loop's reader task.
        self._revoked: set[int] = set()
        self._revoked_lock = threading.Lock()
        #: (config-dict JSON, executor, spec table, plan) cached across
        #: reconnects: rebuilding the warm-boot snapshot and compiled
        #: plan is the expensive part of agent startup.
        self._state: tuple | None = None

    # -- entry point --------------------------------------------------------

    def run(self) -> None:
        """Serve the coordinator until it says done (or is gone for good)."""
        asyncio.run(self._main())

    async def _main(self) -> None:
        misses = 0
        while True:
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except OSError:
                misses += 1
                if misses >= self.connect_attempts:
                    raise FabricError(
                        f"coordinator at {self.host}:{self.port} unreachable "
                        f"after {misses} attempts"
                    )
                await asyncio.sleep(self.connect_delay_s)
                continue
            misses = 0
            try:
                finished = await self._serve(reader, writer)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except OSError:
                    pass
            if finished or not self.reconnect:
                return
            # Connection dropped mid-campaign: reconnect and resume —
            # the coordinator re-leases whatever this agent still owed.

    # -- one connection -----------------------------------------------------

    async def _serve(self, reader, writer) -> bool:  # noqa: ANN001
        """Serve one connection; True when the campaign completed."""
        send_lock = asyncio.Lock()

        async def send(message: dict) -> None:
            async with send_lock:
                writer.write(encode_frame(message))
                await writer.drain()

        await send(
            {
                "type": "hello",
                "name": self.name,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
            }
        )
        try:
            welcome = await read_frame(reader)
        except FrameError as exc:
            raise FabricError(f"bad welcome from coordinator: {exc}") from exc
        if welcome is None:
            return False  # coordinator vanished during the handshake
        if welcome.get("type") != "welcome":
            raise FabricError(
                f"expected welcome, got {welcome.get('type')!r}"
            )
        if welcome.get("protocol") != PROTOCOL_VERSION:
            raise FabricError(
                f"protocol mismatch: coordinator speaks "
                f"{welcome.get('protocol')}, this agent {PROTOCOL_VERSION}"
            )
        state = self._build_state(welcome.get("config") or {})

        incoming: asyncio.Queue = asyncio.Queue()

        async def read_loop() -> None:
            while True:
                try:
                    frame = await read_frame(reader)
                except (FrameError, OSError):
                    frame = None
                if frame is None:
                    incoming.put_nowait(_CLOSED)
                    return
                kind = frame.get("type")
                if kind == "revoke":
                    with self._revoked_lock:
                        self._revoked.update(frame.get("indices", ()))
                elif kind in ("lease", "done"):
                    incoming.put_nowait(frame)
                # Unknown control frames are ignored: a newer
                # coordinator may speak extensions this agent predates.

        async def heartbeat_loop() -> None:
            while True:
                await asyncio.sleep(self.heartbeat_s)
                try:
                    await send({"type": "heartbeat"})
                except (ConnectionError, OSError):
                    return

        async def drain_for_done() -> bool:
            # A send can fail *after* the campaign ended: the
            # coordinator's done frame may already sit in the incoming
            # queue (or the socket buffer) behind a connection its
            # shutdown has closed.  Keep reading until the done frame
            # or the reader's EOF sentinel settles it.
            while True:
                frame = await incoming.get()
                if frame is _CLOSED:
                    return False
                if frame.get("type") == "done":
                    return True

        reader_task = asyncio.create_task(read_loop())
        beat_task = asyncio.create_task(heartbeat_loop())
        try:
            while True:
                await send({"type": "lease-request"})
                frame = await incoming.get()
                if frame is _CLOSED:
                    return False
                if frame.get("type") == "done":
                    return True
                await self._execute_lease(state, frame, send)
        except (ConnectionError, OSError):
            return await drain_for_done()
        finally:
            reader_task.cancel()
            beat_task.cancel()

    def _build_state(self, config_dict: dict) -> tuple:
        """Executor + spec table + plan for one config, reconnect-cached."""
        import json

        key = json.dumps(config_dict, sort_keys=True)
        if self._state is not None and self._state[0] == key:
            return self._state
        config = FabricConfig.from_dict(config_dict)
        table = wire.build_spec_table(config.recipe())
        executor = TestExecutor(
            kernel_version=config.kernel_version,
            frames=config.frames,
            warm_boot=config.warm_boot,
            timeout_s=config.timeout_s,
            delta_reset=config.delta_reset,
            journal_budget=config.journal_budget,
            verify_reset=config.verify_reset,
            verify_plan=config.verify_plan,
            profile=config.profile,
        )
        plan = executor.compile_suite(table) if config.compiled_plan else None
        executor.prepare()
        self._state = (key, config, executor, table, plan)
        return self._state

    # -- lease execution ----------------------------------------------------

    async def _execute_lease(self, state, frame, send) -> None:  # noqa: ANN001
        """Run one lease on a thread, streaming record batches back."""
        _key, config, executor, table, plan = state
        lease_no = frame.get("lease")
        indices = list(frame.get("indices", ()))
        flush_n = max(1, int(frame.get("flush") or self.flush_records))
        loop = asyncio.get_running_loop()
        batches: asyncio.Queue = asyncio.Queue()

        def submit(batch: list[dict]) -> None:
            loop.call_soon_threadsafe(batches.put_nowait, batch)

        async def pump() -> None:
            while True:
                batch = await batches.get()
                await send(
                    {"type": "records", "lease": lease_no, "records": batch}
                )
                batches.task_done()

        pump_task = asyncio.create_task(pump())
        try:
            stats, phases = await asyncio.to_thread(
                self._run_indices, config, executor, table, plan,
                indices, flush_n, submit,
            )
            # Every submit() ran before to_thread resolved (both arrive
            # via call_soon_threadsafe, FIFO), so join() sees them all.
            await batches.join()
            done_frame = {"type": "lease-done", "lease": lease_no}
            if stats:
                done_frame["stats"] = stats
            if phases:
                done_frame["phases"] = phases
            await send(done_frame)
        finally:
            pump_task.cancel()

    def _run_indices(
        self,
        config: FabricConfig,
        executor: TestExecutor,
        table: list,
        plan,  # noqa: ANN001 - CompiledPlan | None
        indices: list[int],
        flush_n: int,
        submit,  # noqa: ANN001
    ) -> tuple[dict, dict]:
        """Execution-thread body: the fabric's ``run_shard_payload``.

        Runs the leased indices in order, skipping any revoked before
        they start (a stolen index already running just finishes — the
        coordinator dedups by test id).  Returns (reset-stat deltas,
        phase-time deltas) for the lease-done frame.
        """
        stats_before = dict(executor.reset_stats)
        phases_before = dict(executor.phase_times) if config.profile else {}
        pending: list[dict] = []
        last_flush = time.monotonic()

        def emit_record(record: TestRecord) -> None:
            nonlocal last_flush
            pending.append(wire.encode_record(record))
            now = time.monotonic()
            if len(pending) >= flush_n or now - last_flush >= self.flush_interval_s:
                submit(pending[:])
                pending.clear()
                last_flush = now

        def skip(index: int) -> bool:
            with self._revoked_lock:
                return index in self._revoked

        def gate(test_id: str) -> None:
            if _kill_injected(test_id):
                os._exit(17)  # fault injection: die like a harness-killing test

        if plan is not None:
            live = [(i, plan.entries[i]) for i in indices]
            if config.batch_hypercalls:
                for group in _group_pairs(live):
                    entries = [e for i, e in group if not skip(i)]
                    if not entries:
                        continue
                    executor.run_group(
                        entries,
                        emit=lambda _e, r: emit_record(r),
                        gate=lambda e: gate(e.test_id),
                    )
            else:
                for index, entry in live:
                    if skip(index):
                        continue
                    gate(entry.test_id)
                    emit_record(executor.run_planned(entry))
        else:
            for index in indices:
                if skip(index):
                    continue
                spec = table[index]
                gate(spec.test_id)
                emit_record(executor.run(spec))
        if pending:
            submit(pending[:])
            pending.clear()
        stats_delta = {
            name: count - stats_before.get(name, 0)
            for name, count in executor.reset_stats.items()
            if count != stats_before.get(name, 0)
        }
        phases_delta = (
            {
                name: seconds - phases_before.get(name, 0.0)
                for name, seconds in executor.phase_times.items()
                if seconds != phases_before.get(name, 0.0)
            }
            if config.profile
            else {}
        )
        return stats_delta, phases_delta


def _group_pairs(live: list[tuple[int, object]]) -> list[list[tuple[int, object]]]:
    """``group_consecutive`` over (index, entry) pairs."""
    grouped = group_consecutive([entry for _i, entry in live])
    out: list[list[tuple[int, object]]] = []
    position = 0
    for group in grouped:
        out.append(live[position : position + len(group)])
        position += len(group)
    return out


def run_worker(
    host: str,
    port: int,
    name: str | None = None,
    reconnect: bool = True,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
) -> None:
    """Module-level worker entry point (picklable for multiprocessing)."""
    from repro.fault import failpoints

    failpoints.mark_worker_process()
    WorkerAgent(
        host, port, name=name, reconnect=reconnect, heartbeat_s=heartbeat_s
    ).run()
