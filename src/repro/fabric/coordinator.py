"""The fabric coordinator: lease shards to worker agents over TCP.

The pool runner's supervision contract, promoted from "dead process"
to "dead host".  The coordinator owns the campaign: it partitions the
spec table into integer-index shards, *leases* them to connected worker
agents, checkpoints records as batches stream back, and treats every
way a worker can vanish — clean EOF, reset connection, malformed frame,
missed heartbeats, a lease that stops progressing — as the same event:
the lease's unfinished indices go back on the queue and the campaign
continues.  No worker failure mode kills the coordinator.

Killer attribution generalises the pool's probe protocol.  A normal
lease streams records in batches, so the specs a dead worker still owed
are ambiguous (its unflushed batch tail hides finished innocents); the
re-lease therefore runs with per-record flushing (``flush: 1``), after
which the first owed index *is* the spec that was running when the
worker died.  Each probe-lease death adds one ``worker_killed``
observation for that spec; the PR 4 quorum
(:class:`~repro.fault.resilience.VerdictArbiter`) decides when the
verdict is terminal, and confirmed killers land in the persistent
:class:`~repro.fault.resilience.Quarantine` exactly as pool kills do.

Work stealing handles stragglers: an idle worker with an empty queue is
granted the tail half of the largest outstanding lease (the victim gets
a ``revoke`` frame for the stolen indices; a steal that races a test
already running is harmless — records dedup by test id).

:func:`coordinate` is the synchronous orchestrator that mirrors
:meth:`repro.fault.campaign.Campaign.run` — resume, quarantine skips,
the streaming JSONL checkpoint, the stats trailer, global-order merge,
analysis — so an interrupted-and-resumed fabric campaign is
record-for-record identical to an uninterrupted serial run.
"""

from __future__ import annotations

import asyncio
import warnings
from collections import deque
from pathlib import Path

from repro.fabric.config import PROTOCOL_VERSION, FabricConfig, FabricError
from repro.fabric.frames import FrameError, encode_frame, read_frame
from repro.fabric.worker import DEFAULT_FLUSH_RECORDS, run_worker
from repro.fault import wire
from repro.fault.campaign import (
    Campaign,
    CampaignResult,
    ProgressHook,
    RecordSink,
    _auto_shard_size,
    _merge_execution_stats,
    _merge_phase_times,
    _merge_reset_modes,
)
from repro.fault.executor import worker_killed_record
from repro.fault.failpoints import ChaosError
from repro.fault.resilience import (
    Quarantine,
    RespawnBreaker,
    RetryPolicy,
    VerdictArbiter,
    quarantined_record,
)
from repro.fault.testlog import CampaignLog, TestRecord

DEFAULT_HEARTBEAT_S = 2.0
DEFAULT_LEASE_TIMEOUT_S = 60.0
#: Smallest lease remainder worth stealing from (below this the victim
#: finishes faster than a steal round-trip).
MIN_STEAL = 4


class _Lease:
    """One granted shard: its owner and what it still owes."""

    __slots__ = ("number", "worker", "remaining", "probe", "granted_at", "last_progress")

    def __init__(
        self, number: int, worker: str, indices: list[int], probe: bool, now: float
    ) -> None:
        self.number = number
        self.worker = worker
        #: Granted indices no record has arrived for yet, in run order.
        self.remaining = list(indices)
        self.probe = probe
        self.granted_at = now
        self.last_progress = now


class _Worker:
    """One connected worker agent."""

    __slots__ = ("name", "host", "writer", "lease", "idle", "last_seen")

    def __init__(self, name: str, host: str, writer, now: float) -> None:  # noqa: ANN001
        self.name = name
        self.host = host
        self.writer = writer
        self.lease: int | None = None
        self.idle = False
        self.last_seen = now


class FabricCoordinator:
    """Asyncio TCP server that leases spec shards and collects records.

    ``deliver(record, worker)`` is called for every (deduplicated)
    relayed record — it arbitrates, checkpoints and reports, returning
    False to withhold the record and have its spec re-leased.
    ``emit(record)`` publishes terminal records the coordinator itself
    synthesises (``worker_killed`` verdicts).  Both run on the event
    loop; a BaseException from either (a progress hook's
    KeyboardInterrupt, injected ChaosError) is captured into
    ``self.failure`` and ends the campaign.
    """

    def __init__(
        self,
        campaign: Campaign,
        specs: list,  # remaining TestCallSpecs, global order
        deliver,  # noqa: ANN001 - (TestRecord, _Worker) -> bool | None
        emit,  # noqa: ANN001 - (TestRecord) -> None
        config: FabricConfig,
        policy: RetryPolicy,
        stats: dict,
        quarantine: Quarantine | None = None,
        shard_size: int | None = None,
        batch_records: int = DEFAULT_FLUSH_RECORDS,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        expected_workers: int = 4,
    ) -> None:
        self.campaign = campaign
        self.deliver = deliver
        self.emit = emit
        self.config = config
        self.policy = policy
        self.stats = stats
        self.quarantine = quarantine
        self.batch_records = max(1, batch_records)
        self.heartbeat_s = heartbeat_s
        self.lease_timeout_s = lease_timeout_s
        self.arbiter = VerdictArbiter(policy)
        #: Full campaign spec table: wire indices address this, exactly
        #: as every worker's regenerated table does.
        self.spec_at = list(campaign.iter_specs())
        self.index_of = {
            spec.test_id: index for index, spec in enumerate(self.spec_at)
        }
        work = [self.index_of[spec.test_id] for spec in specs]
        self.unresolved: set[int] = set(work)
        size = shard_size or _auto_shard_size(len(work), max(1, expected_workers))
        #: Ungranted work: (indices, probe) shards.  Probe shards (the
        #: re-leased remainder of a dead worker's lease) go to the
        #: front and run with per-record flushing.
        self.pending: deque[tuple[list[int], bool]] = deque(
            (work[start : start + size], False)
            for start in range(0, len(work), size)
        )
        self.workers: dict[str, _Worker] = {}
        self.leases: dict[int, _Lease] = {}
        self._lease_seq = 0
        self.done = asyncio.Event()
        self.failure: BaseException | None = None
        self.degraded = False
        self.addr: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._reaper: asyncio.Task | None = None
        #: Live connection handlers and their transports, so shutdown
        #: can close every socket (including pre-hello strangers) and
        #: let the handlers finish instead of being cancelled mid-read.
        self._handlers: set[asyncio.Task] = set()
        self._transports: set = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str, port: int) -> None:
        """Bind and begin accepting workers; ``self.addr`` holds the port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.addr = (sockname[0], sockname[1])
        self._reaper = asyncio.create_task(self._reap())
        if not self.unresolved:
            self.done.set()

    async def shutdown(self) -> None:
        """Tell workers the campaign is over and tear the server down."""
        if self._reaper is not None:
            self._reaper.cancel()
        for worker in list(self.workers.values()):
            try:
                worker.writer.write(encode_frame({"type": "done"}))
                await worker.writer.drain()
            except (ConnectionError, OSError):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let workers hang up first: closing a socket whose receive
        # buffer still holds an unread frame (a final lease-request
        # racing the campaign's end) sends an RST that destroys the
        # in-flight done frame, stranding the worker in its reconnect
        # loop.  A worker that got the done frame closes immediately,
        # so this grace window is milliseconds in the normal case.
        if self._handlers:
            await asyncio.wait(list(self._handlers), timeout=2.0)
        for writer in list(self._transports):
            writer.close()
        if self._handlers:
            await asyncio.wait(list(self._handlers), timeout=2.0)

    def progress_marker(self) -> tuple:
        """Changes whenever the campaign advanced (breaker evidence)."""
        return (len(self.unresolved), self.arbiter.total_observations)

    # -- per-connection handler ---------------------------------------------

    async def _handle(self, reader, writer) -> None:  # noqa: ANN001
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._transports.add(writer)
        name = None
        try:
            try:
                hello = await asyncio.wait_for(
                    read_frame(reader), timeout=10 * self.heartbeat_s
                )
            except (FrameError, asyncio.TimeoutError, ConnectionError, OSError):
                return  # rogue or dead client: drop it, keep serving
            if (
                hello is None
                or hello.get("type") != "hello"
                or hello.get("protocol") != PROTOCOL_VERSION
            ):
                return
            name = str(hello.get("name") or "worker")
            while name in self.workers:
                name += "+"  # a respawn raced its predecessor's cleanup
            worker = _Worker(
                name, str(hello.get("host") or "?"), writer, loop.time()
            )
            self.workers[name] = worker
            writer.write(
                encode_frame(
                    {
                        "type": "welcome",
                        "protocol": PROTOCOL_VERSION,
                        "config": self.config.to_dict(),
                    }
                )
            )
            await writer.drain()
            while True:
                try:
                    frame = await read_frame(reader)
                except FrameError as exc:
                    # Malformed traffic mid-session: quarantine the
                    # *worker* (drop it; its lease is re-probed like a
                    # death) — never the coordinator.
                    warnings.warn(
                        f"fabric: dropping worker {name!r} on malformed "
                        f"frame: {exc}",
                        stacklevel=2,
                    )
                    break
                if frame is None:
                    break
                worker.last_seen = loop.time()
                kind = frame.get("type")
                if kind == "heartbeat":
                    continue
                if kind == "lease-request":
                    await self._grant(worker)
                elif kind == "records":
                    await self._on_records(worker, frame)
                elif kind == "lease-done":
                    await self._on_lease_done(worker, frame)
                # Unknown frame types are ignored (newer workers may
                # speak extensions this coordinator predates).
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # deliver/emit raised: end the campaign
            if self.failure is None:
                self.failure = exc
            self.done.set()
        finally:
            writer.close()
            self._transports.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            if name is not None:
                self._on_worker_lost(name)

    # -- leasing ------------------------------------------------------------

    async def _grant(self, worker: _Worker) -> None:
        """Grant the next shard (or steal one) to a work-hungry worker."""
        if worker.lease is not None:
            worker.idle = True
            return
        work = self._next_work()
        if work is None:
            worker.idle = True
            return
        indices, probe = work
        loop = asyncio.get_running_loop()
        self._lease_seq += 1
        lease = _Lease(self._lease_seq, worker.name, indices, probe, loop.time())
        self.leases[lease.number] = lease
        worker.lease = lease.number
        worker.idle = False
        worker.writer.write(
            encode_frame(
                {
                    "type": "lease",
                    "lease": lease.number,
                    "indices": indices,
                    "flush": 1 if probe else self.batch_records,
                }
            )
        )
        await worker.writer.drain()

    def _next_work(self) -> tuple[list[int], bool] | None:
        """Pop pending work, or steal the tail half of the largest lease."""
        while self.pending:
            indices, probe = self.pending.popleft()
            live = [i for i in indices if i in self.unresolved]
            if live:
                return live, probe
        victim = max(
            (
                lease
                for lease in self.leases.values()
                if not lease.probe and len(lease.remaining) >= MIN_STEAL
            ),
            key=lambda lease: len(lease.remaining),
            default=None,
        )
        if victim is None:
            return None
        keep = (len(victim.remaining) + 1) // 2
        stolen = victim.remaining[keep:]
        victim.remaining = victim.remaining[:keep]
        self.stats["lease_steals"] = self.stats.get("lease_steals", 0) + 1
        owner = self.workers.get(victim.worker)
        if owner is not None:
            # Best-effort: if the revoke is lost with the connection,
            # the victim's extra records merely dedup on arrival.
            owner.writer.write(
                encode_frame(
                    {"type": "revoke", "lease": victim.number, "indices": stolen}
                )
            )
        return stolen, False

    async def _grant_idle(self) -> None:
        """Hand newly available work to workers parked on an empty queue."""
        for worker in list(self.workers.values()):
            if self.done.is_set():
                return
            if worker.idle and worker.lease is None:
                try:
                    await self._grant(worker)
                except (ConnectionError, OSError):
                    worker.writer.close()

    # -- record + completion flow -------------------------------------------

    async def _on_records(self, worker: _Worker, frame: dict) -> None:
        """One batch of relayed records from a worker."""
        loop = asyncio.get_running_loop()
        lease = self.leases.get(frame.get("lease"))
        requeued = False
        for encoded in frame.get("records", ()):
            try:
                record = wire.decode_record(encoded)
            except ChaosError:
                raise
            except Exception as exc:
                raise FrameError(f"undecodable record payload: {exc!r}") from exc
            index = self.index_of.get(record.test_id)
            if index is None:
                raise FrameError(
                    f"record for unknown test id {record.test_id!r}"
                )
            if lease is not None:
                try:
                    lease.remaining.remove(index)
                except ValueError:
                    pass
                lease.last_progress = loop.time()
            if index not in self.unresolved:
                continue  # duplicate (steal race or reconnect replay)
            if self.deliver(record, worker) is False:
                # Withheld for arbitration: re-lease the spec alone,
                # per-record flushed, so the retry verdict is exact.
                self.pending.appendleft(([index], True))
                requeued = True
            else:
                self.unresolved.discard(index)
        if not self.unresolved:
            self.done.set()
        elif requeued:
            await self._grant_idle()

    async def _on_lease_done(self, worker: _Worker, frame: dict) -> None:
        """A worker finished (every non-revoked index of) its lease."""
        lease = self.leases.pop(frame.get("lease"), None)
        if worker.lease == frame.get("lease"):
            worker.lease = None
        if frame.get("stats"):
            _merge_reset_modes(self.stats, frame["stats"])
        if frame.get("phases"):
            _merge_phase_times(self.stats, frame["phases"])
        if lease is not None:
            leftover = [i for i in lease.remaining if i in self.unresolved]
            if leftover:
                # Revoked indices some other worker now owns are gone
                # from `remaining`; anything left was skipped without a
                # record (should not happen) — requeue rather than lose.
                self.pending.append((leftover, lease.probe))
                await self._grant_idle()

    def _on_worker_lost(self, name: str) -> None:
        """EOF/reset/malformed frame/heartbeat expiry: one death path.

        The dead worker's outstanding lease is re-queued at the front
        as a *probe* shard.  If the lease already was a probe, its
        first owed index is exactly the spec that was running (probes
        flush per record), so the death adds one ``worker_killed``
        observation — terminal verdicts are emitted and quarantined,
        non-terminal ones leave the suspect first in line for the next
        probe.
        """
        worker = self.workers.pop(name, None)
        if worker is None:
            return
        lease = (
            self.leases.pop(worker.lease, None)
            if worker.lease is not None
            else None
        )
        if lease is None:
            return
        remaining = [i for i in lease.remaining if i in self.unresolved]
        if lease.probe and remaining:
            suspect = self.spec_at[remaining[0]]
            terminal = self.policy.single_shot or self.arbiter.observe(
                suspect.test_id, "worker_killed"
            )
            observations = self.arbiter.observations(suspect.test_id) or [
                "worker_killed"
            ]
            if terminal:
                self.emit(
                    worker_killed_record(
                        suspect,
                        self.campaign.kernel_version,
                        self.campaign.frames,
                        attempts=len(observations),
                        arbitrated=len(observations) > 1,
                        host_context={
                            "fabric_worker": worker.name,
                            "worker_host": worker.host,
                            "attempt": len(observations),
                        },
                    )
                )
                if self.quarantine is not None:
                    self.quarantine.add(
                        suspect.test_id, suspect.function, observations
                    )
                self.unresolved.discard(remaining[0])
                remaining = remaining[1:]
            else:
                self.stats["retries"] += 1
        if remaining:
            self.stats["probe_respawns"] += 1
            self.pending.appendleft((remaining, True))
        if not self.unresolved:
            self.done.set()
        elif not self.done.is_set():
            asyncio.ensure_future(self._grant_idle())

    # -- liveness -----------------------------------------------------------

    async def _reap(self) -> None:
        """Expire workers that stopped heartbeating or stopped progressing."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.heartbeat_s)
            now = loop.time()
            for worker in list(self.workers.values()):
                silent = now - worker.last_seen > 3 * self.heartbeat_s
                lease = (
                    self.leases.get(worker.lease)
                    if worker.lease is not None
                    else None
                )
                stalled = (
                    lease is not None
                    and now - max(lease.granted_at, lease.last_progress)
                    > self.lease_timeout_s
                )
                if silent or stalled:
                    why = "heartbeats" if silent else "lease progress"
                    warnings.warn(
                        f"fabric: worker {worker.name!r} lost ({why} "
                        "timed out); re-leasing its shard",
                        stacklevel=2,
                    )
                    # Closing the transport unblocks the handler's
                    # read; the normal death path does the rest.
                    worker.writer.close()


# -- the synchronous orchestrator -------------------------------------------


def coordinate(
    campaign: Campaign,
    bind: tuple[str, int] = ("127.0.0.1", 0),
    workers: int = 0,
    progress: ProgressHook | None = None,
    resume_from: CampaignLog | None = None,
    log_path: str | Path | None = None,
    timeout_s: float | None = None,
    shard_size: int | None = None,
    retry_policy: RetryPolicy | None = None,
    quarantine_path: str | Path | None = None,
    log_fsync: bool = False,
    batch_records: int = DEFAULT_FLUSH_RECORDS,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
    on_listen=None,  # noqa: ANN001 - (host, port) -> None
) -> CampaignResult:
    """Run one campaign over the fabric; the distributed ``Campaign.run``.

    Binds a coordinator on ``bind`` (port 0 picks a free one; the bound
    address is reported through ``on_listen``), optionally spawns
    ``workers`` local loopback worker agents, and executes the campaign
    exactly as :meth:`~repro.fault.campaign.Campaign.run` would:
    ``resume_from`` skips finished specs, ``log_path`` checkpoints every
    record as it arrives and gains the stats trailer even on interrupt,
    quarantined specs are skipped-with-record, and the merged result is
    sorted into global spec order before analysis — so fabric,
    pool-parallel and serial runs of one campaign are record-for-record
    interchangeable.

    With ``workers=0`` the coordinator only serves: start worker agents
    elsewhere with ``repro fabric work``.  Local workers are supervised
    like pool processes — a dead one is respawned, and when respawns
    keep dying without progress
    (:class:`~repro.fault.resilience.RespawnBreaker`) the rest of the
    campaign degrades to the serial in-process runner.
    """
    config = FabricConfig.from_campaign(campaign, timeout_s)  # fail fast
    specs = list(campaign.iter_specs())
    remaining = specs
    done: list[TestRecord] = []
    if resume_from is not None:
        campaign._validate_resume(resume_from)
        have = {record.test_id: record for record in resume_from}
        done = [have[s.test_id] for s in specs if s.test_id in have]
        remaining = [s for s in specs if s.test_id not in have]
    policy = retry_policy if retry_policy is not None else RetryPolicy()
    stats: dict = {
        "pool_respawns": 0,
        "probe_respawns": 0,
        "retries": 0,
        "degraded_serial": False,
        "quarantined_skips": 0,
        "reset_modes": {},
    }
    if resume_from is not None and resume_from.execution_stats:
        _merge_execution_stats(stats, resume_from.execution_stats)
    quarantine: Quarantine | None = None
    if quarantine_path is not None:
        quarantine = Quarantine.load(quarantine_path)
        skipped = [s for s in remaining if s.test_id in quarantine]
        if skipped:
            remaining = [s for s in remaining if s.test_id not in quarantine]
            done = [
                *done,
                *(
                    quarantined_record(
                        spec,
                        campaign.kernel_version,
                        campaign.frames,
                        quarantine.entries.get(spec.test_id),
                    )
                    for spec in skipped
                ),
            ]
            stats["quarantined_skips"] = len(skipped)
    stream = (
        CampaignLog.stream(log_path, fsync=log_fsync)
        if log_path is not None
        else None
    )
    records: list[TestRecord] = []
    warned: set[str] = set()
    total = len(remaining)
    sink: RecordSink | None = stream.append if stream is not None else None

    def guarded(kind: str, hook, *args) -> None:  # noqa: ANN001
        try:
            hook(*args)
        except ChaosError:
            raise
        except Exception as exc:
            if kind not in warned:
                warned.add(kind)
                warnings.warn(
                    f"campaign {kind} callback raised {exc!r}; "
                    "suppressing further errors from this hook",
                    stacklevel=2,
                )

    def emit(record: TestRecord) -> None:
        records.append(record)
        if sink is not None:
            guarded("sink", sink, record)
        if progress is not None:
            guarded("progress", progress, len(records), total, record)

    arbiter_box: list[VerdictArbiter] = []

    def deliver(record: TestRecord, worker: _Worker) -> bool:
        arbiter = arbiter_box[0]
        if record.watchdog_expired and not policy.single_shot:
            if not arbiter.observe(record.test_id, "watchdog_expired"):
                stats["retries"] += 1
                return False
        arbiter.annotate(record)
        # Fabric provenance: which agent on which host ran this test
        # (stripped, like all host context, in identity comparisons).
        record.host_context = {
            "fabric_worker": worker.name,
            "worker_host": worker.host,
        }
        emit(record)
        return True

    coordinator = FabricCoordinator(
        campaign,
        remaining,
        deliver,
        emit,
        config=config,
        policy=policy,
        stats=stats,
        quarantine=quarantine,
        shard_size=shard_size,
        batch_records=batch_records,
        heartbeat_s=heartbeat_s,
        lease_timeout_s=lease_timeout_s,
        expected_workers=workers or 4,
    )
    arbiter_box.append(coordinator.arbiter)
    try:
        if stream is not None:
            for record in done:
                stream.append(record)
        asyncio.run(
            _execute(coordinator, bind, workers, stats, heartbeat_s, on_listen)
        )
        if coordinator.failure is not None:
            raise coordinator.failure
        if coordinator.degraded and coordinator.unresolved:
            stats["degraded_serial"] = True
            leftovers = [
                coordinator.spec_at[i] for i in sorted(coordinator.unresolved)
            ]
            warnings.warn(
                f"fabric worker respawn budget exhausted after "
                f"{stats['pool_respawns']} respawns; degrading to serial "
                f"execution for {len(leftovers)} remaining specs",
                stacklevel=2,
            )
            campaign._run_serial(leftovers, None, emit, timeout_s, policy, stats)
    finally:
        if stream is not None:
            try:
                stream.append_stats(stats)
            finally:
                stream.close()
        if quarantine is not None and quarantine.dirty:
            quarantine.save()
    order = {spec.test_id: index for index, spec in enumerate(specs)}
    combined = [*done, *records]
    combined.sort(key=lambda record: order[record.test_id])
    log = CampaignLog(combined)
    log.execution_stats = stats
    result = campaign.analyse(log)
    result.execution_stats = stats
    return result


async def _execute(
    coordinator: FabricCoordinator,
    bind: tuple[str, int],
    workers: int,
    stats: dict,
    heartbeat_s: float,
    on_listen,  # noqa: ANN001
) -> None:
    """Async half of :func:`coordinate`: serve, supervise, wait, shut down."""
    import multiprocessing as mp

    await coordinator.start(*bind)
    assert coordinator.addr is not None
    connect_host = (
        "127.0.0.1" if bind[0] in ("", "0.0.0.0", "::") else bind[0]
    )
    context = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods()
        else mp.get_context()
    )

    def spawn(slot: int):  # noqa: ANN202
        process = context.Process(
            target=run_worker,
            kwargs={
                "host": connect_host,
                "port": coordinator.addr[1],
                "name": f"local-{slot}",
                "reconnect": True,
                "heartbeat_s": heartbeat_s,
            },
            daemon=True,
        )
        process.start()
        return process

    processes: list = [spawn(slot) for slot in range(workers)]
    breaker = RespawnBreaker()
    supervisor: asyncio.Task | None = None

    async def supervise() -> None:
        # Local workers get pool-grade supervision: respawn the dead,
        # and degrade to serial when respawns keep dying fruitlessly.
        marker = coordinator.progress_marker()
        while True:
            await asyncio.sleep(0.2)
            if coordinator.done.is_set():
                return
            for slot, process in enumerate(processes):
                if process is None or process.is_alive():
                    continue
                process.join()
                processes[slot] = None
                if coordinator.done.is_set() or not coordinator.unresolved:
                    continue
                breaker.note_round(coordinator.progress_marker() != marker)
                marker = coordinator.progress_marker()
                if breaker.tripped:
                    continue
                stats["pool_respawns"] += 1
                breaker.note_spawn()
                processes[slot] = spawn(slot)
            if (
                breaker.tripped
                and all(process is None for process in processes)
                and not coordinator.workers
            ):
                coordinator.degraded = True
                coordinator.done.set()
                return

    if workers:
        supervisor = asyncio.create_task(supervise())
    if on_listen is not None:
        on_listen(*coordinator.addr)
    try:
        await coordinator.done.wait()
    finally:
        if supervisor is not None:
            supervisor.cancel()
        await coordinator.shutdown()
        for process in processes:
            if process is not None and process.is_alive():
                process.terminate()
        for process in processes:
            if process is not None:
                process.join(timeout=5.0)
