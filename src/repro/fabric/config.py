"""The campaign configuration that travels to fabric workers.

The pool path ships a pickled :class:`~repro.fault.wire.SuiteRecipe` to
its (forked) workers; across hosts pickle is neither safe nor portable,
so the fabric ships a JSON description instead and both sides rebuild
the recipe from shared code: the default API model and dictionaries
(process-wide singletons), a strategy reconstructed *by name* from
:data:`repro.fault.combinator.STRATEGIES`, and the campaign's execution
knobs.  ``total`` rides along so a worker's regenerated spec table is
verified against the coordinator's before any index is trusted —
exactly the :func:`~repro.fault.wire.build_spec_table` contract.

A campaign with a custom model, dictionary set, or testbed factory
cannot be described this way and is rejected with :class:`FabricError`
up front (run those with the in-process or pool runners).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fault import wire
from repro.fault.campaign import (
    Campaign,
    _default_dictionaries,
    _default_model,
)
from repro.fault.combinator import strategy_from_dict, strategy_to_dict


class FabricError(Exception):
    """A fabric configuration or protocol contract violation."""


#: Protocol revision spoken by coordinator and workers; a mismatch in
#: the hello/welcome exchange is a hard error on both sides.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class FabricConfig:
    """JSON-able description of one fabric campaign's worker side."""

    kernel_version: str
    frames: int
    strategy: dict
    functions: tuple[str, ...] | None
    total: int
    warm_boot: bool
    delta_reset: bool
    journal_budget: int | None
    verify_reset: bool
    compiled_plan: bool
    batch_hypercalls: bool
    verify_plan: bool
    profile: bool
    timeout_s: float | None

    @classmethod
    def from_campaign(
        cls, campaign: Campaign, timeout_s: float | None = None
    ) -> "FabricConfig":
        """Describe a campaign for the wire; reject undescribable ones."""
        if campaign.model is not _default_model():
            raise FabricError(
                "fabric campaigns require the default API model "
                "(a custom model cannot be reconstructed on a remote host)"
            )
        if campaign.dictionaries is not _default_dictionaries():
            raise FabricError(
                "fabric campaigns require the default dictionary set "
                "(custom dictionaries cannot be reconstructed on a remote host)"
            )
        if campaign.system_factory is not None:
            raise FabricError(
                "fabric campaigns support only the default testbed "
                "(factories do not cross host boundaries)"
            )
        return cls(
            kernel_version=campaign.kernel_version,
            frames=campaign.frames,
            strategy=strategy_to_dict(campaign.strategy),
            functions=campaign.functions,
            total=campaign.total_tests(),
            warm_boot=campaign.warm_boot,
            delta_reset=campaign.delta_reset,
            journal_budget=campaign.journal_budget,
            verify_reset=campaign.verify_reset,
            compiled_plan=campaign.compiled_plan,
            batch_hypercalls=campaign.batch_hypercalls,
            verify_plan=campaign.verify_plan,
            profile=campaign.profile,
            timeout_s=timeout_s,
        )

    def to_dict(self) -> dict:
        """The JSON form carried in the welcome frame."""
        return {
            "kernel_version": self.kernel_version,
            "frames": self.frames,
            "strategy": dict(self.strategy),
            "functions": list(self.functions) if self.functions is not None else None,
            "total": self.total,
            "warm_boot": self.warm_boot,
            "delta_reset": self.delta_reset,
            "journal_budget": self.journal_budget,
            "verify_reset": self.verify_reset,
            "compiled_plan": self.compiled_plan,
            "batch_hypercalls": self.batch_hypercalls,
            "verify_plan": self.verify_plan,
            "profile": self.profile,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FabricConfig":
        """Rebuild from a welcome frame; :class:`FabricError` on junk."""
        try:
            functions = data["functions"]
            return cls(
                kernel_version=data["kernel_version"],
                frames=data["frames"],
                strategy=dict(data["strategy"]),
                functions=tuple(functions) if functions is not None else None,
                total=data["total"],
                warm_boot=data["warm_boot"],
                delta_reset=data["delta_reset"],
                journal_budget=data["journal_budget"],
                verify_reset=data["verify_reset"],
                compiled_plan=data["compiled_plan"],
                batch_hypercalls=data["batch_hypercalls"],
                verify_plan=data["verify_plan"],
                profile=data["profile"],
                timeout_s=data["timeout_s"],
            )
        except (KeyError, TypeError) as exc:
            raise FabricError(f"malformed fabric config: {exc!r}") from exc

    def recipe(self) -> wire.SuiteRecipe:
        """The suite recipe a worker regenerates its spec table from.

        Model and dictionaries are the process-wide default singletons,
        so the worker-side suite memo hits across leases and reconnects;
        the strategy comes back through the combinator registry
        (:class:`FabricError` for an unknown name).
        """
        try:
            strategy = strategy_from_dict(self.strategy)
        except (ValueError, TypeError) as exc:
            raise FabricError(str(exc)) from exc
        return wire.SuiteRecipe(
            model=_default_model(),
            dictionaries=_default_dictionaries(),
            strategy=strategy,
            functions=self.functions,
            total=self.total,
        )
