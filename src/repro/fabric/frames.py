"""Length-prefixed JSON frame codec for the fabric socket protocol.

One frame = a 4-byte big-endian payload length followed by a UTF-8 JSON
object.  JSON rather than pickle because frames cross *host* boundaries:
a coordinator must be able to reject a malformed or hostile frame
without executing anything, and every field the protocol ships (spec
indices, encoded records, lease bookkeeping) is already JSON-shaped —
the record codec in :mod:`repro.fault.wire` is the log format.

Decoding is strict and total: a frame that is truncated, oversized, not
valid JSON, or not a JSON object raises :class:`FrameError` — the
caller (coordinator or worker agent) treats that as a protocol fault of
the *peer* and drops the connection, never the process (see the failure
matrix in docs/ARCHITECTURE.md).
"""

from __future__ import annotations

import asyncio
import json
import struct

#: Upper bound on a single frame's payload.  A lease of a few thousand
#: spec indices or a batch of encoded records is well under 1 MiB; 64
#: MiB leaves two orders of magnitude of headroom while still bounding
#: what a garbage length prefix (or a hostile client) can make the
#: reader allocate.
MAX_FRAME = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(Exception):
    """A malformed, truncated, or oversized frame (peer protocol fault)."""


def encode_frame(message: dict) -> bytes:
    """One wire frame: 4-byte big-endian length + JSON payload."""
    try:
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"unserialisable frame payload: {exc}") from exc
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds MAX_FRAME")
    return _LENGTH.pack(len(payload)) + payload


def decode_frame_body(payload: bytes) -> dict:
    """Decode a frame payload; :class:`FrameError` on anything malformed."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError(
            f"frame payload is {type(message).__name__}, expected an object"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from a stream.

    Returns None on a clean EOF at a frame boundary (the peer closed
    between messages — a normal goodbye).  EOF *inside* a frame, a
    length prefix beyond :data:`MAX_FRAME`, or an undecodable payload
    raise :class:`FrameError`.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            f"connection closed mid-prefix ({len(exc.partial)}/4 bytes)"
        ) from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_frame_body(payload)
