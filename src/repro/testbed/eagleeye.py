"""EagleEye TSP static configuration.

Five partitions on a 250 ms major frame (Fig. 6):

====  =========  ======  =============================================
id    name       kind    role
====  =========  ======  =============================================
0     FDIR       system  fault detection/isolation/recovery + testing
1     AOCS       normal  attitude and orbit control
2     PLATFORM   normal  platform data handling
3     PAYLOAD    normal  earth-observation payload
4     IO         normal  I/O concentrator / telemetry downlink
====  =========  ======  =============================================

Each partition owns one 256 KiB memory area; channels connect AOCS
telemetry (sampling) to PLATFORM and FDIR, PLATFORM commands (queuing)
to PAYLOAD, PAYLOAD data (queuing) to IO, and FDIR events (queuing) to
IO.  Plan 0 is the nominal round-robin; plan 1 is a maintenance plan
with a double-length FDIR slot and the payload parked.
"""

from __future__ import annotations

from repro.sparc.memory import Access
from repro.xm import rc
from repro.xm.config import (
    ChannelConfig,
    MemoryAreaConfig,
    PartitionConfig,
    PlanConfig,
    PortConfig,
    SlotConfig,
    XMConfig,
)

#: The paper's cyclic major frame.
EAGLEEYE_MAJOR_FRAME_US = 250_000

#: Partition identifiers.
PARTITION_IDS = {"FDIR": 0, "AOCS": 1, "PLATFORM": 2, "PAYLOAD": 3, "IO": 4}

_KERNEL_BASE = 0x4000_0000
_PART_BASE = 0x4010_0000
_PART_SIZE = 0x4_0000  # 256 KiB
_SLOT_US = 50_000


def partition_area_base(ident: int) -> int:
    """Base address of a partition's memory area."""
    return _PART_BASE + ident * _PART_SIZE


def eagleeye_config() -> XMConfig:
    """Build a fresh EagleEye configuration."""
    config = XMConfig()
    config.kernel_areas.append(
        MemoryAreaConfig("xm_kernel", _KERNEL_BASE, 0x4_0000, Access.RWX)
    )

    channels = [
        ChannelConfig("CH_TM_AOCS", "sampling", max_message_size=64, refresh_us=300_000),
        ChannelConfig("CH_CMD", "queuing", max_message_size=32, depth=8),
        ChannelConfig("CH_PL_DATA", "queuing", max_message_size=128, depth=16),
        ChannelConfig("CH_FDIR_EVT", "queuing", max_message_size=48, depth=8),
    ]
    config.channels.extend(channels)

    def area(name: str, ident: int) -> tuple[MemoryAreaConfig, ...]:
        return (
            MemoryAreaConfig(
                f"{name.lower()}_ram", partition_area_base(ident), _PART_SIZE, Access.RWX
            ),
        )

    config.partitions.append(
        PartitionConfig(
            ident=0,
            name="FDIR",
            system=True,
            memory_areas=area("FDIR", 0),
            ports=(
                PortConfig("TM_MON", "CH_TM_AOCS", rc.XM_DESTINATION_PORT),
                PortConfig("FDIR_EVT", "CH_FDIR_EVT", rc.XM_SOURCE_PORT),
            ),
            io_grants=("apbuart0",),
        )
    )
    config.partitions.append(
        PartitionConfig(
            ident=1,
            name="AOCS",
            memory_areas=area("AOCS", 1),
            ports=(PortConfig("TM_OUT", "CH_TM_AOCS", rc.XM_SOURCE_PORT),),
        )
    )
    config.partitions.append(
        PartitionConfig(
            ident=2,
            name="PLATFORM",
            memory_areas=area("PLATFORM", 2),
            ports=(
                PortConfig("TM_IN", "CH_TM_AOCS", rc.XM_DESTINATION_PORT),
                PortConfig("CMD_OUT", "CH_CMD", rc.XM_SOURCE_PORT),
            ),
        )
    )
    config.partitions.append(
        PartitionConfig(
            ident=3,
            name="PAYLOAD",
            memory_areas=area("PAYLOAD", 3),
            ports=(
                PortConfig("CMD_IN", "CH_CMD", rc.XM_DESTINATION_PORT),
                PortConfig("PL_OUT", "CH_PL_DATA", rc.XM_SOURCE_PORT),
            ),
        )
    )
    config.partitions.append(
        PartitionConfig(
            ident=4,
            name="IO",
            memory_areas=area("IO", 4),
            ports=(
                PortConfig("PL_IN", "CH_PL_DATA", rc.XM_DESTINATION_PORT),
                PortConfig("EVT_IN", "CH_FDIR_EVT", rc.XM_DESTINATION_PORT),
            ),
        )
    )

    nominal_slots = tuple(
        SlotConfig(slot_id=i, partition_id=i, start_us=i * _SLOT_US, duration_us=_SLOT_US)
        for i in range(5)
    )
    config.plans.append(
        PlanConfig(ident=0, major_frame_us=EAGLEEYE_MAJOR_FRAME_US, slots=nominal_slots)
    )
    maintenance_slots = (
        SlotConfig(slot_id=0, partition_id=0, start_us=0, duration_us=2 * _SLOT_US),
        SlotConfig(slot_id=1, partition_id=1, start_us=2 * _SLOT_US, duration_us=_SLOT_US),
        SlotConfig(slot_id=2, partition_id=2, start_us=3 * _SLOT_US, duration_us=_SLOT_US),
        SlotConfig(slot_id=3, partition_id=4, start_us=4 * _SLOT_US, duration_us=_SLOT_US),
    )
    config.plans.append(
        PlanConfig(ident=1, major_frame_us=EAGLEEYE_MAJOR_FRAME_US, slots=maintenance_slots)
    )
    return config
