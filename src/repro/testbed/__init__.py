"""The EagleEye TSP testbed.

EagleEye is ESA's reference spacecraft mission — a representative earth
observation satellite used to validate new on-board technologies.  Its
TSP incarnation runs XtratuM on a LEON3 with five partitions over a
250 ms major frame; the FDIR partition is the only *system* partition
and therefore hosts the fault placeholders during robustness campaigns
(Fig. 6 of the paper).
"""

from repro.testbed.eagleeye import (
    EAGLEEYE_MAJOR_FRAME_US,
    PARTITION_IDS,
    eagleeye_config,
)
from repro.testbed.builder import build_eagleeye_image, build_system

__all__ = [
    "EAGLEEYE_MAJOR_FRAME_US",
    "PARTITION_IDS",
    "eagleeye_config",
    "build_eagleeye_image",
    "build_system",
]
