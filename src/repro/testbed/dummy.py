"""The plain dummy-partition testbed of §III.

Before the EagleEye case study, the methodology is described against "an
IMA testbed with dummy partitions defined by the separation kernel under
test" — a minimal three-partition system whose only purpose is hosting
the test partition.  This module provides that testbed: a system test
partition (the fault-placeholder host) plus two idle dummies, on a
short 30 ms major frame for fast campaigns.
"""

from __future__ import annotations

from typing import Callable

from repro.sparc.memory import Access
from repro.tsim.image import PartitionImage, SystemImage
from repro.tsim.machine import TargetMachine
from repro.tsim.simulator import Simulator
from repro.xal.app import PartitionApplication
from repro.xal.runtime import Libxm
from repro.xm.config import (
    MemoryAreaConfig,
    PartitionConfig,
    PlanConfig,
    SlotConfig,
    XMConfig,
)
from repro.xm.kernel import Kernel
from repro.xm.vulns import VULNERABLE_VERSION

#: Major frame of the dummy testbed.
DUMMY_MAJOR_FRAME_US = 30_000
_PART_BASE = 0x4010_0000
_PART_SIZE = 0x4_0000


def dummy_config() -> XMConfig:
    """Three partitions, no channels, one 3-slot plan."""
    config = XMConfig()
    config.kernel_areas.append(
        MemoryAreaConfig("xm_kernel", 0x4000_0000, 0x4_0000, Access.RWX)
    )
    names = ["TEST", "DUMMY1", "DUMMY2"]
    for ident, name in enumerate(names):
        config.partitions.append(
            PartitionConfig(
                ident=ident,
                name=name,
                system=(ident == 0),
                memory_areas=(
                    MemoryAreaConfig(
                        f"{name.lower()}_ram",
                        _PART_BASE + ident * _PART_SIZE,
                        _PART_SIZE,
                        Access.RWX,
                    ),
                ),
            )
        )
    slots = tuple(
        SlotConfig(slot_id=i, partition_id=i, start_us=i * 10_000, duration_us=10_000)
        for i in range(3)
    )
    config.plans.append(
        PlanConfig(ident=0, major_frame_us=DUMMY_MAJOR_FRAME_US, slots=slots)
    )
    return config


class DummyApp(PartitionApplication):
    """A partition that just burns a little CPU each slot."""

    def on_step(self, ctx, xm: Libxm) -> None:  # noqa: ANN001
        ctx.consume(200)


class TestHostApp(PartitionApplication):
    """The dummy testbed's fault-placeholder host."""

    __test__ = False  # keep pytest from collecting this library class

    def __init__(self, payload=None) -> None:  # noqa: ANN001
        super().__init__()
        self.payload = payload

    def on_step(self, ctx, xm: Libxm) -> None:  # noqa: ANN001
        ctx.consume(100)
        if self.payload is not None:
            self.payload(ctx, xm)


def build_dummy_system(
    fdir_payload: Callable | None = None,
    kernel_version: str = VULNERABLE_VERSION,
) -> Simulator:
    """Pack and return an unbooted dummy-testbed simulator.

    The payload parameter keeps the EagleEye builder's name so the two
    factories are interchangeable for the test executor.
    """
    config = dummy_config()

    def kernel_factory(machine: TargetMachine, sim: Simulator) -> Kernel:
        apps = {
            "TEST": lambda: TestHostApp(payload=fdir_payload),
            "DUMMY1": DummyApp,
            "DUMMY2": DummyApp,
        }
        return Kernel(machine, sim, config, apps, version=kernel_version)

    image = SystemImage(kernel_factory=kernel_factory)
    for name in ("TEST", "DUMMY1", "DUMMY2"):
        image.add_partition(PartitionImage(name, app_factory=dict))
    image.metadata["testbed"] = "dummy partitions"
    return Simulator(TargetMachine.leon3(), image)
