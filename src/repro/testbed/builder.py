"""System integration: pack kernel + partitions into bootable images.

This is the paper's step 4 ("the test partition is 'packed' with the
rest of the partitions and the TSP system is run on the target-system
simulator"): :func:`build_eagleeye_image` produces a
:class:`~repro.tsim.image.SystemImage` for the EagleEye testbed, with an
optional FDIR payload (the fault placeholder), and :func:`build_system`
pairs it with a fresh LEON3 board.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.testbed.eagleeye import eagleeye_config
from repro.testbed.partitions import AocsApp, FdirApp, IoApp, PayloadApp, PlatformApp
from repro.tsim.image import PartitionImage, SystemImage
from repro.tsim.machine import TargetMachine
from repro.tsim.simulator import Simulator
from repro.xm.config import XMConfig
from repro.xm.kernel import Kernel
from repro.xm.vulns import VULNERABLE_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xal.runtime import Libxm
    from repro.xm.sched import SlotContext

FdirPayload = Callable[["SlotContext", "Libxm"], None]


def build_eagleeye_image(
    fdir_payload: FdirPayload | None = None,
    kernel_version: str = VULNERABLE_VERSION,
    config: XMConfig | None = None,
) -> SystemImage:
    """Pack the EagleEye system, optionally with a fault placeholder.

    The partition application factories live in the image's partition
    table; the kernel factory pulls them from there at boot, so swapping
    one partition's software means repacking only that entry.
    """
    cfg = config if config is not None else eagleeye_config()

    def kernel_factory(machine: TargetMachine, sim: Simulator) -> Kernel:
        apps = {
            name: part.app_factory for name, part in image.partitions.items()
        }
        return Kernel(machine, sim, cfg, apps, version=kernel_version)

    image = SystemImage(kernel_factory=kernel_factory)
    image.add_partition(
        PartitionImage("FDIR", app_factory=lambda: FdirApp(payload=fdir_payload))
    )
    image.add_partition(PartitionImage("AOCS", app_factory=AocsApp))
    image.add_partition(PartitionImage("PLATFORM", app_factory=PlatformApp))
    image.add_partition(PartitionImage("PAYLOAD", app_factory=PayloadApp))
    image.add_partition(PartitionImage("IO", app_factory=IoApp))
    image.metadata["testbed"] = "EagleEye TSP"
    image.metadata["kernel_version"] = kernel_version
    return image


def build_system(
    fdir_payload: FdirPayload | None = None,
    kernel_version: str = VULNERABLE_VERSION,
    config: XMConfig | None = None,
    event_budget: int | None = None,
) -> Simulator:
    """Build board + image and return an unbooted simulator."""
    machine = TargetMachine.leon3()
    image = build_eagleeye_image(fdir_payload, kernel_version, config)
    if event_budget is None:
        return Simulator(machine, image)
    return Simulator(machine, image, event_budget=event_budget)
