"""System integration: pack kernel + partitions into bootable images.

This is the paper's step 4 ("the test partition is 'packed' with the
rest of the partitions and the TSP system is run on the target-system
simulator"): :func:`build_eagleeye_image` produces a
:class:`~repro.tsim.image.SystemImage` for the EagleEye testbed, with an
optional FDIR payload (the fault placeholder), and :func:`build_system`
pairs it with a fresh LEON3 board.

Everything packed here is built from plain classes and bound methods —
no closures — so a booted EagleEye system is picklable end to end.  The
warm-boot executor depends on that: it snapshots one booted system and
restores it per test (see :mod:`repro.tsim.simulator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.testbed.eagleeye import eagleeye_config
from repro.testbed.partitions import AocsApp, FdirApp, IoApp, PayloadApp, PlatformApp
from repro.tsim.image import PartitionImage, SystemImage
from repro.tsim.machine import TargetMachine
from repro.tsim.simulator import Simulator
from repro.xm.config import XMConfig
from repro.xm.kernel import Kernel
from repro.xm.vulns import VULNERABLE_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xal.runtime import Libxm
    from repro.xm.sched import SlotContext

FdirPayload = Callable[["SlotContext", "Libxm"], None]

#: :attr:`SystemImage.runtime_hooks` key of the FDIR payload slot.
FDIR_SLOT_HOOK = "fdir_payload_slot"


@dataclass
class PayloadSlot:
    """Indirection between the packed FDIR partition and its payload.

    The slot — not the payload itself — is wired into the image: the
    FDIR app factory is :meth:`make_app`, and the app invokes the slot,
    which forwards to whatever :attr:`payload` currently holds.  Because
    the slot travels *inside* the image (and therefore inside simulator
    snapshots and partition-reset rebuilds), replacing :attr:`payload`
    on a restored system retargets every FDIR instance at once.
    """

    payload: FdirPayload | None = None

    def __call__(self, ctx: "SlotContext", xm: "Libxm") -> None:
        """Forward one fault-placeholder invocation to the payload."""
        if self.payload is not None:
            self.payload(ctx, xm)

    def make_app(self) -> FdirApp:
        """Partition app factory: an FDIR instance driven by this slot."""
        return FdirApp(payload=self)


@dataclass
class EagleEyeKernelFactory:
    """Picklable kernel factory bound to one configuration + version."""

    config: XMConfig
    kernel_version: str
    image: SystemImage | None = field(default=None, repr=False)

    def __call__(self, machine: TargetMachine, sim: Simulator) -> Kernel:
        """Instantiate the kernel with the image's partition software."""
        if self.image is None:
            raise RuntimeError("kernel factory not bound to an image")
        apps = {
            name: part.app_factory for name, part in self.image.partitions.items()
        }
        return Kernel(machine, sim, self.config, apps, version=self.kernel_version)


def build_eagleeye_image(
    fdir_payload: FdirPayload | None = None,
    kernel_version: str = VULNERABLE_VERSION,
    config: XMConfig | None = None,
) -> SystemImage:
    """Pack the EagleEye system, optionally with a fault placeholder.

    The partition application factories live in the image's partition
    table; the kernel factory pulls them from there at boot, so swapping
    one partition's software means repacking only that entry.  When a
    payload is given it is mounted behind a :class:`PayloadSlot`
    published as ``runtime_hooks["fdir_payload_slot"]``.
    """
    cfg = config if config is not None else eagleeye_config()
    factory = EagleEyeKernelFactory(config=cfg, kernel_version=kernel_version)
    image = SystemImage(kernel_factory=factory)
    factory.image = image
    if fdir_payload is None:
        image.add_partition(PartitionImage("FDIR", app_factory=FdirApp))
    else:
        slot = PayloadSlot(payload=fdir_payload)
        image.add_partition(PartitionImage("FDIR", app_factory=slot.make_app))
        image.runtime_hooks[FDIR_SLOT_HOOK] = slot
    image.add_partition(PartitionImage("AOCS", app_factory=AocsApp))
    image.add_partition(PartitionImage("PLATFORM", app_factory=PlatformApp))
    image.add_partition(PartitionImage("PAYLOAD", app_factory=PayloadApp))
    image.add_partition(PartitionImage("IO", app_factory=IoApp))
    image.metadata["testbed"] = "EagleEye TSP"
    image.metadata["kernel_version"] = kernel_version
    return image


def build_system(
    fdir_payload: FdirPayload | None = None,
    kernel_version: str = VULNERABLE_VERSION,
    config: XMConfig | None = None,
    event_budget: int | None = None,
) -> Simulator:
    """Build board + image and return an unbooted simulator."""
    machine = TargetMachine.leon3()
    image = build_eagleeye_image(fdir_payload, kernel_version, config)
    if event_budget is None:
        return Simulator(machine, image)
    return Simulator(machine, image, event_budget=event_budget)
