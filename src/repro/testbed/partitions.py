"""EagleEye on-board software: the five partition applications.

Representative behaviour, not flight code: AOCS publishes attitude
telemetry every slot, PLATFORM consumes it and issues payload commands,
PAYLOAD produces data frames, IO drains them to the (simulated)
downlink, and FDIR monitors system health.  The FDIR application also
carries the *fault placeholder* hook: in campaign mode the framework
hands it a payload object invoked once per major frame — the paper's
test-partition mechanism.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Callable

from repro.xal.app import PartitionApplication
from repro.xal.runtime import Libxm
from repro.xm import rc

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.sched import SlotContext


class AocsApp(PartitionApplication):
    """Attitude and orbit control: publishes sampled telemetry."""

    def on_boot(self, ctx: "SlotContext", xm: Libxm) -> None:
        self.port = xm.create_sampling_port("TM_OUT", 64, rc.XM_SOURCE_PORT)
        self.q_angle = 0

    def on_step(self, ctx: "SlotContext", xm: Libxm) -> None:
        code, now = xm.get_time(rc.XM_HW_CLOCK)
        del code
        # A toy attitude integrator standing in for the AOCS loop.
        self.q_angle = (self.q_angle + 7) % 3600
        ctx.consume(800)
        frame = struct.pack(">qII", now, self.q_angle, self.steps)
        frame += bytes(64 - len(frame))
        if self.port >= 0:
            xm.write_sampling_message(self.port, frame)


class PlatformApp(PartitionApplication):
    """Platform data handling: consumes telemetry, issues commands."""

    def on_boot(self, ctx: "SlotContext", xm: Libxm) -> None:
        self.tm_port = xm.create_sampling_port("TM_IN", 64, rc.XM_DESTINATION_PORT, 300_000)
        self.cmd_port = xm.create_queuing_port("CMD_OUT", 8, 32, rc.XM_SOURCE_PORT)
        self.stale_frames = 0

    def on_step(self, ctx: "SlotContext", xm: Libxm) -> None:
        ctx.consume(500)
        if self.tm_port >= 0:
            code, data, valid = xm.read_sampling_message(self.tm_port, 64)
            if code > 0 and not valid:
                self.stale_frames += 1
            del data
        if self.cmd_port >= 0 and self.steps % 2 == 0:
            cmd = struct.pack(">II", 0xC0DE, self.steps)
            xm.send_queuing_message(self.cmd_port, cmd)


class PayloadApp(PartitionApplication):
    """Earth-observation payload: consumes commands, produces frames."""

    def on_boot(self, ctx: "SlotContext", xm: Libxm) -> None:
        self.cmd_port = xm.create_queuing_port("CMD_IN", 8, 32, rc.XM_DESTINATION_PORT)
        self.data_port = xm.create_queuing_port("PL_OUT", 16, 128, rc.XM_SOURCE_PORT)
        self.frames = 0

    def on_step(self, ctx: "SlotContext", xm: Libxm) -> None:
        ctx.consume(1500)
        if self.cmd_port >= 0:
            code, _data, _rest = xm.receive_queuing_message(self.cmd_port, 32)
            del code
        if self.data_port >= 0:
            self.frames += 1
            frame = struct.pack(">IIq", 0xDA7A, self.frames, ctx.now_us)
            frame += bytes(128 - len(frame))
            xm.send_queuing_message(self.data_port, frame)


class IoApp(PartitionApplication):
    """I/O concentrator: drains payload data and FDIR events."""

    def on_boot(self, ctx: "SlotContext", xm: Libxm) -> None:
        self.pl_port = xm.create_queuing_port("PL_IN", 16, 128, rc.XM_DESTINATION_PORT)
        self.evt_port = xm.create_queuing_port("EVT_IN", 8, 48, rc.XM_DESTINATION_PORT)
        self.downlinked = 0

    def on_step(self, ctx: "SlotContext", xm: Libxm) -> None:
        ctx.consume(400)
        if self.pl_port >= 0:
            while True:
                code, _data, remaining = xm.receive_queuing_message(self.pl_port, 128)
                if code <= 0:
                    break
                self.downlinked += 1
                if remaining == 0:
                    break
        if self.evt_port >= 0:
            code, data, _rest = xm.receive_queuing_message(self.evt_port, 48)
            if code > 0:
                ctx.console(f"IO: FDIR event downlinked ({len(data)} bytes)")


class FdirApp(PartitionApplication):
    """FDIR system partition — the campaign's test partition.

    ``payload`` is the fault-placeholder hook: a callable invoked once
    per slot (FDIR has one slot per major frame, satisfying the paper's
    "test call invoked at least once per major frame").  Exceptions that
    mean "the hypercall did not return" propagate: the partition really
    stops, exactly like its C counterpart.
    """

    def __init__(self, payload: Callable[["SlotContext", Libxm], None] | None = None) -> None:
        super().__init__()
        self.payload = payload
        self.hm_events_seen = 0

    def on_boot(self, ctx: "SlotContext", xm: Libxm) -> None:
        self.tm_port = xm.create_sampling_port("TM_MON", 64, rc.XM_DESTINATION_PORT, 300_000)
        self.evt_port = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)

    def on_step(self, ctx: "SlotContext", xm: Libxm) -> None:
        ctx.consume(300)
        if self.payload is not None:
            self.payload(ctx, xm)
            return
        # Nominal FDIR duty: watch the health monitor and report.
        code, status = xm.hm_status()
        if code == rc.XM_OK and status is not None and status.unread_events:
            count, entries = xm.hm_read(min(status.unread_events, 8))
            if count > 0:
                self.hm_events_seen += count
                report = struct.pack(">II", 0xFD1B, count) + bytes(40)
                xm.send_queuing_message(self.evt_port, report[:48])
