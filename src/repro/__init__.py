"""repro — separation kernel robustness testing (XtratuM case study).

A full-system reproduction of *"Separation Kernel Robustness Testing:
The XtratuM Case Study"* (Grixti et al., CLUSTER 2016):

- :mod:`repro.xtypes` — XtratuM interface types (Table I).
- :mod:`repro.sparc` / :mod:`repro.tsim` — the LEON3 board and TSIM-like
  target simulator substrate.
- :mod:`repro.xm` — the XtratuM separation kernel model (61 hypercalls,
  scheduler, memory manager, IPC, health monitor, traces, timers),
  including the historical defects the paper uncovered.
- :mod:`repro.xal` / :mod:`repro.testbed` — partition runtime and the
  EagleEye TSP testbed.
- :mod:`repro.fault` — the paper's contribution: the data-type fault
  model robustness-testing toolset (XML-driven test generation, mutant
  sources, campaign execution, CRASH-scale classification, issue
  clustering, reporting).

Quickstart::

    from repro.fault import Campaign
    campaign = Campaign.paper_campaign()
    result = campaign.run()
    print(result.table3())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
