"""Dashboard export: the warehouse's state as one HTML page (+ JSON).

The JSON export is the machine-readable twin (same dict the HTML is
rendered from), so CI can both archive a human-browsable artifact and
assert on its numbers.  The page is fully self-contained — inline CSS,
no scripts, no external assets — because it is uploaded as a build
artifact and opened from disk.

Rendering rules: counts are horizontal single-hue bars with the count
as a text label (identity comes from the row label, so no legend), the
drift table marks drifted specs with a textual chip rather than color
alone, and dark mode re-derives its colors instead of inverting.
"""

from __future__ import annotations

import html
import json
from pathlib import Path

from repro.results.queries import drift_audit, flaky_specs
from repro.results.warehouse import ResultsWarehouse

_CSS = """
:root {
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --series-1: #2a78d6;
  --status-critical: #d03b3b;
  --status-good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --surface-2: #383835;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --series-1: #3987e5;
  }
}
body {
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
  max-width: 72rem; padding: 0 1rem;
}
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: 0.5rem 0; }
th, td { text-align: left; padding: 0.3rem 0.8rem 0.3rem 0;
         border-bottom: 1px solid var(--surface-2); }
th { color: var(--text-secondary); font-weight: 600; }
td.num, th.num { text-align: right; }
.muted { color: var(--text-secondary); }
.bar-row { display: flex; align-items: center; gap: 0.5rem; margin: 2px 0; }
.bar-label { flex: 0 0 14rem; color: var(--text-secondary);
             overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.bar-track { flex: 1; }
.bar { height: 10px; background: var(--series-1);
       border-radius: 0 4px 4px 0; min-width: 2px; }
.bar-value { flex: 0 0 4rem; color: var(--text-primary); }
.chip { border-radius: 4px; padding: 0 0.4rem; font-size: 0.85em;
        color: var(--surface-1); }
.chip.drift { background: var(--status-critical); }
.chip.stable { background: var(--status-good); }
"""


def dashboard_data(
    warehouse: ResultsWarehouse, top_flaky: int = 20
) -> dict:
    """Everything the dashboard shows, as one JSON-serialisable dict."""
    campaigns = []
    for info in warehouse.campaigns():
        campaigns.append(
            {
                "campaign_id": info.campaign_id,
                "kernel_version": info.kernel_version,
                "frames": info.frames,
                "strategy": info.strategy,
                "source_path": info.source_path,
                "host": info.host,
                "ingested_at": info.ingested_at,
                "records": info.records,
                "execution_stats": info.execution_stats,
                "verdicts": warehouse.verdict_summary(info.campaign_id),
            }
        )
    drifted = drift_audit(warehouse)
    flaky = flaky_specs(warehouse, top=top_flaky)
    entry = lambda e: {  # noqa: E731 - tiny row shaper used twice
        "test_id": e.test_id,
        "function": e.function,
        "category": e.category,
        "runs": e.runs,
        "verdicts": list(e.verdicts),
        "transitions": e.transitions,
        "arbitrated_runs": e.arbitrated_runs,
        "total_attempts": e.total_attempts,
        "flaky_score": e.flaky_score,
    }
    return {
        "schema": 1,
        "total_rows": warehouse.row_count(),
        "campaigns": campaigns,
        "drift": [entry(e) for e in drifted],
        "flaky": [entry(e) for e in flaky],
    }


def _bars(verdicts: dict[str, int]) -> str:
    """Single-hue horizontal count bars with direct text labels."""
    if not verdicts:
        return '<p class="muted">no records</p>'
    peak = max(verdicts.values())
    rows = []
    for verdict, count in verdicts.items():
        width = max(1.0, 100.0 * count / peak)
        rows.append(
            f'<div class="bar-row" title="{html.escape(verdict)}: {count}">'
            f'<span class="bar-label">{html.escape(verdict)}</span>'
            f'<span class="bar-track">'
            f'<div class="bar" style="width:{width:.1f}%"></div></span>'
            f'<span class="bar-value">{count}</span></div>'
        )
    return "\n".join(rows)


def _drift_table(entries: list[dict], caption: str) -> str:
    if not entries:
        return f'<p class="muted">{html.escape(caption)}: none</p>'
    rows = []
    for e in entries:
        chip = (
            '<span class="chip drift">drifted</span>'
            if e["transitions"]
            else '<span class="chip stable">stable</span>'
        )
        rows.append(
            "<tr>"
            f'<td>{html.escape(e["test_id"])}</td>'
            f'<td>{html.escape(e["function"])}</td>'
            f'<td>{chip}</td>'
            f'<td>{html.escape(" → ".join(e["verdicts"]))}</td>'
            f'<td class="num">{e["runs"]}</td>'
            f'<td class="num">{e["transitions"]}</td>'
            f'<td class="num">{e["arbitrated_runs"]}</td>'
            f'<td class="num">{e["flaky_score"]:.2f}</td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>Spec</th><th>Hypercall</th><th>State</th>"
        '<th>Verdict history</th><th class="num">Runs</th>'
        '<th class="num">Churn</th><th class="num">Arbitrated</th>'
        '<th class="num">Score</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>'
    )


def render_html(data: dict) -> str:
    """The self-contained dashboard page for a :func:`dashboard_data` dict."""
    sections = [
        "<!doctype html><html lang=\"en\"><head><meta charset=\"utf-8\">",
        "<title>Campaign results warehouse</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>Campaign results warehouse</h1>",
        f'<p class="muted">{data["total_rows"]} result rows across '
        f'{len(data["campaigns"])} campaign(s)</p>',
        "<h2>Campaigns</h2>",
        "<table><thead><tr><th>Campaign</th><th>Kernel</th>"
        '<th class="num">Frames</th><th>Strategy</th><th>Host</th>'
        '<th>Ingested</th><th class="num">Records</th></tr></thead><tbody>',
    ]
    for c in data["campaigns"]:
        sections.append(
            "<tr>"
            f'<td>{html.escape(c["campaign_id"])}</td>'
            f'<td>{html.escape(c["kernel_version"] or "-")}</td>'
            f'<td class="num">{c["frames"]}</td>'
            f'<td>{html.escape(c["strategy"] or "-")}</td>'
            f'<td>{html.escape(c["host"] or "-")}</td>'
            f'<td>{html.escape(c["ingested_at"])}</td>'
            f'<td class="num">{c["records"]}</td>'
            "</tr>"
        )
    sections.append("</tbody></table>")
    for c in data["campaigns"]:
        sections.append(
            f'<h2>Verdicts — {html.escape(c["campaign_id"])}</h2>'
        )
        sections.append(_bars(c["verdicts"]))
    sections.append("<h2>Drift audit</h2>")
    sections.append(_drift_table(data["drift"], "Drifted specs"))
    sections.append("<h2>Flaky specs</h2>")
    sections.append(_drift_table(data["flaky"], "Flaky specs"))
    sections.append("</body></html>")
    return "\n".join(sections)


def export(
    warehouse: ResultsWarehouse,
    html_path: str | Path | None = None,
    json_path: str | Path | None = None,
    top_flaky: int = 20,
) -> dict:
    """Write the HTML and/or JSON exports; returns the data dict."""
    data = dashboard_data(warehouse, top_flaky=top_flaky)
    if html_path is not None:
        Path(html_path).write_text(render_html(data), encoding="utf-8")
    if json_path is not None:
        Path(json_path).write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return data
