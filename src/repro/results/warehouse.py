"""The SQLite-backed, append-only campaign results warehouse.

Ingest streams records out of a :class:`~repro.fault.testlog.CampaignLog`
(or a JSONL path, including a live stream's partial file) into the
``results`` table.  Ingest is *idempotent by* ``(campaign_id,
test_id)``: re-running it over the same log — or over the grown log of
a resumed campaign — inserts exactly the rows that are new and never
mutates an existing one.  Rows are never updated or deleted through
this API; a campaign whose results changed is a *new* campaign id, and
the drift queries exist to compare the two.
"""

from __future__ import annotations

import json
import platform
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from repro.fault.testlog import CampaignLog
from repro.results import schema


@dataclass(frozen=True)
class IngestReport:
    """What one ingest pass did."""

    campaign_id: str
    records: int
    inserted: int

    @property
    def duplicates(self) -> int:
        """Records already present (idempotent re-ingest skips)."""
        return self.records - self.inserted


@dataclass(frozen=True)
class CampaignInfo:
    """One ``campaigns`` row."""

    campaign_id: str
    kernel_version: str
    frames: int
    strategy: str
    source_path: str
    host: str
    ingested_at: str
    records: int
    execution_stats: dict | None


class ResultsWarehouse:
    """A warehouse connection; context-manager friendly.

    ``path`` may be a filesystem path or ``":memory:"`` for tests.
    The schema is created on first open; a version stamp in the
    ``meta`` table guards against silently querying a future layout.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._db = sqlite3.connect(self.path)
        self._db.executescript(schema.DDL)
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._db.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(schema.SCHEMA_VERSION),),
            )
            self._db.commit()
        elif int(row[0]) != schema.SCHEMA_VERSION:
            raise RuntimeError(
                f"warehouse {self.path} has schema version {row[0]}, "
                f"this code expects {schema.SCHEMA_VERSION}"
            )

    def close(self) -> None:
        """Close the underlying connection."""
        self._db.close()

    def __enter__(self) -> "ResultsWarehouse":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The raw connection, for ad-hoc read queries."""
        return self._db

    # -- ingest --------------------------------------------------------------

    def ingest(
        self,
        log: CampaignLog | str | Path,
        campaign_id: str | None = None,
        strategy: str = "",
        host: str | None = None,
    ) -> IngestReport:
        """Append a campaign log's records; idempotent and resume-safe.

        ``log`` is a loaded :class:`CampaignLog` or a JSONL path (the
        path form also rehydrates the execution-stats trailer).  The
        default ``campaign_id`` is the log file's stem; in-memory logs
        must name one.  Records already in the warehouse under this
        campaign id are skipped, so re-ingesting a resumed or re-run
        log adds exactly the new rows.  Kernel/frames provenance is
        taken from the records themselves; ``strategy`` names the
        generator revision when the caller knows it.
        """
        source_path = ""
        if not isinstance(log, CampaignLog):
            source_path = str(log)
            if campaign_id is None:
                campaign_id = Path(log).stem
            log = CampaignLog.load(log)
        if campaign_id is None:
            raise ValueError("campaign_id is required for in-memory logs")
        kernel_version = next(
            (r.kernel_version for r in log if r.kernel_version), ""
        )
        frames = next((r.frames for r in log if r.frames), 0)
        stats_json = (
            json.dumps(log.execution_stats)
            if log.execution_stats is not None
            else None
        )
        cur = self._db.cursor()
        # First ingest wins the provenance row (append-only bookkeeping);
        # later passes over the same campaign only refresh the stats
        # trailer and the row count below.
        cur.execute(
            "INSERT INTO campaigns (campaign_id, kernel_version, frames,"
            " strategy, source_path, host, ingested_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)"
            " ON CONFLICT(campaign_id) DO NOTHING",
            (
                campaign_id,
                kernel_version,
                frames,
                strategy,
                source_path,
                host if host is not None else platform.node(),
                time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            ),
        )
        if stats_json is not None:
            cur.execute(
                "UPDATE campaigns SET execution_stats = ?"
                " WHERE campaign_id = ?",
                (stats_json, campaign_id),
            )
        placeholders = ", ".join("?" * schema.RESULT_COLUMNS)
        inserted = 0
        for record in log:
            cur.execute(
                f"INSERT OR IGNORE INTO results VALUES ({placeholders})",
                schema.result_row(campaign_id, record),
            )
            inserted += cur.rowcount
        cur.execute(
            "UPDATE campaigns SET records ="
            " (SELECT COUNT(*) FROM results WHERE campaign_id = ?)"
            " WHERE campaign_id = ?",
            (campaign_id, campaign_id),
        )
        self._db.commit()
        return IngestReport(
            campaign_id=campaign_id, records=len(log), inserted=inserted
        )

    # -- queries -------------------------------------------------------------

    def campaigns(self) -> list[CampaignInfo]:
        """All ingested campaigns, in ingest (rowid) order."""
        rows = self._db.execute(
            "SELECT campaign_id, kernel_version, frames, strategy,"
            " source_path, host, ingested_at, records, execution_stats"
            " FROM campaigns ORDER BY rowid"
        ).fetchall()
        return [
            CampaignInfo(
                campaign_id=r[0],
                kernel_version=r[1],
                frames=r[2],
                strategy=r[3],
                source_path=r[4],
                host=r[5],
                ingested_at=r[6],
                records=r[7],
                execution_stats=json.loads(r[8]) if r[8] else None,
            )
            for r in rows
        ]

    def campaign(self, campaign_id: str) -> CampaignInfo:
        """One campaign's provenance row; KeyError when absent."""
        for info in self.campaigns():
            if info.campaign_id == campaign_id:
                return info
        raise KeyError(f"campaign {campaign_id!r} is not in the warehouse")

    def row_count(self, campaign_id: str | None = None) -> int:
        """Result rows, total or for one campaign."""
        if campaign_id is None:
            return self._db.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        return self._db.execute(
            "SELECT COUNT(*) FROM results WHERE campaign_id = ?",
            (campaign_id,),
        ).fetchone()[0]

    def verdict_summary(self, campaign_id: str) -> dict[str, int]:
        """Verdict -> count histogram for one campaign."""
        rows = self._db.execute(
            "SELECT verdict, COUNT(*) FROM results WHERE campaign_id = ?"
            " GROUP BY verdict ORDER BY COUNT(*) DESC, verdict",
            (campaign_id,),
        ).fetchall()
        return dict(rows)

    def verdicts(self, campaign_id: str) -> dict[str, str]:
        """test_id -> verdict map for one campaign."""
        rows = self._db.execute(
            "SELECT test_id, verdict FROM results WHERE campaign_id = ?",
            (campaign_id,),
        ).fetchall()
        return dict(rows)
