"""Campaign results warehouse: queryable store over campaign logs.

Campaign execution produces streaming JSONL logs and a static report;
this package is the serving surface on top of them — a SQLite-backed,
append-only warehouse (:mod:`repro.results.warehouse`) with
cross-campaign diffing, per-spec drift audits and flaky-spec scoring
(:mod:`repro.results.queries`) and an HTML/JSON dashboard export
(:mod:`repro.results.dashboard`).  The ``repro-campaign results``
subcommands front all of it.
"""

from repro.results.queries import (
    CampaignDiff,
    DriftEntry,
    VerdictChange,
    diff_campaigns,
    drift_audit,
    flaky_specs,
)
from repro.results.schema import verdict_of
from repro.results.warehouse import CampaignInfo, IngestReport, ResultsWarehouse

__all__ = [
    "CampaignDiff",
    "CampaignInfo",
    "DriftEntry",
    "IngestReport",
    "ResultsWarehouse",
    "VerdictChange",
    "diff_campaigns",
    "drift_audit",
    "flaky_specs",
    "verdict_of",
]
