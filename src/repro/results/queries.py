"""Cross-campaign queries: verdict diffing, drift audits, flaky scoring.

Three questions the flat report cannot answer:

- **diff** — which specs changed verdict between two campaigns (two
  kernel versions, two generator revisions, or an uninterrupted run
  versus its interrupted+resumed twin — the latter must be empty).
- **drift** — per spec, how its verdict churned across *all* runs of
  the same suite: the verdict sequence in ingest order, the number of
  transitions, and the distinct verdicts seen.
- **flaky score** — a 0..1 ranking combining verdict instability with
  the arbitration pressure PR 4 records (a spec that needed
  retry-with-quorum runs is suspect even when its final verdicts
  agree): ``0.6 * transitions/(runs-1) + 0.4 * min(1, extra_attempts/runs)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.results.warehouse import ResultsWarehouse


@dataclass(frozen=True)
class VerdictChange:
    """One spec whose verdict differs between two campaigns."""

    test_id: str
    function: str
    category: str
    left: str
    right: str


@dataclass(frozen=True)
class CampaignDiff:
    """Outcome of diffing two campaigns' verdicts spec by spec."""

    left_id: str
    right_id: str
    common: int
    only_left: int
    only_right: int
    changed: list[VerdictChange]

    @property
    def drifted(self) -> bool:
        """Whether any shared spec changed verdict."""
        return bool(self.changed)

    def summary(self) -> str:
        """One-line human summary (the CLI's headline)."""
        return (
            f"{self.left_id} vs {self.right_id}: {self.common} shared specs, "
            f"{len(self.changed)} verdict change(s), "
            f"{self.only_left} only-left, {self.only_right} only-right"
        )


def diff_campaigns(
    warehouse: ResultsWarehouse, left_id: str, right_id: str
) -> CampaignDiff:
    """Spec-by-spec verdict diff between two ingested campaigns."""
    # Touch both provenance rows so an unknown id raises KeyError
    # instead of reporting an empty (and misleading) zero-drift diff.
    warehouse.campaign(left_id)
    warehouse.campaign(right_id)
    db = warehouse.connection
    changed = [
        VerdictChange(*row)
        for row in db.execute(
            "SELECT l.test_id, l.function, l.category, l.verdict, r.verdict"
            " FROM results l JOIN results r ON l.test_id = r.test_id"
            " WHERE l.campaign_id = ? AND r.campaign_id = ?"
            "   AND l.verdict != r.verdict"
            " ORDER BY l.test_id",
            (left_id, right_id),
        )
    ]
    common = db.execute(
        "SELECT COUNT(*)"
        " FROM results l JOIN results r ON l.test_id = r.test_id"
        " WHERE l.campaign_id = ? AND r.campaign_id = ?",
        (left_id, right_id),
    ).fetchone()[0]
    only = {
        side: db.execute(
            "SELECT COUNT(*) FROM results a"
            " WHERE a.campaign_id = ? AND NOT EXISTS"
            "  (SELECT 1 FROM results b"
            "   WHERE b.campaign_id = ? AND b.test_id = a.test_id)",
            ids,
        ).fetchone()[0]
        for side, ids in (
            ("left", (left_id, right_id)),
            ("right", (right_id, left_id)),
        )
    }
    return CampaignDiff(
        left_id=left_id,
        right_id=right_id,
        common=common,
        only_left=only["left"],
        only_right=only["right"],
        changed=changed,
    )


@dataclass(frozen=True)
class DriftEntry:
    """Verdict history of one spec across campaigns (ingest order)."""

    test_id: str
    function: str
    category: str
    runs: int
    verdicts: tuple[str, ...]
    total_attempts: int
    arbitrated_runs: int

    @property
    def transitions(self) -> int:
        """Adjacent verdict changes across the run sequence (churn)."""
        return sum(
            1 for a, b in zip(self.verdicts, self.verdicts[1:]) if a != b
        )

    @property
    def distinct_verdicts(self) -> tuple[str, ...]:
        """The distinct verdicts seen, in first-appearance order."""
        seen: dict[str, None] = {}
        for verdict in self.verdicts:
            seen.setdefault(verdict)
        return tuple(seen)

    @property
    def drifted(self) -> bool:
        """Whether the verdict ever changed between runs."""
        return len(self.distinct_verdicts) > 1

    @property
    def flaky_score(self) -> float:
        """0..1: verdict instability blended with arbitration pressure."""
        instability = (
            self.transitions / (self.runs - 1) if self.runs > 1 else 0.0
        )
        extra = self.total_attempts - self.runs
        arbitration = min(1.0, extra / self.runs) if self.runs else 0.0
        return round(0.6 * instability + 0.4 * arbitration, 4)


def drift_audit(
    warehouse: ResultsWarehouse,
    campaign_ids: list[str] | None = None,
    include_stable: bool = False,
) -> list[DriftEntry]:
    """Per-spec verdict churn across runs of the same spec.

    Campaigns are ordered by ingest (rowid) order — the warehouse is
    append-only, so that is also run order.  By default only drifted
    specs are returned (the audit's whole point); ``include_stable``
    returns every spec, which feeds the flaky scoring.
    """
    db = warehouse.connection
    if campaign_ids is None:
        campaign_ids = [c.campaign_id for c in warehouse.campaigns()]
    order = {cid: i for i, cid in enumerate(campaign_ids)}
    history: dict[str, list[tuple[int, str, str, str, str, int, int]]] = {}
    marks = ", ".join("?" * len(campaign_ids)) or "''"
    for row in db.execute(
        "SELECT test_id, function, category, campaign_id, verdict,"
        " attempts, arbitrated FROM results"
        f" WHERE campaign_id IN ({marks})",
        campaign_ids,
    ):
        test_id, function, category, cid, verdict, attempts, arbitrated = row
        history.setdefault(test_id, []).append(
            (order[cid], function, category, cid, verdict, attempts, arbitrated)
        )
    entries = []
    for test_id, runs in sorted(history.items()):
        runs.sort(key=lambda r: r[0])
        entry = DriftEntry(
            test_id=test_id,
            function=runs[0][1],
            category=runs[0][2],
            runs=len(runs),
            verdicts=tuple(r[4] for r in runs),
            total_attempts=sum(r[5] for r in runs),
            arbitrated_runs=sum(1 for r in runs if r[6]),
        )
        if include_stable or entry.drifted:
            entries.append(entry)
    entries.sort(key=lambda e: (-e.flaky_score, e.test_id))
    return entries


def flaky_specs(
    warehouse: ResultsWarehouse,
    campaign_ids: list[str] | None = None,
    top: int = 20,
) -> list[DriftEntry]:
    """The highest-scoring flaky specs (score > 0), best-ranked first.

    A spec scores above zero by changing verdict between runs *or* by
    consuming arbitration retries within runs — both are flakiness
    signals even when the final verdicts agree.
    """
    entries = drift_audit(warehouse, campaign_ids, include_stable=True)
    flaky = [e for e in entries if e.flaky_score > 0]
    return flaky[:top]
