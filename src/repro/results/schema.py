"""Warehouse schema and the verdict a record distils into.

The schema is deliberately flat: one row per executed test per
campaign, keyed ``(campaign_id, test_id)``, with the fields the
analysis paths actually query — verdict, return code, wall time,
arbitration provenance — promoted to columns.  Campaign-level
provenance (kernel version, frames, strategy, host, execution stats)
lives on the ``campaigns`` row, not repeated per record.

The *verdict* is the drift-detection unit: a short string derived
purely from a record's own observables (no oracle involved), so two
ingests of the same log — or of the same suite re-run on the same
kernel — agree byte-for-byte, and a change between kernel or generator
versions is a real behaviour change, not an analyser version artefact.
"""

from __future__ import annotations

from repro.fault.testlog import TestRecord

#: Bumped when the DDL changes shape; stored in the ``meta`` table and
#: checked on open so a stale warehouse fails loudly.
SCHEMA_VERSION = 2

DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id     TEXT PRIMARY KEY,
    kernel_version  TEXT NOT NULL DEFAULT '',
    frames          INTEGER NOT NULL DEFAULT 0,
    strategy        TEXT NOT NULL DEFAULT '',
    source_path     TEXT NOT NULL DEFAULT '',
    host            TEXT NOT NULL DEFAULT '',
    ingested_at     TEXT NOT NULL DEFAULT '',
    records         INTEGER NOT NULL DEFAULT 0,
    execution_stats TEXT
);

CREATE TABLE IF NOT EXISTS results (
    campaign_id      TEXT NOT NULL REFERENCES campaigns(campaign_id),
    test_id          TEXT NOT NULL,
    function         TEXT NOT NULL,
    category         TEXT NOT NULL,
    arg_labels       TEXT NOT NULL DEFAULT '',
    verdict          TEXT NOT NULL,
    rc               INTEGER,
    rc_name          TEXT,
    returned         INTEGER NOT NULL DEFAULT 0,
    wall_time_s      REAL NOT NULL DEFAULT 0.0,
    attempts         INTEGER NOT NULL DEFAULT 1,
    arbitrated       INTEGER NOT NULL DEFAULT 0,
    quarantined      INTEGER NOT NULL DEFAULT 0,
    worker_killed    INTEGER NOT NULL DEFAULT 0,
    watchdog_expired INTEGER NOT NULL DEFAULT 0,
    sim_crashed      INTEGER NOT NULL DEFAULT 0,
    sim_hung         INTEGER NOT NULL DEFAULT 0,
    kernel_halted    INTEGER NOT NULL DEFAULT 0,
    halt_reason      TEXT NOT NULL DEFAULT '',
    resets           INTEGER NOT NULL DEFAULT 0,
    hm_events        INTEGER NOT NULL DEFAULT 0,
    overruns         INTEGER NOT NULL DEFAULT 0,
    kernel_version   TEXT NOT NULL DEFAULT '',
    frames           INTEGER NOT NULL DEFAULT 0,
    worker_host      TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (campaign_id, test_id)
);

CREATE INDEX IF NOT EXISTS idx_results_test_id  ON results(test_id);
CREATE INDEX IF NOT EXISTS idx_results_function ON results(function);
"""


def verdict_of(record: TestRecord) -> str:
    """The drift-detection verdict one record distils into.

    Ordered by the CRASH scale's process-first severity: a test that
    took its worker down is ``worker_killed`` whether it was freshly
    observed or inherited from quarantine (a quarantine *skip* must not
    read as drift against the run that confirmed the kill), then the
    simulator-level failures, then the kernel-visible outcome — the
    return code by name, or the documented no-return behaviours.
    """
    if record.worker_killed:
        return "worker_killed"
    if record.watchdog_expired:
        return "watchdog_expired"
    if record.sim_crashed:
        return "sim_crashed"
    if record.sim_hung:
        return "sim_hung"
    if record.kernel_halted:
        return "kernel_halted"
    rc = record.first_rc
    if rc is not None:
        from repro.xm import rc as rc_mod

        return f"rc:{rc_mod.name_of(rc)}"
    if record.never_returned:
        return "no_return"
    return "not_invoked"


def result_row(campaign_id: str, record: TestRecord) -> tuple:
    """The ``results`` INSERT tuple for one record (column order of DDL)."""
    rc = record.first_rc
    rc_name = None
    if rc is not None:
        from repro.xm import rc as rc_mod

        rc_name = rc_mod.name_of(rc)
    return (
        campaign_id,
        record.test_id,
        record.function,
        record.category,
        " ".join(record.arg_labels),
        verdict_of(record),
        rc,
        rc_name,
        int(rc is not None),
        record.wall_time_s,
        record.attempts,
        int(record.arbitrated),
        int(record.quarantined),
        int(record.worker_killed),
        int(record.watchdog_expired),
        int(record.sim_crashed),
        int(record.sim_hung),
        int(record.kernel_halted),
        record.halt_reason,
        len(record.resets),
        len(record.hm_events),
        record.overruns,
        record.kernel_version,
        record.frames,
        (record.host_context or {}).get("worker_host", ""),
    )


#: Number of columns in the ``results`` table (INSERT placeholder count).
RESULT_COLUMNS = 25
