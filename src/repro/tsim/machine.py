"""Assembly of one LEON3 board.

Bundles the :mod:`repro.sparc` devices into the machine the simulator
boots: physical memory, I/O bus with UART/IRQMP/GPTIMER windows, the
interrupt controller, timers and the CPU state.  The standard memory map
follows the usual LEON3 layout (SRAM at ``0x40000000``, APB I/O at
``0x80000000``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sparc.cpu import CpuState
from repro.sparc.iobus import IoBus, IoDevice
from repro.sparc.irqmp import IrqController
from repro.sparc.memory import Access, MemoryArea, PhysicalMemory
from repro.sparc.timerhw import GpTimerUnit
from repro.sparc.uart import Uart

#: Base of on-board SRAM on a LEON3.
RAM_BASE = 0x40000000
#: Default SRAM size: 16 MiB, as on the EagleEye TSIM configuration.
RAM_SIZE = 16 * 1024 * 1024
#: APB peripheral window base.
APB_BASE = 0x80000000

UART_BASE = APB_BASE + 0x100
IRQMP_BASE = APB_BASE + 0x200
GPTIMER_BASE = APB_BASE + 0x300


# Register handlers for stateless device windows live at module level so
# an attached board stays picklable (snapshot/restore fast path).
def _uart_read_reg(offset: int) -> int:
    """APBUART read model: the status register reports TX ready."""
    return 0x6 if offset == 4 else 0


def _gptimer_read_reg(offset: int) -> int:
    """GPTIMER APB window reads as zero (the unit is modelled apart)."""
    return 0


def _gptimer_write_reg(offset: int, value: int) -> None:
    """GPTIMER APB window writes are accepted and ignored."""


@dataclass
class TargetMachine:
    """One simulated LEON3 board."""

    memory: PhysicalMemory = field(default_factory=PhysicalMemory)
    iobus: IoBus = field(default_factory=IoBus)
    irq: IrqController = field(default_factory=IrqController)
    gptimer: GpTimerUnit = field(default_factory=GpTimerUnit.leon3_default)
    uart: Uart = field(default_factory=Uart)
    cpu: CpuState = field(default_factory=CpuState)
    ram_base: int = RAM_BASE
    ram_size: int = RAM_SIZE

    @classmethod
    def leon3(cls, ram_size: int = RAM_SIZE, map_ram: bool = False) -> "TargetMachine":
        """Build the default board with devices attached.

        RAM *areas* are normally mapped by the separation kernel from its
        static configuration (per-partition areas drive the MMU model);
        pass ``map_ram=True`` to map the whole SRAM as one area for
        bare-board use without a kernel.
        """
        machine = cls(ram_size=ram_size)
        if map_ram:
            machine.memory.add_area(
                MemoryArea("sram", RAM_BASE, ram_size, Access.RWX, owner="board")
            )
        machine._attach_devices()
        return machine

    def ram_contains(self, start: int, size: int) -> bool:
        """Whether a byte range lies inside the board's SRAM window."""
        return self.ram_base <= start and start + size <= self.ram_base + self.ram_size

    def _attach_devices(self) -> None:
        self.iobus.attach(
            IoDevice(
                name="apbuart0",
                base=UART_BASE,
                size=0x100,
                read_reg=_uart_read_reg,
                write_reg=self._uart_write_reg,
            )
        )
        self.iobus.attach(
            IoDevice(
                name="irqmp0",
                base=IRQMP_BASE,
                size=0x100,
                read_reg=self._irqmp_read_reg,
                write_reg=self._irqmp_write_reg,
            )
        )
        self.iobus.attach(
            IoDevice(
                name="gptimer0",
                base=GPTIMER_BASE,
                size=0x100,
                read_reg=_gptimer_read_reg,
                write_reg=_gptimer_write_reg,
            )
        )

    def _uart_write_reg(self, offset: int, value: int) -> None:
        if offset == 0:  # data register
            self.uart.write(chr(value & 0xFF))

    def _irqmp_read_reg(self, offset: int) -> int:
        if offset == 0x04:  # pending
            return self.irq.pending_word
        if offset == 0x40:  # CPU0 mask
            return self.irq.mask_word
        return 0

    def _irqmp_write_reg(self, offset: int, value: int) -> None:
        if offset == 0x04:
            self.irq.set_pending_word(value)
        elif offset == 0x40:
            self.irq.set_mask_word(value)

    def reset(self, cold: bool) -> None:
        """Board reset.  A cold reset clears RAM; warm keeps contents."""
        if cold:
            self.memory.clear()
        self.irq.reset()
        self.gptimer.reset()
        self.cpu.reset()
