"""Discrete event queue on a microsecond virtual clock.

Plain heapq-based priority queue.  Events at the same virtual time fire in
scheduling order (a monotone sequence number breaks ties), which keeps
whole-campaign runs deterministic — a property the test suite asserts.

Cancelled events are lazily skipped when they reach the head of the heap;
a live count triggers compaction when cancelled entries outnumber live
ones, so a workload that schedules and cancels heavily (vtimer churn)
cannot grow the heap without bound before virtual time catches up.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class Event:
    """One scheduled callback.

    Slotted by hand rather than a dataclass: the event queue is on the
    per-test hot path (every slot, frame and timer allocates one), and a
    flat ``__slots__`` object with two-int comparison is measurably
    cheaper to build and to heap-sift than the generated tuple-comparing
    dataclass it replaced.  Ordering is unchanged: ``(time_us, seq)``.
    """

    __slots__ = ("time_us", "seq", "name", "callback", "cancelled", "queue")

    def __init__(
        self,
        time_us: int,
        seq: int,
        name: str,
        callback: Callable[[int], None],
        cancelled: bool = False,
        queue: "EventQueue | None" = None,
    ) -> None:
        self.time_us = time_us
        self.seq = seq
        self.name = name
        self.callback = callback
        self.cancelled = cancelled
        #: Owning queue while the event sits in its heap (cleared on
        #: pop), so cancellation keeps the cancelled-entry count exact.
        self.queue = queue

    def __lt__(self, other: "Event") -> bool:
        if self.time_us != other.time_us:
            return self.time_us < other.time_us
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time_us == other.time_us and self.seq == other.seq

    def __hash__(self) -> int:
        return hash((self.time_us, self.seq))

    def __repr__(self) -> str:
        return (
            f"Event(time_us={self.time_us}, seq={self.seq}, "
            f"name={self.name!r}, cancelled={self.cancelled})"
        )

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.queue is not None:
                self.queue._note_cancelled()


class EventQueue:
    """Min-heap of events ordered by (time, insertion sequence)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        #: Cancelled events still sitting in the heap.
        self._cancelled = 0

    def schedule(self, time_us: int, callback: Callable[[int], None], name: str = "") -> Event:
        """Schedule ``callback(time_us)`` at an absolute virtual time."""
        if time_us < 0:
            raise ValueError("cannot schedule before time zero")
        event = Event(time_us, next(self._seq), name, callback, queue=self)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> int | None:
        """Virtual time of the next live event, or None if empty."""
        self._drop_cancelled()
        return self._heap[0].time_us if self._heap else None

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        event.queue = None
        return event

    def pop_due(self, deadline_us: int) -> Event | None:
        """Pop the next live event due at or before ``deadline_us``.

        Single scan over any cancelled head entries — the hot dispatch
        loop calls this once per event instead of the ``peek_time()`` +
        ``pop()`` pair (two scans).  Returns None when the next live
        event lies beyond the deadline (or the queue is empty), leaving
        that event in place.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head.cancelled:
                heapq.heappop(heap).queue = None
                self._cancelled -= 1
                continue
            if head.time_us > deadline_us:
                return None
            event = heapq.heappop(heap)
            event.queue = None
            return event
        return None

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap).queue = None
            self._cancelled -= 1

    def _note_cancelled(self) -> None:
        """Account one in-heap cancellation; compact at > 50% dead."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors.

        Ordering is untouched: (time, seq) is a total order over events,
        so the rebuilt heap pops in exactly the same sequence.
        """
        live: list[Event] = []
        for event in self._heap:
            if event.cancelled:
                event.queue = None
            else:
                live.append(event)
        heapq.heapify(live)
        self._heap = live
        self._cancelled = 0

    def clear(self) -> None:
        """Drop everything (system reset)."""
        for event in self._heap:
            event.queue = None
        self._heap.clear()
        self._cancelled = 0

    # -- delta reset --------------------------------------------------------

    def snapshot_delta(self) -> tuple:
        """Baseline for in-place delta resets: the live events, in order.

        Only ``(time, name, callback)`` is captured; a reset re-schedules
        fresh entries.  The sequence counter deliberately keeps counting
        across resets: baseline events are re-pushed in their original
        relative order and any event scheduled later necessarily gets a
        higher sequence number — exactly as in a fresh snapshot restore —
        so same-time tie-breaking is unchanged.
        """
        live = sorted(e for e in self._heap if not e.cancelled)
        return tuple((e.time_us, e.name, e.callback) for e in live)

    def reset_from_delta(self, baseline: tuple) -> None:
        """Rebuild the queue from a :meth:`snapshot_delta` baseline.

        The baseline is sorted by (time, original seq) and fresh
        sequence numbers are assigned in that same order, so the
        rebuilt list is already a valid min-heap — events are appended
        directly instead of paying ``schedule()``'s checks and
        ``heappush`` sift per entry.
        """
        self.clear()
        heap = self._heap
        seq = self._seq
        for time_us, name, callback in baseline:
            heap.append(Event(time_us, next(seq), name, callback, queue=self))

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        self._drop_cancelled()
        return bool(self._heap)
