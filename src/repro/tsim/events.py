"""Discrete event queue on a microsecond virtual clock.

Plain heapq-based priority queue.  Events at the same virtual time fire in
scheduling order (a monotone sequence number breaks ties), which keeps
whole-campaign runs deterministic — a property the test suite asserts.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """One scheduled callback."""

    time_us: int
    seq: int
    name: str = field(compare=False)
    callback: Callable[[int], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Min-heap of events ordered by (time, insertion sequence)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def schedule(self, time_us: int, callback: Callable[[int], None], name: str = "") -> Event:
        """Schedule ``callback(time_us)`` at an absolute virtual time."""
        if time_us < 0:
            raise ValueError("cannot schedule before time zero")
        event = Event(time_us, next(self._seq), name, callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> int | None:
        """Virtual time of the next live event, or None if empty."""
        self._drop_cancelled()
        return self._heap[0].time_us if self._heap else None

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None."""
        self._drop_cancelled()
        return heapq.heappop(self._heap) if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop everything (system reset)."""
        self._heap.clear()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        self._drop_cancelled()
        return bool(self._heap)
