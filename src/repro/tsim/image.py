"""Packed system images.

The paper's step 4 "packs" the test partition with the rest of the
partitions into a bootable image for TSIM.  Here an image bundles a
*kernel factory* (so :mod:`repro.tsim` stays independent of the concrete
kernel implementation), the partition applications, and free-form
metadata recorded into campaign logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tsim.machine import TargetMachine
    from repro.tsim.simulator import Simulator


class KernelProtocol(Protocol):
    """What the simulator needs from a booted separation kernel."""

    #: Length of the cyclic schedule's major frame, microseconds.
    major_frame_us: int

    def boot(self) -> None:
        """Cold-boot the kernel: build partitions, start the schedule."""

    def is_halted(self) -> bool:
        """True once the kernel has fatally halted (no more progress)."""


@dataclass(frozen=True)
class PartitionImage:
    """One partition's executable: a factory producing its application.

    The factory is called at kernel boot with no arguments and must return
    an application object understood by the kernel's partition runtime
    (see :class:`repro.xal.app.PartitionApplication`).
    """

    name: str
    app_factory: Callable[[], Any]


@dataclass
class SystemImage:
    """A bootable TSP system: kernel + configuration + partitions."""

    kernel_factory: Callable[["TargetMachine", "Simulator"], KernelProtocol]
    partitions: dict[str, PartitionImage] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Live injection points into the packed software (e.g. the FDIR
    #: payload slot).  Unlike :attr:`metadata` these are *objects shared
    #: with the running system*: after a snapshot restore they address
    #: the restored copies, which is how the warm-boot executor swaps the
    #: fault placeholder without re-packing the image.
    runtime_hooks: dict[str, Any] = field(default_factory=dict)

    def add_partition(self, image: PartitionImage) -> None:
        """Pack one partition; duplicate names are an error."""
        if image.name in self.partitions:
            raise ValueError(f"duplicate partition in image: {image.name}")
        self.partitions[image.name] = image

    def partition_names(self) -> list[str]:
        """Names of packed partitions, in packing order."""
        return list(self.partitions)
