"""TSIM-like target simulator.

The paper ran the TSP system on Aeroflex Gaisler's TSIM LEON3 simulator.
This package provides the equivalent substrate: a discrete-event simulator
that boots a packed system image (separation kernel + configuration +
partition applications) on a modelled LEON3 board and runs it for a number
of cyclic schedules.

Crucially it reproduces TSIM's *own* failure mode: one of the paper's nine
issues (``XM_set_timer(1, 1, 1)``) produced a timer trap that crashed the
simulator itself, not just the kernel.  Here that surfaces as
:class:`SimulatorCrash`.
"""

from repro.tsim.events import EventQueue, Event
from repro.tsim.machine import TargetMachine
from repro.tsim.image import SystemImage, PartitionImage
from repro.tsim.simulator import Simulator, SimulatorCrash, SimulatorHang

__all__ = [
    "EventQueue",
    "Event",
    "TargetMachine",
    "SystemImage",
    "PartitionImage",
    "Simulator",
    "SimulatorCrash",
    "SimulatorHang",
]
