"""In-place delta reset: revert a live object graph to a captured baseline.

A fault-injection test mutates a tiny fraction of a booted system, so
rebuilding everything per test (unpickling the warm-boot snapshot blob)
is almost pure waste.  A :class:`DeltaJournal` walks the live object
graph once — right after the settle frame, at the same instant the
snapshot is taken — records a baseline per mutable object *by
reference*, and reverts the graph in place:

- containers (``list``/``dict``/``set``/``deque``/``bytearray``) get
  their *contents* rolled back while the container object survives, so
  every alias in the graph stays wired;
- plain objects get their ``__dict__`` rolled back, minus any fields the
  class nominates in ``__delta_skip__`` (caches that stay valid across
  in-place resets, e.g. the kernel's hypercall dispatch cache);
- slotted objects (``__slots__``, no ``__dict__``) get each slot
  captured and reverted by ``setattr`` — slots set after the capture are
  deleted again — so hot structures can be flattened without losing
  delta-reset coverage;
- objects implementing the cooperative reset protocol —
  ``snapshot_delta()`` / ``reset_from_delta(baseline)`` — capture and
  revert themselves (the board memory's dirty-span journal, the event
  queue's live-event list).

Baselines store child objects by reference only: a captured list holds
the same element objects the live list held, and each of those elements
is reverted by its *own* journal entry.  That is what makes the reset a
delta — cost is proportional to the number of live mutable objects and
the bytes actually written, never to configured memory sizes.

Two honesty rules shape the walker:

- an object it cannot see inside (no ``__dict__``, not a known
  container, not immutable) raises :class:`Unjournalable` instead of
  being silently skipped — the executor falls back to full snapshot
  restores rather than risk state bleeding between tests;
- a reset must be observationally identical to a fresh
  ``SimSnapshot.restore()``; the test suite (and the executor's
  ``--verify-reset`` mode) asserts record-for-record equality between
  the two paths.
"""

from __future__ import annotations

import enum
import functools
import types
from dataclasses import fields as dataclass_fields, is_dataclass
from collections import deque
from typing import Iterable


class DeltaResetError(RuntimeError):
    """An in-place delta reset cannot be (or was not) performed."""


class Unjournalable(DeltaResetError):
    """The graph holds an object the journal cannot revert in place."""

    def __init__(self, path: str, value: object) -> None:
        super().__init__(
            f"cannot journal {type(value).__name__} at {path}: no __dict__, "
            "not a supported container, and no snapshot_delta/reset_from_delta"
        )
        self.path = path


class JournalOverflow(DeltaResetError):
    """A test dirtied more board memory than the journal budget allows."""

    def __init__(self, pending_bytes: int, budget_bytes: int) -> None:
        super().__init__(
            f"memory journal holds {pending_bytes} dirty bytes, "
            f"budget is {budget_bytes}"
        )
        self.pending_bytes = pending_bytes
        self.budget_bytes = budget_bytes


class Fields:
    """Shallow ``__dict__`` baseline produced by :func:`capture_fields`.

    Classes that opt into the reset protocol but have no bespoke state
    representation return one of these from ``snapshot_delta()``; the
    journal then knows to keep walking the captured values, so the
    object's children are journaled individually as usual.
    """

    __slots__ = ("baseline", "skip")

    def __init__(self, baseline: dict, skip: tuple) -> None:
        self.baseline = baseline
        self.skip = skip


def capture_fields(obj: object, skip: Iterable[str] = ()) -> Fields:
    """Capture ``obj.__dict__`` (minus ``skip`` fields) by reference."""
    skip = tuple(skip)
    return Fields(
        {k: v for k, v in obj.__dict__.items() if k not in skip}, skip
    )


def restore_fields(obj: object, captured: Fields) -> None:
    """Revert ``obj.__dict__`` to a :func:`capture_fields` baseline.

    Skip fields keep their *current* value (they are caches, valid
    across in-place resets because every referenced object survives);
    fields created after the capture disappear.
    """
    d = obj.__dict__
    preserved = {k: d[k] for k in captured.skip if k in d}
    d.clear()
    d.update(captured.baseline)
    d.update(preserved)


#: Values stored by reference with no entry and no recursion.
_ATOMIC = (
    type(None), bool, int, float, complex, str, bytes, frozenset, range, slice,
)
#: Callables that are themselves immutable bindings.  Their referents can
#: still be mutable (a bound method's ``__self__``, a partial's args), so
#: the walker recurses into those without journaling the callable.
_CALLABLE = (
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.MethodWrapperType,
)

# Journal entry kinds (revert actions).
_OBJ, _HOOK, _LIST, _DICT, _SET, _DEQUE, _BUF, _SLOTTED = range(8)

#: Sentinel for a declared slot that currently holds no value.
_UNSET = object()

#: Per-class cache of declared slot names (walked once per type).
_SLOT_NAMES: dict[type, tuple[str, ...]] = {}


def _slot_names(cls: type) -> tuple[str, ...]:
    """All ``__slots__`` names declared across a class's MRO."""
    cached = _SLOT_NAMES.get(cls)
    if cached is None:
        names: dict[str, None] = {}
        for klass in cls.__mro__:
            declared = klass.__dict__.get("__slots__", ())
            if isinstance(declared, str):
                declared = (declared,)
            for name in declared:
                if name not in ("__dict__", "__weakref__"):
                    names[name] = None
        cached = tuple(names)
        _SLOT_NAMES[cls] = cached
    return cached


def _is_frozen_dataclass(value: object) -> bool:
    return (
        is_dataclass(value)
        and not isinstance(value, type)
        and type(value).__dataclass_params__.frozen
    )


class DeltaJournal:
    """One armed baseline of a live object graph, revertable in place.

    ``constants`` are objects shared by reference across snapshot
    restores (the kernel's ``snapshot_constants()``); they are immutable
    by contract, so the walker neither captures nor enters them.
    """

    def __init__(self, root: object, constants: Iterable[object] = ()) -> None:
        self._entries: list[tuple] = []
        self._seen: set[int] = set()
        #: Strong refs behind the id() memo (guards against id reuse)
        #: and behind every baseline (captured objects must outlive the
        #: journal even if the live graph drops them mid-test).
        self._refs: list[object] = []
        self._skip_ids = {id(c) for c in constants}
        self._constants = tuple(constants)
        self._walk(root, "root")
        self._compile()

    def __len__(self) -> int:
        return len(self._entries)

    # -- capture -----------------------------------------------------------

    def _walk(self, value: object, path: str) -> None:
        if isinstance(value, _ATOMIC) or isinstance(value, (enum.Enum, type, types.ModuleType)):
            return
        vid = id(value)
        if vid in self._skip_ids or vid in self._seen:
            return
        self._seen.add(vid)
        self._refs.append(value)
        if isinstance(value, tuple):
            for i, item in enumerate(value):
                self._walk(item, f"{path}[{i}]")
            return
        if isinstance(value, _CALLABLE):
            bound = getattr(value, "__self__", None)
            if bound is not None:
                self._walk(bound, f"{path}.__self__")
            return
        if isinstance(value, functools.partial):
            self._walk(value.func, f"{path}.func")
            for i, item in enumerate(value.args):
                self._walk(item, f"{path}.args[{i}]")
            for k, item in value.keywords.items():
                self._walk(item, f"{path}.keywords[{k}]")
            return
        capture = getattr(value, "snapshot_delta", None)
        restore = getattr(value, "reset_from_delta", None)
        if capture is not None and restore is not None:
            baseline = capture()
            self._entries.append((_HOOK, value, baseline))
            if isinstance(baseline, Fields):
                for key, item in baseline.baseline.items():
                    self._walk(item, f"{path}.{key}")
            return
        if isinstance(value, list):
            baseline = tuple(value)
            self._entries.append((_LIST, value, baseline))
            for i, item in enumerate(baseline):
                self._walk(item, f"{path}[{i}]")
            return
        if isinstance(value, dict):
            baseline = tuple(value.items())
            self._entries.append((_DICT, value, baseline))
            for key, item in baseline:
                self._walk(key, f"{path}<key>")
                self._walk(item, f"{path}[{key!r}]")
            return
        if isinstance(value, set):
            baseline = tuple(value)
            self._entries.append((_SET, value, baseline))
            for item in baseline:
                self._walk(item, f"{path}<member>")
            return
        if isinstance(value, deque):
            baseline = tuple(value)
            self._entries.append((_DEQUE, value, baseline))
            for i, item in enumerate(baseline):
                self._walk(item, f"{path}[{i}]")
            return
        if isinstance(value, bytearray):
            self._entries.append((_BUF, value, bytes(value)))
            return
        if _is_frozen_dataclass(value):
            # The bindings cannot change; only register referenced
            # mutables so their contents still get reverted.
            for f in dataclass_fields(value):
                self._walk(getattr(value, f.name), f"{path}.{f.name}")
            return
        d = getattr(value, "__dict__", None)
        slots = _slot_names(type(value))
        if d is None and not slots:
            raise Unjournalable(path, value)
        skip = getattr(type(value), "__delta_skip__", ())
        if d is not None:
            baseline = {k: v for k, v in d.items() if k not in skip}
            self._entries.append((_OBJ, value, baseline, skip))
            for key, item in baseline.items():
                self._walk(item, f"{path}.{key}")
        if slots:
            # Slots set now are captured (by reference); slots unset now
            # are deleted again on reset if the run assigned them.
            pairs = []
            missing = []
            for name in slots:
                if name in skip:
                    continue
                item = getattr(value, name, _UNSET)
                if item is _UNSET:
                    missing.append(name)
                else:
                    pairs.append((name, item))
                    self._walk(item, f"{path}.{name}")
            self._entries.append(
                (_SLOTTED, value, tuple(pairs), tuple(missing))
            )

    # -- revert ------------------------------------------------------------

    def _compile(self) -> None:
        """Flatten the entry list into a type-specialised revert program.

        ``reset()`` is the hot half of every delta-maintained test, so
        the per-entry kind branch and tuple unpacking are paid once here
        instead of on every reset: entries are partitioned into parallel
        per-kind lists (plain-``__dict__`` objects split again by whether
        they have ``__delta_skip__`` fields, hooks prebound to their
        ``reset_from_delta`` method).
        """
        objs: list[tuple] = []          # (__dict__, baseline) — no skips
        objs_skip: list[tuple] = []     # (__dict__, baseline, skip)
        hooks: list[tuple] = []         # (bound reset_from_delta, baseline)
        seqs: list[tuple] = []          # (list-or-bytearray, baseline)
        dicts: list[tuple] = []         # (dict-or-set, baseline) — clear+update
        deques: list[tuple] = []        # (deque, baseline)
        slotted: list[tuple] = []       # (obj, pairs, missing)
        for entry in self._entries:
            kind = entry[0]
            if kind == _OBJ:
                _, obj, baseline, skip = entry
                if skip:
                    objs_skip.append((obj.__dict__, baseline, skip))
                else:
                    objs.append((obj.__dict__, baseline))
            elif kind == _HOOK:
                hooks.append((entry[1].reset_from_delta, entry[2]))
            elif kind in (_LIST, _BUF):
                seqs.append((entry[1], entry[2]))
            elif kind in (_DICT, _SET):
                dicts.append((entry[1], entry[2]))
            elif kind == _DEQUE:
                deques.append((entry[1], entry[2]))
            else:  # _SLOTTED
                _, obj, pairs, missing = entry
                slotted.append((obj, pairs, missing))
        self._program = (objs, objs_skip, hooks, seqs, dicts, deques, slotted)

    def reset(self) -> None:
        """Revert every journaled object to its captured baseline."""
        objs, objs_skip, hooks, seqs, dicts, deques, slotted = self._program
        for d, baseline in objs:
            d.clear()
            d.update(baseline)
        for d, baseline, skip in objs_skip:
            preserved = {k: d[k] for k in skip if k in d}
            d.clear()
            d.update(baseline)
            d.update(preserved)
        for restore, baseline in hooks:
            restore(baseline)
        for obj, baseline in seqs:
            obj[:] = baseline
        for obj, baseline in dicts:
            obj.clear()
            obj.update(baseline)
        for obj, baseline in deques:
            obj.clear()
            obj.extend(baseline)
        for obj, pairs, missing in slotted:
            for name, item in pairs:
                setattr(obj, name, item)
            for name in missing:
                try:
                    delattr(obj, name)
                except AttributeError:
                    pass
