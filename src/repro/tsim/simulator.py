"""The target simulator core.

A :class:`Simulator` owns virtual time and the event queue, boots a
:class:`~repro.tsim.image.SystemImage` on a
:class:`~repro.tsim.machine.TargetMachine`, and pumps events until a
deadline.  Two abnormal terminations mirror the real campaign:

- :class:`SimulatorCrash` — the processor entered error mode (double
  trap); on the paper's testbed this killed TSIM itself.
- :class:`SimulatorHang` — the event budget was exhausted without reaching
  the deadline; the paper treats a test that "fails to return" as a
  potential Restart-class failure.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.sparc.cpu import ProcessorErrorMode
from repro.tsim.events import Event, EventQueue
from repro.tsim.image import KernelProtocol, SystemImage
from repro.tsim.machine import TargetMachine


class SimulatorCrash(Exception):
    """The simulator process itself died (processor error mode)."""

    def __init__(self, cause: Exception, at_us: int) -> None:
        super().__init__(f"simulator crashed at t={at_us}us: {cause}")
        self.cause = cause
        self.at_us = at_us


class SimulatorHang(Exception):
    """Event budget exhausted: the system is livelocked."""

    def __init__(self, at_us: int, events: int) -> None:
        super().__init__(f"simulator hang detected at t={at_us}us after {events} events")
        self.at_us = at_us
        self.events = events


class SimState(enum.Enum):
    """Lifecycle of a simulator instance."""

    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    CRASHED = "crashed"
    HUNG = "hung"


class Simulator:
    """Discrete-event LEON3 target simulator."""

    #: Default per-run event budget; generous for nominal schedules, small
    #: enough that a livelocked kernel is detected quickly.
    DEFAULT_EVENT_BUDGET = 200_000

    def __init__(
        self,
        machine: TargetMachine,
        image: SystemImage,
        event_budget: int = DEFAULT_EVENT_BUDGET,
    ) -> None:
        self.machine = machine
        self.image = image
        self.events = EventQueue()
        self.state = SimState.CREATED
        self.event_budget = event_budget
        self._now_us = 0
        self._dispatched = 0
        self.kernel: KernelProtocol | None = None

    # -- virtual time ------------------------------------------------------

    @property
    def now_us(self) -> int:
        """Current virtual time in microseconds."""
        return self._now_us

    def schedule_at(self, time_us: int, callback: Callable[[int], None], name: str = "") -> Event:
        """Schedule an absolute-time event; must not be in the past."""
        if time_us < self._now_us:
            raise ValueError(f"cannot schedule into the past ({time_us} < {self._now_us})")
        return self.events.schedule(time_us, callback, name)

    def schedule_after(self, delay_us: int, callback: Callable[[int], None], name: str = "") -> Event:
        """Schedule relative to the current virtual time."""
        return self.schedule_at(self._now_us + delay_us, callback, name)

    # -- lifecycle ---------------------------------------------------------

    def boot(self) -> KernelProtocol:
        """Instantiate the kernel from the image and cold-boot it."""
        if self.kernel is not None:
            raise RuntimeError("image already booted")
        self.kernel = self.image.kernel_factory(self.machine, self)
        self.state = SimState.RUNNING
        try:
            self.kernel.boot()
        except ProcessorErrorMode as exc:  # boot-time double trap
            self.state = SimState.CRASHED
            raise SimulatorCrash(exc, self._now_us) from exc
        return self.kernel

    def run_until(self, deadline_us: int) -> None:
        """Pump events until virtual time reaches the deadline.

        Stops early when the kernel halts fatally (the board is dead but
        the simulator survives, so logs remain collectable).
        """
        if self.kernel is None:
            raise RuntimeError("boot() before run")
        if self.state is not SimState.RUNNING:
            return
        budget = self.event_budget
        while True:
            if self.kernel.is_halted():
                self.state = SimState.STOPPED
                return
            next_time = self.events.peek_time()
            if next_time is None or next_time > deadline_us:
                # Never rewind: a deadline already in the past is a no-op.
                self._now_us = max(self._now_us, deadline_us)
                return
            event = self.events.pop()
            assert event is not None
            self._now_us = event.time_us
            self._dispatched += 1
            budget -= 1
            if budget <= 0:
                self.state = SimState.HUNG
                raise SimulatorHang(self._now_us, self._dispatched)
            try:
                event.callback(self._now_us)
            except ProcessorErrorMode as exc:
                self.state = SimState.CRASHED
                raise SimulatorCrash(exc, self._now_us) from exc

    def run_major_frames(self, count: int) -> None:
        """Run a whole number of the kernel's major frames."""
        if self.kernel is None:
            raise RuntimeError("boot() before run")
        frame = self.kernel.major_frame_us
        if frame <= 0:
            raise ValueError("kernel reports a non-positive major frame")
        self.run_until(self._now_us + count * frame)

    @property
    def dispatched_events(self) -> int:
        """Total events dispatched since construction."""
        return self._dispatched
