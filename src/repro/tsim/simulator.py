"""The target simulator core.

A :class:`Simulator` owns virtual time and the event queue, boots a
:class:`~repro.tsim.image.SystemImage` on a
:class:`~repro.tsim.machine.TargetMachine`, and pumps events until a
deadline.  Two abnormal terminations mirror the real campaign:

- :class:`SimulatorCrash` — the processor entered error mode (double
  trap); on the paper's testbed this killed TSIM itself.
- :class:`SimulatorHang` — the event budget was exhausted without reaching
  the deadline; the paper treats a test that "fails to return" as a
  potential Restart-class failure.
"""

from __future__ import annotations

import enum
import io
import pickle
import pickletools
from typing import Callable

from repro.sparc.cpu import ProcessorErrorMode
from repro.sparc.memory import MemoryArea, PhysicalMemory
from repro.tsim.delta import DeltaJournal, DeltaResetError, JournalOverflow
from repro.tsim.events import Event, EventQueue
from repro.tsim.image import KernelProtocol, SystemImage
from repro.tsim.machine import TargetMachine


class SimulatorCrash(Exception):
    """The simulator process itself died (processor error mode)."""

    def __init__(self, cause: Exception, at_us: int) -> None:
        super().__init__(f"simulator crashed at t={at_us}us: {cause}")
        self.cause = cause
        self.at_us = at_us


class SimulatorHang(Exception):
    """Event budget exhausted: the system is livelocked."""

    def __init__(self, at_us: int, events: int) -> None:
        super().__init__(f"simulator hang detected at t={at_us}us after {events} events")
        self.at_us = at_us
        self.events = events


class SnapshotError(RuntimeError):
    """The simulator state cannot be snapshotted (or restored).

    Typical cause: software in the image holds an unpicklable object
    (a closure, an open file).  Callers fall back to cold boots.
    """


class _SnapshotPickler(pickle.Pickler):
    """Pickler that externalises the board memory and shared constants.

    Two kinds of objects never enter the pickle stream:

    - the board's :class:`PhysicalMemory` — its large area backings are
      captured out-of-band as non-zero spans (`persistent id "mem"`);
    - read-only *constants* nominated by the kernel (static
      configuration, type registry) — restored snapshots reference the
      very same objects (`persistent id ("c", index)`).
    """

    def __init__(self, file: io.BytesIO, constants: tuple, memory: PhysicalMemory) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._constants = constants
        self._index = {id(obj): i for i, obj in enumerate(constants)}
        self._memory = memory

    def persistent_id(self, obj: object):  # noqa: ANN201 - pickle protocol
        """Replace memory/constants with out-of-band references."""
        if obj is self._memory:
            return "mem"
        i = self._index.get(id(obj))
        # The `is` check guards against id() reuse by temporaries
        # created during pickling (and never matches None/True/small
        # ints, whose ids are not in the table).
        if i is not None and self._constants[i] is obj:
            return ("c", i)
        return None


class _SnapshotUnpickler(pickle.Unpickler):
    """Inverse of :class:`_SnapshotPickler` for one restore."""

    def __init__(self, file: io.BytesIO, snapshot: "SimSnapshot") -> None:
        super().__init__(file)
        self._snapshot = snapshot
        self._memory: PhysicalMemory | None = None

    def persistent_load(self, pid: object) -> object:
        """Resolve out-of-band references."""
        if pid == "mem":
            if self._memory is None:
                self._memory = self._snapshot._rebuild_memory()
            return self._memory
        kind, index = pid  # type: ignore[misc]
        if kind != "c":  # pragma: no cover - defensive
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._snapshot.constants[index]


class SimSnapshot:
    """A restorable deep image of a booted simulator.

    ``restore()`` rebuilds an independent, runnable simulator in time
    proportional to the *live* state (not the configured memory sizes):
    the object graph is rebuilt by the C pickle machinery, area backings
    are reconstructed from their non-zero spans, and immutable build
    artefacts (static configuration, type registry) are shared by
    reference with the original.  Restored simulators must therefore
    never mutate those constants — true for configuration-driven kernels
    by design.

    ``recycle(sim)`` returns a finished simulator's memory buffers to an
    internal pool, so a restore → run → recycle loop (the warm-boot test
    executor) allocates no large buffers in steady state.
    """

    def __init__(
        self,
        blob: bytes,
        constants: tuple,
        areas: tuple[MemoryArea, ...],
        spans: dict[str, tuple[int, int, bytes]],
    ) -> None:
        self.blob = blob
        self.constants = constants
        self.areas = areas
        self.spans = spans
        self._pool: dict[str, bytearray] = {}

    def _rebuild_memory(self) -> PhysicalMemory:
        return PhysicalMemory.from_spans(self.areas, self.spans, pool=self._pool)

    def restore(self) -> "Simulator":
        """Materialise an independent simulator from the snapshot."""
        try:
            return _SnapshotUnpickler(io.BytesIO(self.blob), self).load()
        except (pickle.UnpicklingError, TypeError, AttributeError) as exc:
            raise SnapshotError(f"snapshot restore failed: {exc}") from exc

    def recycle(self, sim: "Simulator") -> None:
        """Reclaim a restored simulator's memory buffers for reuse.

        The simulator must be finished with: its board memory is torn
        down (zeroed where written) and handed to the next restore.
        """
        self._pool.update(sim.machine.memory.reclaim_buffers())


class SnapshotCache:
    """Warm-boot snapshots keyed by build parameters.

    One snapshot per ``(testbed, kernel_version, layout, ...)`` key; the
    builder callable runs exactly once per key.  Cache hits/misses are
    counted for benchmark introspection.
    """

    def __init__(self) -> None:
        self._snapshots: dict[object, SimSnapshot] = {}
        self.hits = 0
        self.misses = 0

    def get_or_build(
        self, key: object, builder: Callable[[], SimSnapshot]
    ) -> SimSnapshot:
        """Return the cached snapshot for ``key``, building it once."""
        snap = self._snapshots.get(key)
        if snap is not None:
            self.hits += 1
            return snap
        self.misses += 1
        snap = builder()
        self._snapshots[key] = snap
        return snap

    def clear(self) -> None:
        """Drop all cached snapshots (e.g. between benchmark phases)."""
        self._snapshots.clear()

    def __len__(self) -> int:
        return len(self._snapshots)


class SimState(enum.Enum):
    """Lifecycle of a simulator instance."""

    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    CRASHED = "crashed"
    HUNG = "hung"


class Simulator:
    """Discrete-event LEON3 target simulator."""

    #: Default per-run event budget; generous for nominal schedules, small
    #: enough that a livelocked kernel is detected quickly.
    DEFAULT_EVENT_BUDGET = 200_000

    #: The delta journal belongs to this live instance, never to its
    #: baseline: a reset must not revert (or duplicate) the journal.
    __delta_skip__ = ("_journal", "_journal_budget")

    def __init__(
        self,
        machine: TargetMachine,
        image: SystemImage,
        event_budget: int = DEFAULT_EVENT_BUDGET,
    ) -> None:
        self.machine = machine
        self.image = image
        self.events = EventQueue()
        self.state = SimState.CREATED
        self.event_budget = event_budget
        self._now_us = 0
        self._dispatched = 0
        self.kernel: KernelProtocol | None = None
        self._journal: DeltaJournal | None = None
        self._journal_budget: int | None = None

    def __getstate__(self) -> dict:
        """Pickle without the (live-instance-only) delta journal."""
        state = self.__dict__.copy()
        state["_journal"] = None
        state["_journal_budget"] = None
        return state

    # -- virtual time ------------------------------------------------------

    @property
    def now_us(self) -> int:
        """Current virtual time in microseconds."""
        return self._now_us

    def schedule_at(self, time_us: int, callback: Callable[[int], None], name: str = "") -> Event:
        """Schedule an absolute-time event; must not be in the past."""
        if time_us < self._now_us:
            raise ValueError(f"cannot schedule into the past ({time_us} < {self._now_us})")
        return self.events.schedule(time_us, callback, name)

    def schedule_after(self, delay_us: int, callback: Callable[[int], None], name: str = "") -> Event:
        """Schedule relative to the current virtual time."""
        return self.schedule_at(self._now_us + delay_us, callback, name)

    # -- lifecycle ---------------------------------------------------------

    def boot(self) -> KernelProtocol:
        """Instantiate the kernel from the image and cold-boot it."""
        if self.kernel is not None:
            raise RuntimeError("image already booted")
        self.kernel = self.image.kernel_factory(self.machine, self)
        self.state = SimState.RUNNING
        try:
            self.kernel.boot()
        except ProcessorErrorMode as exc:  # boot-time double trap
            self.state = SimState.CRASHED
            raise SimulatorCrash(exc, self._now_us) from exc
        return self.kernel

    def run_until(self, deadline_us: int) -> None:
        """Pump events until virtual time reaches the deadline.

        Stops early when the kernel halts fatally (the board is dead but
        the simulator survives, so logs remain collectable).
        """
        if self.kernel is None:
            raise RuntimeError("boot() before run")
        if self.state is not SimState.RUNNING:
            return
        budget = self.event_budget
        is_halted = self.kernel.is_halted
        pop_due = self.events.pop_due
        while True:
            if is_halted():
                self.state = SimState.STOPPED
                return
            event = pop_due(deadline_us)
            if event is None:
                # Never rewind: a deadline already in the past is a no-op.
                self._now_us = max(self._now_us, deadline_us)
                return
            self._now_us = event.time_us
            self._dispatched += 1
            budget -= 1
            if budget <= 0:
                self.state = SimState.HUNG
                raise SimulatorHang(self._now_us, self._dispatched)
            try:
                event.callback(self._now_us)
            except ProcessorErrorMode as exc:
                self.state = SimState.CRASHED
                raise SimulatorCrash(exc, self._now_us) from exc

    def snapshot(self) -> SimSnapshot:
        """Capture a restorable deep image of the running system.

        The simulator must be booted and still ``RUNNING``.  Objects the
        kernel nominates via ``snapshot_constants()`` (static
        configuration, type registries) are shared by reference between
        the original and every restore; the board memory is captured as
        per-area non-zero spans.  Raises :class:`SnapshotError` when the
        state is not snapshottable — e.g. software in the image holds a
        closure or another unpicklable object.
        """
        if self.kernel is None:
            raise SnapshotError("cannot snapshot: image not booted")
        if self.state is not SimState.RUNNING:
            raise SnapshotError(f"cannot snapshot: simulator is {self.state.value}")
        constants = tuple(getattr(self.kernel, "snapshot_constants", lambda: ())())
        memory = self.machine.memory
        buffer = io.BytesIO()
        try:
            _SnapshotPickler(buffer, constants, memory).dump(self)
        except (pickle.PicklingError, TypeError, AttributeError, ValueError) as exc:
            raise SnapshotError(f"state is not snapshottable: {exc}") from exc
        # The stream is dumped once but loaded once per test: optimize()
        # strips unused memo PUTs, shrinking the blob and each restore.
        return SimSnapshot(
            blob=pickletools.optimize(buffer.getvalue()),
            constants=constants,
            areas=tuple(memory.areas()),
            spans=memory.export_spans(),
        )

    # -- delta reset -------------------------------------------------------

    def arm_delta(self, journal_budget: int | None = None) -> None:
        """Capture an in-place reset baseline of the *current* state.

        Walks the live object graph (sharing the kernel's nominated
        constants by reference, exactly like :meth:`snapshot`) and arms
        the board memory's write journal.  Afterwards :meth:`reset`
        reverts the simulator to this instant without any unpickling.

        ``journal_budget`` caps the board-memory bytes a single reset
        may revert; a test that dirties more raises
        :class:`~repro.tsim.delta.JournalOverflow` from :meth:`reset`
        (callers fall back to a full snapshot restore).  Raises
        :class:`~repro.tsim.delta.Unjournalable` when the graph holds an
        object that cannot be reverted in place.
        """
        if self.kernel is None:
            raise DeltaResetError("cannot arm delta reset: image not booted")
        if self.state is not SimState.RUNNING:
            raise DeltaResetError(f"cannot arm delta reset: simulator is {self.state.value}")
        constants = tuple(getattr(self.kernel, "snapshot_constants", lambda: ())())
        self._journal = None
        self._journal_budget = journal_budget
        try:
            self._journal = DeltaJournal(self, constants=constants)
        except Exception:
            # The walk may have armed the memory journal before failing.
            self.machine.memory.delta_disarm()
            raise

    def reset(self) -> None:
        """Revert in place to the :meth:`arm_delta` baseline.

        The cheap rung of the executor's reset ladder: no allocation, no
        unpickling — journaled objects roll their contents back and the
        memory journal rewrites only the bytes the run dirtied.  Raises
        :class:`~repro.tsim.delta.DeltaResetError` (before touching any
        state, so the simulator stays consistent for recycling) when the
        baseline is unusable: journal not armed, budget overflow, or the
        baseline destroyed by an in-test cold reset.
        """
        journal = self._journal
        if journal is None:
            raise DeltaResetError("arm_delta() before reset()")
        memory = self.machine.memory
        if memory.delta_broken:
            raise DeltaResetError(
                "board memory was cold-reset during the run; delta baseline lost"
            )
        budget = self._journal_budget
        if budget is not None:
            pending = memory.delta_pending_bytes()
            if pending > budget:
                raise JournalOverflow(pending, budget)
        journal.reset()

    def disarm_delta(self) -> None:
        """Drop the delta baseline (before recycling this simulator).

        Re-merges the memory journal's baseline accounting so a
        subsequent buffer reclaim zeroes everything ever written.
        Idempotent.
        """
        self._journal = None
        self._journal_budget = None
        self.machine.memory.delta_disarm()

    def run_major_frames(self, count: int) -> None:
        """Run a whole number of the kernel's major frames."""
        if self.kernel is None:
            raise RuntimeError("boot() before run")
        frame = self.kernel.major_frame_us
        if frame <= 0:
            raise ValueError("kernel reports a non-positive major frame")
        self.run_until(self._now_us + count * frame)

    @property
    def dispatched_events(self) -> int:
        """Total events dispatched since construction."""
        return self._dispatched
