"""XAL-like partition runtime.

XtratuM partitions host a guest OS; the XtratuM Abstraction Layer (XAL)
is the minimal single-threaded C runtime ESA used for bare partitions.
This package is its Python analogue: an application base class the
scheduler drives slot by slot, plus a ``libxm`` binding layer that wraps
raw hypercalls with scratch-buffer management for out-parameters.
"""

from repro.xal.app import PartitionApplication
from repro.xal.runtime import Libxm, ScratchAllocator

__all__ = ["PartitionApplication", "Libxm", "ScratchAllocator"]
