"""``libxm`` bindings for partition code.

Hypercalls with out-parameters need partition-owned buffers; the
:class:`ScratchAllocator` hands out addresses inside the partition's own
memory area (a bump allocator over a reserved scratch window), and
:class:`Libxm` wraps the raw hypercall interface with read-back of
results — the same service the C ``libxm`` provides to XAL applications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xm import rc
from repro.xm.status import (
    XmHmLogEntry,
    XmHmStatus,
    XmPartitionStatus,
    XmPlanStatus,
    XmPortStatus,
    XmSystemStatus,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.sched import SlotContext

#: Offset of the scratch window inside a partition's first memory area.
SCRATCH_OFFSET = 0x10000
#: Size of the scratch window.
SCRATCH_SIZE = 0x8000
#: Offset of the batch/test buffer window (used by the fault framework).
TEST_BUFFER_OFFSET = 0x20000
#: Size of the batch/test buffer window.
TEST_BUFFER_SIZE = 0x20000


class ScratchAllocator:
    """Bump allocator over the partition's scratch window."""

    __slots__ = ("base", "size", "_next")

    def __init__(self, base: int, size: int = SCRATCH_SIZE) -> None:
        self.base = base
        self.size = size
        self._next = base

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Allocate ``nbytes``; wraps around when the window fills."""
        addr = (self._next + align - 1) // align * align
        if addr + nbytes > self.base + self.size:
            addr = self.base  # scratch data is transient; recycling is fine
        self._next = addr + nbytes
        return addr

    def reset(self) -> None:
        """Recycle the whole window."""
        self._next = self.base


class Libxm:
    """Typed wrappers over the hypercall interface for one slot.

    One is needed per slot; applications keep an instance and
    :meth:`rebind` it each step, which is observationally identical to
    fresh construction (the scratch bump pointer restarts at the window
    base either way) without re-deriving the partition's memory layout
    on the per-slot hot path.
    """

    __slots__ = ("ctx", "scratch", "test_buffer_base", "_space")

    def __init__(self, ctx: "SlotContext") -> None:
        self.ctx = ctx
        partition = ctx.partition
        area = partition.config.memory_areas[0]
        self.scratch = ScratchAllocator(area.start + SCRATCH_OFFSET)
        self.test_buffer_base = area.start + TEST_BUFFER_OFFSET
        self._space = partition.address_space

    def rebind(self, ctx: "SlotContext") -> None:
        """Point at a new slot of the *same* partition, scratch recycled."""
        self.ctx = ctx
        scratch = self.scratch
        scratch._next = scratch.base

    # -- raw access -----------------------------------------------------------

    def call(self, name: str, *args: int) -> int:
        """Raw hypercall (dispatched directly; one frame per call saved
        over ``ctx.hypercall`` on the busiest path in the simulator)."""
        ctx = self.ctx
        return ctx.kernel.hypercall(ctx.partition, name, args)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write into partition memory (partition rights apply)."""
        self._space.write(address, data)

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read from partition memory (partition rights apply)."""
        return self._space.read(address, size)

    def place(self, data: bytes) -> int:
        """Copy data into scratch and return its address."""
        addr = self.scratch.alloc(len(data))
        self.write_bytes(addr, data)
        return addr

    def place_cstring(self, text: str) -> int:
        """Place a NUL-terminated ASCII string in scratch."""
        return self.place(text.encode("ascii") + b"\0")

    # -- typed wrappers ----------------------------------------------------------

    def get_time(self, clock_id: int) -> tuple[int, int]:
        """``XM_get_time``: (return code, time value)."""
        addr = self.scratch.alloc(8)
        code = self.call("XM_get_time", clock_id, addr)
        value = 0
        if code == rc.XM_OK:
            value = int.from_bytes(self.read_bytes(addr, 8), "big", signed=True)
        return code, value

    def set_timer(self, clock_id: int, abs_time: int, interval: int) -> int:
        """``XM_set_timer``."""
        return self.call("XM_set_timer", clock_id, abs_time, interval)

    def get_system_status(self) -> tuple[int, XmSystemStatus | None]:
        """``XM_get_system_status``: (return code, status)."""
        addr = self.scratch.alloc(XmSystemStatus.SIZE)
        code = self.call("XM_get_system_status", addr)
        if code != rc.XM_OK:
            return code, None
        return code, XmSystemStatus.unpack(self.read_bytes(addr, XmSystemStatus.SIZE))

    def get_partition_status(self, partition_id: int) -> tuple[int, XmPartitionStatus | None]:
        """``XM_get_partition_status``: (return code, status)."""
        addr = self.scratch.alloc(XmPartitionStatus.SIZE)
        code = self.call("XM_get_partition_status", partition_id, addr)
        if code != rc.XM_OK:
            return code, None
        return code, XmPartitionStatus.unpack(
            self.read_bytes(addr, XmPartitionStatus.SIZE)
        )

    def get_plan_status(self) -> tuple[int, XmPlanStatus | None]:
        """``XM_get_plan_status``: (return code, status)."""
        addr = self.scratch.alloc(XmPlanStatus.SIZE)
        code = self.call("XM_get_plan_status", addr)
        if code != rc.XM_OK:
            return code, None
        return code, XmPlanStatus.unpack(self.read_bytes(addr, XmPlanStatus.SIZE))

    def create_sampling_port(
        self, name: str, max_msg_size: int, direction: int, refresh_us: int = 0
    ) -> int:
        """``XM_create_sampling_port``: descriptor or error code."""
        return self.call(
            "XM_create_sampling_port",
            self.place_cstring(name),
            max_msg_size,
            direction,
            refresh_us,
        )

    def write_sampling_message(self, port: int, data: bytes) -> int:
        """``XM_write_sampling_message``."""
        return self.call("XM_write_sampling_message", port, self.place(data), len(data))

    def read_sampling_message(self, port: int, max_size: int) -> tuple[int, bytes, int]:
        """``XM_read_sampling_message``: (code/length, data, validity)."""
        buf = self.scratch.alloc(max(max_size, 1))
        flags = self.scratch.alloc(4)
        code = self.call("XM_read_sampling_message", port, buf, max_size, flags)
        if code < 0 or code == rc.XM_OK:
            return code, b"", 0
        data = self.read_bytes(buf, code)
        validity = int.from_bytes(self.read_bytes(flags, 4), "big")
        return code, data, validity

    def create_queuing_port(
        self, name: str, max_no_msgs: int, max_msg_size: int, direction: int
    ) -> int:
        """``XM_create_queuing_port``: descriptor or error code."""
        return self.call(
            "XM_create_queuing_port",
            self.place_cstring(name),
            max_no_msgs,
            max_msg_size,
            direction,
        )

    def send_queuing_message(self, port: int, data: bytes) -> int:
        """``XM_send_queuing_message``."""
        return self.call("XM_send_queuing_message", port, self.place(data), len(data))

    def receive_queuing_message(self, port: int, max_size: int) -> tuple[int, bytes, int]:
        """``XM_receive_queuing_message``: (code/length, data, remaining)."""
        buf = self.scratch.alloc(max(max_size, 1))
        flags = self.scratch.alloc(4)
        code = self.call("XM_receive_queuing_message", port, buf, max_size, flags)
        if code < 0 or code == rc.XM_OK:
            return code, b"", 0
        data = self.read_bytes(buf, code)
        remaining = int.from_bytes(self.read_bytes(flags, 4), "big")
        return code, data, remaining

    def get_port_status(self, port: int) -> tuple[int, XmPortStatus | None]:
        """``XM_get_port_status``: (return code, status)."""
        addr = self.scratch.alloc(XmPortStatus.SIZE)
        code = self.call("XM_get_port_status", port, addr)
        if code != rc.XM_OK:
            return code, None
        return code, XmPortStatus.unpack(self.read_bytes(addr, XmPortStatus.SIZE))

    def hm_status(self) -> tuple[int, XmHmStatus | None]:
        """``XM_hm_status``: (return code, status)."""
        addr = self.scratch.alloc(XmHmStatus.SIZE)
        code = self.call("XM_hm_status", addr)
        if code != rc.XM_OK:
            return code, None
        return code, XmHmStatus.unpack(self.read_bytes(addr, XmHmStatus.SIZE))

    def hm_read(self, max_logs: int) -> tuple[int, list[XmHmLogEntry]]:
        """``XM_hm_read``: (count or error, entries)."""
        addr = self.scratch.alloc(XmHmLogEntry.SIZE * max(max_logs, 1))
        code = self.call("XM_hm_read", addr, max_logs)
        if code <= 0:
            return code, []
        raw = self.read_bytes(addr, XmHmLogEntry.SIZE * code)
        entries = [
            XmHmLogEntry.unpack(raw[i * XmHmLogEntry.SIZE :])
            for i in range(code)
        ]
        return code, entries

    def write_console(self, text: str) -> int:
        """``XM_write_console``."""
        data = text.encode("ascii")
        return self.call("XM_write_console", self.place(data), len(data))
