"""Partition application base class.

The cyclic scheduler calls :meth:`PartitionApplication.step` once per
slot with a :class:`~repro.xm.sched.SlotContext`.  Applications override
:meth:`on_boot` (first slot after a partition boot/reset) and
:meth:`on_step` (every slot).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xal.runtime import Libxm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xm.sched import SlotContext


class PartitionApplication:
    """Base class for partition software."""

    def __init__(self) -> None:
        self.booted = False
        self.steps = 0
        #: Per-app libxm binding, rebound (scratch recycled) every slot —
        #: observationally identical to the fresh-per-slot construction
        #: it replaced, without re-deriving the memory layout each step.
        self._xm: Libxm | None = None

    def step(self, ctx: "SlotContext") -> None:
        """Scheduler entry point; dispatches boot/virq/step hooks."""
        xm = self._xm
        if xm is None or xm._space is not ctx.partition.address_space:
            xm = Libxm(ctx)
            self._xm = xm
        else:
            xm.rebind(ctx)
        if not self.booted:
            self.booted = True
            self.on_boot(ctx, xm)
        self._deliver_virqs(ctx, xm)
        self.steps += 1
        self.on_step(ctx, xm)

    def _deliver_virqs(self, ctx: "SlotContext", xm: Libxm) -> None:
        """Deliver pending, unmasked virtual interrupts (highest first).

        Mirrors XtratuM's para-virtualised interrupt model: virtual IRQs
        pend while the partition is off-CPU and are delivered when it
        next runs, clearing the pending bit per delivery.
        """
        partition = ctx.partition
        deliverable = partition.virq_pending & partition.virq_mask
        line = deliverable.bit_length() - 1
        while line >= 0:
            if deliverable & (1 << line):
                partition.virq_pending &= ~(1 << line)
                self.on_virq(ctx, xm, line)
            line -= 1

    def on_boot(self, ctx: "SlotContext", xm: Libxm) -> None:
        """First execution after (re)boot; open ports, init state."""

    def on_virq(self, ctx: "SlotContext", xm: Libxm, line: int) -> None:
        """A virtual interrupt was delivered (unmasked + pending)."""

    def on_step(self, ctx: "SlotContext", xm: Libxm) -> None:
        """Periodic slot work."""
