"""Performance — test generation (Fig. 5 pipeline).

Benchmarks the preparation-side machinery: matrix building, Eq. 1
cartesian generation of all ~2.9k datasets, mutant C-source rendering
and the XML round trips.  These run thousands of times in iterative
campaign work, so they must stay cheap.
"""

from repro.fault.apimodel import api_model_from_table
from repro.fault.combinator import CartesianStrategy
from repro.fault.dictionaries import DictionarySet
from repro.fault.matrix import build_matrix
from repro.fault.mutant import generate_mutants
from repro.fault.xmlio import (
    api_model_from_xml,
    api_model_to_xml,
    dictionaries_from_xml,
    dictionaries_to_xml,
)


def _all_specs():
    model = api_model_from_table()
    dicts = DictionarySet()
    strategy = CartesianStrategy()
    specs = []
    for fn in model.tested_functions():
        matrix = build_matrix(fn, dicts)
        specs.extend(strategy.generate(matrix))
    return specs


def test_full_dataset_generation_benchmark(benchmark):
    datasets = benchmark(_all_specs)
    assert len(datasets) == 2864


def test_matrix_building_benchmark(benchmark):
    model = api_model_from_table()
    dicts = DictionarySet()
    tested = model.tested_functions()

    def build_all():
        return [build_matrix(fn, dicts) for fn in tested]

    matrices = benchmark(build_all)
    assert len(matrices) == 39


def test_mutant_source_rendering_benchmark(benchmark):
    model = api_model_from_table()
    dicts = DictionarySet()
    fn = model.lookup("XM_memory_copy")  # the largest suite (1200 mutants)
    matrix = build_matrix(fn, dicts)

    def render_all():
        return list(generate_mutants(matrix, CartesianStrategy()))

    mutants = benchmark(render_all)
    assert len(mutants) == 1200
    assert all("XM_memory_copy(" in m.c_source for m in mutants)


def test_api_xml_roundtrip_benchmark(benchmark):
    model = api_model_from_table()

    def roundtrip():
        return api_model_from_xml(api_model_to_xml(model))

    parsed = benchmark(roundtrip)
    assert len(parsed) == 61


def test_datatype_xml_roundtrip_benchmark(benchmark):
    dicts = DictionarySet()

    def roundtrip():
        return dictionaries_from_xml(dictionaries_to_xml(dicts))

    parsed = benchmark(roundtrip)
    assert len(parsed.dictionaries) == len(dicts.dictionaries)
