"""Table III — the test campaign (the paper's headline table).

The full campaign runs once per session (fixture); here we assert the
reproduced table against the paper row by row and benchmark the
log-analysis phase (oracle + classification + clustering) over the full
2.9k-test log.

Expectations:

- coverage columns (hypercalls total / tested) match the paper exactly;
- per-category *issue counts* match exactly (0/3/3/3 pattern, Σ=9);
- per-category *test counts* preserve the paper's ordering and stay
  within a modest factor (the paper's per-parameter dictionaries are
  not fully specified — see DESIGN.md).
"""

import pytest

from repro.fault import report


@pytest.fixture(scope="module")
def rows(full_result):
    return {r.category: r for r in report.table3_rows(full_result)}


class TestCoverageColumns:
    def test_hypercall_totals_match_paper(self, rows):
        for category, (total, tested, _tests, _issues) in report.PAPER_TABLE3.items():
            assert rows[category].total_hypercalls == total, category
            assert rows[category].hypercalls_tested == tested, category

    def test_grand_totals(self, full_result):
        totals = report.table3_totals(full_result)
        assert totals.total_hypercalls == 61
        assert totals.hypercalls_tested == 39


class TestIssueColumns:
    def test_per_category_issues_match_paper(self, rows):
        for category, (_t, _i, _n, issues) in report.PAPER_TABLE3.items():
            assert rows[category].raised_issues == issues, category

    def test_nine_issues_total(self, full_result):
        assert report.table3_totals(full_result).raised_issues == 9


class TestTestCountColumns:
    def test_counts_track_paper_magnitudes(self, rows):
        for category, (_t, _i, paper_tests, _issues) in report.PAPER_TABLE3.items():
            measured = rows[category].tests
            assert measured > 0
            ratio = measured / paper_tests
            assert 0.5 <= ratio <= 1.5, (category, measured, paper_tests)

    def test_count_ordering_matches_paper(self, rows):
        measured_order = sorted(rows, key=lambda c: rows[c].tests, reverse=True)
        paper_order = sorted(
            report.PAPER_TABLE3, key=lambda c: report.PAPER_TABLE3[c][2], reverse=True
        )
        assert measured_order == paper_order

    def test_grand_total_within_ten_percent(self, full_result):
        measured = report.table3_totals(full_result).tests
        assert abs(measured - 2662) / 2662 < 0.10


def test_analysis_phase_benchmark(benchmark, full_result):
    """Benchmark re-analysing the full campaign log."""
    from repro.fault.campaign import Campaign

    campaign = Campaign.paper_campaign()
    result = benchmark.pedantic(
        campaign.analyse, args=(full_result.log,), rounds=3, iterations=1
    )
    assert result.issue_count() == 9


def test_table3_render_benchmark(benchmark, full_result):
    """Render Table III; the benchmarked path also re-asserts the
    headline reproduction facts so `--benchmark-only` runs validate it."""
    text = benchmark(report.table3, full_result)
    print("\n" + text)
    measured = {r.category: r for r in report.table3_rows(full_result)}
    for category, (total, tested, _tests, issues) in report.PAPER_TABLE3.items():
        assert measured[category].total_hypercalls == total, category
        assert measured[category].hypercalls_tested == tested, category
        assert measured[category].raised_issues == issues, category
    totals = report.table3_totals(full_result)
    assert (totals.total_hypercalls, totals.hypercalls_tested) == (61, 39)
    assert totals.raised_issues == 9
    assert abs(totals.tests - 2662) / 2662 < 0.10
