"""Extension — phantom parameters and state stress (§V).

Covers the 10 parameter-less hypercalls (16 % of the API that Fig. 8
leaves out of scope) under five phantom system states, and benchmarks
one phantom case execution.
"""

import pytest

from repro.fault.phantom import PhantomCampaign, PhantomCase, PhantomState


@pytest.fixture(scope="module")
def phantom_result():
    return PhantomCampaign().run()


class TestPhantomCoverage:
    def test_case_matrix(self, phantom_result):
        assert len(phantom_result.records) == 10 * 5

    def test_parameterless_services_robust(self, phantom_result):
        assert phantom_result.failures == []

    def test_every_state_exercised(self, phantom_result):
        states = {r.test_id.split("@", 1)[1] for r in phantom_result.records}
        assert states == {s.value for s in PhantomState}

    def test_halt_system_contained_under_stress(self, phantom_result):
        for record in phantom_result.records:
            if record.function == "XM_halt_system":
                assert record.kernel_halted
                assert not record.sim_crashed


def test_phantom_campaign_benchmark(benchmark, phantom_result):
    """Asserts the phantom coverage on the `--benchmark-only` path."""
    failures = benchmark(lambda: list(phantom_result.failures))
    assert len(phantom_result.records) == 50
    assert failures == []


def test_phantom_case_benchmark(benchmark):
    campaign = PhantomCampaign(states=(PhantomState.HM_PRESSURE,))
    case = PhantomCase("XM_hm_reset_events", PhantomState.HM_PRESSURE)
    record = benchmark.pedantic(
        campaign._run_case, args=(case,), rounds=3, iterations=1
    )
    assert record.invoked
