"""Performance — warm-boot snapshot execution (boot once, restore per test).

The dominant fixed cost of a robustness test is system bring-up: pack the
TSP image, boot the kernel and run the settle frame.  The warm-boot
executor pays it once per ``(testbed, kernel_version, layout)`` key,
snapshots the settled system, and turns per-test bring-up into a
snapshot restore.  This bench pins down three claims:

1. restoring is >= 3x faster than the cold bring-up it replaces;
2. end-to-end serial campaign throughput improves (the shared test
   window — frames of simulated partition activity — is unaffected by
   the execution mode and caps the overall ratio);
3. warm boot changes *nothing* observable: across the full paper
   campaign every record matches cold boot field for field, the nine
   issues reproduce on 3.4.0 and none on 3.4.1, and Table III is
   unchanged.

Timing uses medians over several trials (CI hosts are noisy); the
throughput numbers land in ``BENCH_campaign.json`` at the repo root.
"""

import os
import statistics
import time

import pytest

from conftest import record_bench
from repro.fault import report
from repro.fault.campaign import Campaign
from repro.fault.executor import TestExecutor
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.testbed import build_system
from repro.tsim.simulator import SnapshotCache
from repro.xm.vulns import FIXED_VERSION, KNOWN_VULNERABILITIES

#: Same mid-sized scope as bench_executor_parallel (232 tests).
SCOPE = ("XM_reset_partition", "XM_get_partition_status", "XM_halt_partition")
TRIALS = 5

#: Quick mode (CI perf smoke): fewer trials, campaign halves single-run.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def median_seconds(fn, trials=TRIALS, inner=1):
    samples = []
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - start) / inner)
    return statistics.median(samples)


def record_key(record):
    data = record.to_dict()
    data.pop("wall_time_s")  # the only nondeterministic field
    return data


class TestBringupAmortisation:
    """Restore must beat the pack+boot+settle sequence it replaces 3x."""

    def test_restore_replaces_bringup_at_least_3x_faster(self):
        executor = TestExecutor(snapshot_cache=SnapshotCache())
        executor.prepare()
        assert executor.warm_boot, "EagleEye must be snapshottable"
        snapshot = executor.snapshot_cache.get_or_build(
            executor._snapshot_key(), executor._build_snapshot
        )

        def cold_bringup():
            sim = build_system(
                fdir_payload=executor._make_payload(),
                kernel_version=executor.kernel_version,
            )
            kernel = sim.boot()
            sim.run_until(kernel.major_frame_us - 1)

        def warm_bringup():
            sim = snapshot.restore()
            snapshot.recycle(sim)

        cold = median_seconds(cold_bringup, inner=20)
        warm = median_seconds(warm_bringup, inner=20)
        speedup = cold / warm
        record_bench(
            "warm_boot",
            bringup_cold_ms=round(cold * 1e3, 3),
            bringup_warm_ms=round(warm * 1e3, 3),
            bringup_speedup=round(speedup, 2),
            snapshot_blob_bytes=len(snapshot.blob),
            snapshot_constants=len(snapshot.constants),
        )
        assert speedup >= 3.0, f"bring-up only {speedup:.2f}x faster"


class TestSerialThroughput:
    """End-to-end: the same campaign, warm vs cold, serial."""

    def test_warm_serial_beats_cold_serial(self):
        def run(warm):
            campaign = Campaign(functions=SCOPE, warm_boot=warm)
            result = campaign.run()
            assert result.total_tests == 232
            assert result.issue_count() == 0

        warm = median_seconds(lambda: run(True), trials=3)
        cold = median_seconds(lambda: run(False), trials=3)
        record_bench(
            "campaign_throughput",
            scope_functions=list(SCOPE),
            scope_tests=232,
            serial_cold_tests_per_s=round(232 / cold, 1),
            serial_warm_tests_per_s=round(232 / warm, 1),
            warm_over_cold_serial=round(cold / warm, 2),
        )
        assert warm < cold, f"warm {warm:.2f}s not faster than cold {cold:.2f}s"

    def test_single_warm_test_benchmark(self, benchmark):
        """Restore + test window + record for one nominal test."""
        executor = TestExecutor(snapshot_cache=SnapshotCache())
        executor.prepare()
        spec = TestCallSpec(
            "bench#warm",
            "XM_mask_irq",
            "Interrupt Management",
            (ArgSpec("irqLine", "1", value=1),),
        )
        record = benchmark(executor.run, spec)
        assert record.first_rc == 0


class TestDeltaReset:
    """Delta reset must beat the snapshot restore it replaces.

    Per-test bring-up under delta reset is one in-place journal revert;
    under plain warm boot it is an unpickle plus buffer recycling.  The
    micro comparison times both on the same snapshot (the delta side is
    dirtied with a test-sized window before every reset so it reverts
    real work, not a no-op), and the macro comparison runs the same
    232-test campaign both ways.  The micro assertion is the CI perf
    gate: it is overhead-only, so it holds on any host.
    """

    def test_delta_reset_beats_restore(self):
        executor = TestExecutor(snapshot_cache=SnapshotCache())
        executor.prepare()
        assert executor.warm_boot, "EagleEye must be snapshottable"
        snapshot = executor.snapshot_cache.get_or_build(
            executor._snapshot_key(), executor._build_snapshot
        )

        inner = 5 if QUICK else 20
        sim = snapshot.restore()
        sim.arm_delta()
        window_us = sim.kernel.major_frame_us * 2
        journal_entries = len(sim._journal._entries)
        reset_samples = []
        for _ in range(TRIALS):
            elapsed = 0.0
            for _ in range(inner):
                sim.run_until(sim.now_us + window_us)  # dirty real state
                start = time.perf_counter()
                sim.reset()
                elapsed += time.perf_counter() - start
            reset_samples.append(elapsed / inner)
        delta = statistics.median(reset_samples)
        sim.disarm_delta()
        snapshot.recycle(sim)

        def warm_bringup():
            restored = snapshot.restore()
            snapshot.recycle(restored)

        restore = median_seconds(warm_bringup, inner=inner)
        record_bench(
            "delta_reset",
            bringup_delta_ms=round(delta * 1e3, 3),
            bringup_restore_ms=round(restore * 1e3, 3),
            delta_over_restore=round(restore / delta, 2),
            journal_entries=journal_entries,
        )
        assert delta <= restore, (
            f"delta reset {delta * 1e3:.3f}ms slower than "
            f"full restore {restore * 1e3:.3f}ms"
        )

    def test_delta_serial_campaign_throughput(self):
        def run(delta):
            campaign = Campaign(
                functions=SCOPE, warm_boot=True, delta_reset=delta
            )
            result = campaign.run()
            assert result.total_tests == 232
            assert result.issue_count() == 0

        trials = 1 if QUICK else 3
        with_delta = median_seconds(lambda: run(True), trials=trials)
        without = median_seconds(lambda: run(False), trials=trials)
        record_bench(
            "delta_reset",
            scope_tests=232,
            serial_delta_tests_per_s=round(232 / with_delta, 1),
            serial_restore_tests_per_s=round(232 / without, 1),
            delta_over_restore_serial=round(without / with_delta, 2),
        )


class TestFullCampaignEquivalence:
    """Warm boot is an optimisation, not a behaviour change (Table III)."""

    @pytest.fixture(scope="class")
    def cold_full(self):
        return Campaign.paper_campaign(warm_boot=False).run()

    def test_full_campaign_records_identical(self, full_result, cold_full):
        # conftest's full_result runs warm (the default).
        warm_records = [record_key(r) for r in full_result.log]
        cold_records = [record_key(r) for r in cold_full.log]
        assert warm_records == cold_records

    def test_all_nine_issues_reproduce_warm(self, full_result):
        assert full_result.issue_count() == 9
        found = {issue.matched_vulnerability for issue in full_result.issues}
        assert found == {v.ident for v in KNOWN_VULNERABILITIES}

    def test_table3_unchanged(self, full_result, cold_full):
        assert report.table3(full_result) == report.table3(cold_full)

    def test_fixed_kernel_clean_warm(self):
        result = Campaign.paper_campaign(kernel_version=FIXED_VERSION).run()
        assert result.issue_count() == 0
