"""Performance — compiled suite execution (plans + batched passes).

PR 5 left serial delta-reset throughput at 2576.7 tests/s
(``delta_reset.serial_delta_tests_per_s`` in ``BENCH_campaign.json``).
This bench measures what the compilation layer adds on top of that
baseline: per-spec :class:`~repro.fault.plan.CompiledPlan` entries
(resolved/converted arguments, dispatch prechecks, record skeletons),
batched same-hypercall passes through one armed simulator loop, and the
flattened hot structures underneath (dirty-span memory accounting,
fused access checks, memoized suite/plan compilation).

Two kinds of claims, measured differently:

* **Absolute throughput** is recorded with a best-of-N estimator, not a
  median: the recording hosts suffer heavy scheduling noise (the same
  build has measured anywhere between ~60% and 100% of its quiet-host
  speed minutes apart), and the fastest trial is the one closest to the
  true cost of the code.  The recorded ``before``/``after`` figures are
  measured back-to-back in the same process, so they share a host
  window even when the stored PR 5 number does not.
* **The CI gate** (quick mode) is relative and *paired* — each trial
  runs the uncompiled path and the compiled path back-to-back, so both
  sides of a ratio share one host window, and the gate passes if the
  best pair shows compiled no slower than uncompiled (within a small
  noise allowance).  An unpaired ``compiled <= uncompiled`` assertion
  flakes here: the real margin (~5%) is smaller than the window-to-window
  swing.  The gate is backed by a full ``verify_plan`` audit over the
  same scope, because a fast plan that lies is worthless.
"""

import os
import statistics
import time

from conftest import record_bench
from repro.fault.campaign import Campaign

#: Same mid-sized scope as bench_warm_boot (232 tests).
SCOPE = ("XM_reset_partition", "XM_get_partition_status", "XM_halt_partition")

#: Quick mode (CI perf smoke): fewer trials.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

TRIALS = 3 if QUICK else 8

#: The PR 5 baseline this layer is measured against (see module docs).
PR5_BASELINE_TESTS_PER_S = 2576.7

#: Paired-ratio slack: "no slower" up to this fraction is host noise,
#: not a regression (a real slowdown shows in *every* pair).
NOISE_ALLOWANCE = 0.02


def once(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def best_seconds(fn, trials=TRIALS):
    """Fastest of ``trials`` runs — the least-noise estimator on a
    steal-prone host (any slower sample is the scheduler, not the code)."""
    return min(once(fn) for _ in range(trials))


def run_campaign(**overrides):
    campaign = Campaign(functions=SCOPE, **overrides)
    result = campaign.run(progress=None)
    assert result.total_tests == 232
    assert result.issue_count() == 0
    return result


class TestCompiledThroughput:
    """Compiled/batched execution vs the uncompiled delta-reset path."""

    def test_compiled_beats_uncompiled_and_records(self):
        # Warm every shared cache (snapshots, suite and plan memos) so
        # both sides measure steady-state execution.
        run_campaign()
        run_campaign(compiled_plan=False)

        # Paired trials: uncompiled then compiled back-to-back, so each
        # ratio's numerator and denominator share one host window.
        uncompiled = compiled = float("inf")
        ratios = []
        for _ in range(TRIALS):
            u = once(lambda: run_campaign(compiled_plan=False))
            c = once(lambda: run_campaign())
            uncompiled = min(uncompiled, u)
            compiled = min(compiled, c)
            ratios.append(c / u)
        unbatched = best_seconds(lambda: run_campaign(batch_hypercalls=False))

        after = 232 / compiled
        before = 232 / uncompiled
        speedups = [1.0 / ratio for ratio in ratios]
        record_bench(
            "compiled_plan",
            scope_tests=232,
            serial_delta_tests_per_s_before=round(before, 1),
            serial_delta_tests_per_s_after=round(after, 1),
            serial_unbatched_tests_per_s=round(232 / unbatched, 1),
            # One estimator for the compiled-vs-uncompiled claim: the
            # paired per-trial speedups (each numerator/denominator
            # shares a host window).  The old unpaired min/min ratio
            # (`compiled_over_uncompiled`) routinely contradicted the
            # paired figure — best-of minima from different windows
            # compare two different hosts-of-the-moment — so it and the
            # cross-session `speedup_vs_pr5_recorded` are scrubbed.
            paired_speedup_best=round(max(speedups), 3),
            paired_speedup_median=round(statistics.median(speedups), 3),
            paired_ratio_best=round(min(ratios), 3),
            compiled_over_uncompiled=None,
            speedup_vs_pr5_recorded=None,
            pr5_recorded_tests_per_s=PR5_BASELINE_TESTS_PER_S,
            estimator=f"paired, {TRIALS} trials",
        )
        # The CI gate: in the cleanest shared window, compiled execution
        # is no slower than uncompiled (a real regression slows *every*
        # pair; a single clean pair is enough to clear a fast path).
        assert min(ratios) <= 1.0 + NOISE_ALLOWANCE, (
            f"compiled plan slower than uncompiled in every paired "
            f"window: best ratio {min(ratios):.3f} "
            f"(compiled {after:.1f} vs uncompiled {before:.1f} tests/s)"
        )


class TestPlanAudit:
    """A fast plan that lies is worthless: audit the full bench scope."""

    def test_verify_plan_full_scope(self):
        result = run_campaign(verify_plan=True)
        modes = result.execution_stats["reset_modes"]
        assert modes["plan_verified"] == 232
