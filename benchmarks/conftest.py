"""Shared benchmark fixtures.

The full paper campaign (~2.9k tests) runs once per session; benches
that regenerate tables/figures reuse its result and benchmark the
(re)analysis or rendering path, keeping `--benchmark-only` runs fast.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.fault.campaign import Campaign, CampaignResult

#: The three hypercalls carrying the paper's findings.
VULNERABLE_FUNCTIONS = ("XM_reset_system", "XM_set_timer", "XM_multicall")

#: Machine-readable campaign-throughput numbers, checked in at the repo
#: root and refreshed by bench_warm_boot.py / bench_executor_parallel.py.
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def record_bench(section: str, **values: object) -> None:
    """Merge one section of measurements into BENCH_campaign.json.

    Every section gets ``host_cpus`` stamped automatically: throughput
    and scaling numbers are meaningless without knowing how many cores
    the recording host actually had (a workers>cpus configuration on a
    small host measures oversubscription, not speed-up).  A value of
    ``None`` deletes the key, so a re-run that *skips* a configuration
    can scrub the stale figure a previous host recorded for it.
    """
    data: dict = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            data = {}
    values.setdefault("host_cpus", os.cpu_count())
    section_data = data.setdefault(section, {})
    for key, value in values.items():
        if value is None:
            section_data.pop(key, None)
        else:
            section_data[key] = value
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="session")
def full_result() -> CampaignResult:
    """The complete Table III campaign on the vulnerable kernel."""
    return Campaign.paper_campaign().run()


@pytest.fixture(scope="session")
def vulnerable_result() -> CampaignResult:
    """The quick campaign covering only the finding-bearing hypercalls."""
    return Campaign(functions=VULNERABLE_FUNCTIONS).run()
