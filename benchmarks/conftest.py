"""Shared benchmark fixtures.

The full paper campaign (~2.9k tests) runs once per session; benches
that regenerate tables/figures reuse its result and benchmark the
(re)analysis or rendering path, keeping `--benchmark-only` runs fast.
"""

from __future__ import annotations

import pytest

from repro.fault.campaign import Campaign, CampaignResult

#: The three hypercalls carrying the paper's findings.
VULNERABLE_FUNCTIONS = ("XM_reset_system", "XM_set_timer", "XM_multicall")


@pytest.fixture(scope="session")
def full_result() -> CampaignResult:
    """The complete Table III campaign on the vulnerable kernel."""
    return Campaign.paper_campaign().run()


@pytest.fixture(scope="session")
def vulnerable_result() -> CampaignResult:
    """The quick campaign covering only the finding-bearing hypercalls."""
    return Campaign(functions=VULNERABLE_FUNCTIONS).run()
