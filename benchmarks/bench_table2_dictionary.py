"""Table II — the xm_s32_t test-value set (and Fig. 3's xm_u32_t).

Asserts the dictionary contents replicate the paper's documented sets
exactly, including the asterisked maybe-valid entries, then benchmarks
dictionary construction.
"""

from repro.fault import report
from repro.fault.dictionaries import builtin_dictionaries

#: Table II: (value, label, asterisked).
PAPER_TABLE2 = [
    (-2147483648, "MIN_S32", False),
    (-16, "-16", True),
    (-1, "-1", True),
    (0, "ZERO", True),
    (1, "1", True),
    (2, "2", True),
    (16, "16", True),
    (2147483647, "MAX_S32", False),
]

#: Fig. 3's xm_u32_t values.
PAPER_FIG3 = [0, 1, 2, 16, 4294967295]


def test_table2_matches_paper_exactly(benchmark):
    rows = benchmark(report.table2_rows)
    measured = [(r["value"], r["label"], r["maybe_valid"]) for r in rows]
    assert measured == PAPER_TABLE2


def test_fig3_u32_set_matches_paper(benchmark):
    dicts = benchmark(builtin_dictionaries)
    assert [v.value for v in dicts["xm_u32_t"].values] == PAPER_FIG3


def test_table2_renders(benchmark):
    text = benchmark(report.table2)
    assert "MIN_S32" in text and "MAX_S32" in text
    print("\n" + text)
