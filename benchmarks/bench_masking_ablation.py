"""Ablation — fault masking (Fig. 7).

Quantifies the paper's argument for seeding dictionaries with valid
values: stripping every maybe-valid entry and re-running the
finding-bearing suites loses the findings that need a valid earlier
parameter to surface.
"""

import pytest

from repro.fault.masking import masked_issue_comparison, masking_pairs

from conftest import VULNERABLE_FUNCTIONS


@pytest.fixture(scope="module")
def ablation():
    return masked_issue_comparison(functions=VULNERABLE_FUNCTIONS)


class TestMaskingAblation:
    def test_full_dictionaries_find_all_nine(self, ablation):
        assert len(ablation.full_issue_ids) == 9

    def test_stripped_dictionaries_lose_majority(self, ablation):
        # 6 of 9 findings require maybe-valid entries.
        assert len(ablation.masked_issue_ids) == 6
        assert len(ablation.stripped_issue_ids) == 3

    def test_fig7_scenario_endaddr_masked(self, ablation):
        """The exact Fig. 7 pattern on XM_multicall."""
        assert "XM-MC-2" in ablation.masked_issue_ids  # endAddr defect
        assert "XM-MC-1" in ablation.stripped_issue_ids  # startAddr survives

    def test_temporal_break_needs_fully_valid_dataset(self, ablation):
        assert "XM-MC-3" in ablation.masked_issue_ids

    def test_crash_findings_need_valid_abstime(self, ablation):
        assert {"XM-ST-1", "XM-ST-2"} <= ablation.masked_issue_ids

    def test_pure_boundary_findings_survive(self, ablation):
        # LLONG_MIN interval and the all-ones reset mode are boundary
        # values, so they survive the ablation.
        assert {"XM-ST-3", "XM-RS-3"} <= ablation.stripped_issue_ids


def test_masking_evidence_mining_benchmark(benchmark, ablation):
    pairs = benchmark(masking_pairs, ablation.full_result)
    assert any(
        p.masking_param == "startAddr" and p.masked_param == "endAddr"
        for p in pairs
    )
    # Headline ablation facts, re-checked on the benchmark-only path.
    assert len(ablation.full_issue_ids) == 9
    assert len(ablation.masked_issue_ids) == 6
