"""Section IV — the nine raised issues, one by one.

The ground truth is the defect registry (`repro.xm.vulns`); the bench
asserts the campaign rediscovers each of the nine documented findings
with the right failure mechanism and severity class, and benchmarks the
issue-clustering stage.
"""

import pytest

from repro.fault.classify import FailureKind, Severity
from repro.fault.issues import cluster_issues
from repro.xm.vulns import KNOWN_VULNERABILITIES


@pytest.fixture(scope="module")
def issues_by_ident(vulnerable_result):
    return {
        issue.matched_vulnerability: issue for issue in vulnerable_result.issues
    }


class TestAllNineFindings:
    def test_exactly_nine(self, vulnerable_result):
        assert vulnerable_result.issue_count() == 9

    def test_every_known_vulnerability_matched(self, issues_by_ident):
        assert set(issues_by_ident) == {v.ident for v in KNOWN_VULNERABILITIES}

    @pytest.mark.parametrize("ident,mode", [("XM-RS-1", "2"), ("XM-RS-2", "16")])
    def test_reset_system_cold_resets(self, issues_by_ident, ident, mode):
        issue = issues_by_ident[ident]
        assert issue.kind is FailureKind.UNEXPECTED_RESET
        assert issue.severity is Severity.RESTART
        assert "cold" in issue.description

    def test_reset_system_warm_reset(self, issues_by_ident):
        issue = issues_by_ident["XM-RS-3"]
        assert "warm" in issue.description
        assert "MAX_U32" in issue.detail_key

    def test_set_timer_stack_overflow(self, issues_by_ident):
        issue = issues_by_ident["XM-ST-1"]
        assert issue.kind is FailureKind.KERNEL_HALT
        assert issue.severity is Severity.CATASTROPHIC
        assert "stack overflow" in issue.description

    def test_set_timer_simulator_crash(self, issues_by_ident):
        issue = issues_by_ident["XM-ST-2"]
        assert issue.kind is FailureKind.SIM_CRASH
        assert issue.severity is Severity.CATASTROPHIC

    def test_set_timer_negative_interval_silent(self, issues_by_ident):
        issue = issues_by_ident["XM-ST-3"]
        assert issue.kind is FailureKind.WRONG_SUCCESS
        assert issue.severity is Severity.SILENT
        # Both clocks and several absTime values fold into one issue.
        assert issue.case_count >= 4

    def test_multicall_pointer_findings(self, issues_by_ident):
        start = issues_by_ident["XM-MC-1"]
        end = issues_by_ident["XM-MC-2"]
        assert start.kind is end.kind is FailureKind.UNHANDLED_TRAP
        assert start.severity is end.severity is Severity.ABORT
        assert start.detail_key == "param=startAddr"
        assert end.detail_key == "param=endAddr"
        # 20 invalid-start combos vs 4 valid-start/invalid-end combos.
        assert start.case_count == 20
        assert end.case_count == 4

    def test_multicall_temporal_break(self, issues_by_ident):
        issue = issues_by_ident["XM-MC-3"]
        assert issue.kind is FailureKind.TEMPORAL_VIOLATION
        assert issue.severity is Severity.CATASTROPHIC
        assert issue.case_count == 1

    def test_no_spurious_findings_elsewhere(self, full_result):
        spurious = [i for i in full_result.issues if i.matched_vulnerability is None]
        assert spurious == []


def test_issue_clustering_benchmark(benchmark, full_result):
    issues = benchmark(cluster_issues, full_result.classified)
    assert len(issues) == 9
    found = {issue.matched_vulnerability for issue in issues}
    assert found == {v.ident for v in KNOWN_VULNERABILITIES}
