"""Table I — XtratuM data types.

Regenerates the paper's type table from the kernel's type registry and
asserts every row matches, then benchmarks the regeneration.
"""

from repro.fault import report

#: Table I as printed in the paper: basic -> (aliases, bits, C type).
PAPER_TABLE1 = {
    "xm_u8_t": ([], 8, "unsigned char"),
    "xm_s8_t": ([], 8, "signed char"),
    "xm_u16_t": ([], 16, "unsigned short"),
    "xm_s16_t": ([], 16, "signed short"),
    "xm_u32_t": (
        ["xmWord_t", "xmAddress_t", "xmIoAddress_t", "xmSize_t", "xmId_t"],
        32,
        "unsigned int",
    ),
    "xm_s32_t": (["xmSSize_t"], 32, "signed int"),
    "xm_u64_t": ([], 64, "unsigned long long"),
    "xm_s64_t": (["xmTime_t"], 64, "signed long long"),
}


def test_table1_matches_paper_exactly(benchmark):
    rows = benchmark(report.table1_rows)
    measured = {
        row["basic"]: (row["extended"], row["size_bits"], row["c_decl"])
        for row in rows
    }
    assert measured == PAPER_TABLE1


def test_table1_renders(benchmark):
    text = benchmark(report.table1)
    for basic in PAPER_TABLE1:
        assert basic in text
    print("\n" + text)
