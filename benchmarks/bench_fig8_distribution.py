"""Fig. 8 — the campaign distribution.

The paper: 64 % of hypercalls tested; parameter-less calls are 16 % of
the API and "just below 50 per cent" of the untested calls.
"""

from repro.fault import report


def test_fig8_matches_paper(benchmark):
    data = benchmark(report.fig8_data)
    assert data.total_hypercalls == 61
    assert data.tested == 39
    assert round(data.tested_share * 100) == 64
    assert round(data.parameterless_share_of_all * 100) == 16
    # "just below 50 per cent of untested calls"
    assert 0.40 <= data.parameterless_share_of_untested < 0.50


def test_fig8_untested_reasons_documented():
    from repro.fault.apimodel import api_model_from_table

    for fn in api_model_from_table().untested_functions():
        assert fn.untested_reason, fn.name


def test_fig8_renders(benchmark):
    text = benchmark(report.fig8)
    print("\n" + text)
    assert "64%" in text and "16%" in text
