"""Ablation — the revised kernel (3.4.1).

The paper reports each finding's fix ("this service has now been
revised…").  Running the identical campaign against the revised kernel
must raise zero issues; the finding-bearing hypercalls must return the
documented error codes instead.
"""

import pytest

from repro.fault.campaign import Campaign
from repro.xm import rc
from repro.xm.vulns import FIXED_VERSION

from conftest import VULNERABLE_FUNCTIONS


@pytest.fixture(scope="module")
def fixed_result():
    return Campaign(
        functions=VULNERABLE_FUNCTIONS, kernel_version=FIXED_VERSION
    ).run()


class TestRevisedKernel:
    def test_zero_issues(self, fixed_result):
        assert fixed_result.issue_count() == 0
        assert not fixed_result.failures()

    def test_reset_system_validates_mode(self, fixed_result):
        for record in fixed_result.log.by_function("XM_reset_system"):
            if record.arg_labels[0] in ("2", "16", "MAX_U32"):
                assert record.first_rc == rc.XM_INVALID_PARAM
                assert record.resets == []

    def test_set_timer_rejects_small_and_negative_intervals(self, fixed_result):
        for record in fixed_result.log.by_function("XM_set_timer"):
            interval = record.arg_labels[2]
            if interval in ("1", "LLONG_MIN"):
                assert record.first_rc == rc.XM_INVALID_PARAM
            assert not record.kernel_halted
            assert not record.sim_crashed

    def test_multicall_removed(self, fixed_result):
        for record in fixed_result.log.by_function("XM_multicall"):
            assert record.first_rc == rc.XM_NO_SERVICE
            assert record.overruns == 0
            assert record.test_partition_state == "normal"


def test_fixed_campaign_benchmark(benchmark):
    """Wall time of the regression campaign on the revised kernel."""
    campaign = Campaign(
        functions=VULNERABLE_FUNCTIONS, kernel_version=FIXED_VERSION
    )
    result = benchmark.pedantic(campaign.run, rounds=2, iterations=1)
    assert result.issue_count() == 0
