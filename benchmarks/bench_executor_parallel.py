"""Performance — test execution, serial vs process-parallel.

Every test boots a fresh TSP system, so the campaign is embarrassingly
parallel (the paper parallelised with shell scripts over TSIM runs).
Benchmarks one test execution, a serial sub-campaign, and the same
sub-campaign over a 4-worker pool, asserting identical outcomes.
"""

import os

import pytest

from repro.fault.campaign import Campaign
from repro.fault.executor import TestExecutor
from repro.fault.mutant import ArgSpec, TestCallSpec

#: A mid-sized scope: 236-ish tests, a few seconds serial.
SCOPE = ("XM_reset_partition", "XM_get_partition_status", "XM_halt_partition")


def test_single_test_execution_benchmark(benchmark):
    """Boot + 2 major frames + observation for one nominal test."""
    spec = TestCallSpec(
        "bench#0",
        "XM_mask_irq",
        "Interrupt Management",
        (ArgSpec("irqLine", "1", value=1),),
    )
    executor = TestExecutor()
    record = benchmark(executor.run, spec)
    assert record.first_rc == 0


def test_serial_campaign_benchmark(benchmark):
    campaign = Campaign(functions=SCOPE)
    result = benchmark.pedantic(campaign.run, rounds=2, iterations=1)
    assert result.total_tests == 232
    assert result.issue_count() == 0


@pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2,
                    reason="needs >= 2 CPUs")
def test_parallel_campaign_benchmark(benchmark):
    campaign = Campaign(functions=SCOPE)

    def run_parallel():
        return campaign.run(processes=4)

    result = benchmark.pedantic(run_parallel, rounds=2, iterations=1)
    assert result.total_tests == 232
    assert result.issue_count() == 0


def test_parallel_equals_serial_outcomes():
    campaign = Campaign(functions=("XM_set_timer",))
    serial = campaign.run()
    parallel = campaign.run(processes=4)
    key = lambda r: (r.test_id, r.first_rc, r.never_returned, r.sim_crashed)  # noqa: E731
    assert sorted(map(key, serial.log)) == sorted(map(key, parallel.log))
