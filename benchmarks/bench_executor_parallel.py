"""Performance — test execution, serial vs process-parallel.

Tests are independent, so the campaign is embarrassingly parallel (the
paper parallelised with shell scripts over TSIM runs).  The pool workers
are persistent: each builds its warm-boot snapshot once (in the pool
initializer) and then only restores per test.  Benchmarks one test
execution, a serial sub-campaign, and the same sub-campaign over a
4-worker pool, asserting identical outcomes; parallel throughput is
recorded into ``BENCH_campaign.json`` alongside bench_warm_boot's
serial numbers.
"""

import os
import time

import pytest

from conftest import record_bench
from repro.fault.campaign import Campaign
from repro.fault.executor import TestExecutor
from repro.fault.mutant import ArgSpec, TestCallSpec

#: A mid-sized scope: 236-ish tests, a few seconds serial.
SCOPE = ("XM_reset_partition", "XM_get_partition_status", "XM_halt_partition")


def test_single_test_execution_benchmark(benchmark):
    """Boot + 2 major frames + observation for one nominal test."""
    spec = TestCallSpec(
        "bench#0",
        "XM_mask_irq",
        "Interrupt Management",
        (ArgSpec("irqLine", "1", value=1),),
    )
    executor = TestExecutor()
    record = benchmark(executor.run, spec)
    assert record.first_rc == 0


def test_serial_campaign_benchmark(benchmark):
    campaign = Campaign(functions=SCOPE)
    result = benchmark.pedantic(campaign.run, rounds=2, iterations=1)
    assert result.total_tests == 232
    assert result.issue_count() == 0


@pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2,
                    reason="needs >= 2 CPUs")
def test_parallel_campaign_benchmark(benchmark):
    campaign = Campaign(functions=SCOPE)

    def run_parallel():
        return campaign.run(processes=4)

    result = benchmark.pedantic(run_parallel, rounds=2, iterations=1)
    assert result.total_tests == 232
    assert result.issue_count() == 0


def test_parallel_throughput_recorded():
    """Timed parallel warm runs (best of 2) into BENCH_campaign.json.

    Workers are capped at the host CPU count: a 4-worker pool on a
    1-CPU box measures oversubscription overhead, and a recorded
    throughput figure from such a host would be misread as a scaling
    result.  The worker count actually used is recorded beside the
    figure (host_cpus is stamped on every section automatically).
    """
    workers = min(4, os.cpu_count() or 1)
    campaign = Campaign(functions=SCOPE)
    best = None
    for _ in range(2):
        start = time.perf_counter()
        result = campaign.run(processes=workers)
        elapsed = time.perf_counter() - start
        assert result.total_tests == 232
        best = elapsed if best is None else min(best, elapsed)
    record_bench(
        "campaign_throughput",
        parallel_workers=workers,
        parallel_warm_tests_per_s=round(232 / best, 1),
    )


def test_parallel_equals_serial_outcomes():
    campaign = Campaign(functions=("XM_set_timer",))
    serial = campaign.run()
    parallel = campaign.run(processes=4)
    key = lambda r: (r.test_id, r.first_rc, r.never_returned, r.sim_crashed)  # noqa: E731
    assert sorted(map(key, serial.log)) == sorted(map(key, parallel.log))
