"""Figs. 2 and 3 — the two kernel-specific XML inputs.

Regenerates both paper excerpts and asserts their content; benchmarks
excerpt generation.
"""

from repro.fault.xmlio import fig2_excerpt, fig3_excerpt


def test_fig2_api_header_excerpt(benchmark):
    text = benchmark(fig2_excerpt)
    # The paper's exact function and parameters.
    assert 'Function Name="XM_reset_partition" ReturnType="xm_s32_t"' in text
    assert 'Parameter Name="partitionId" Type="xm_s32_t" IsPointer="NO"' in text
    assert 'Parameter Name="resetMode" Type="xm_u32_t" IsPointer="NO"' in text
    assert 'Parameter Name="status" Type="xm_u32_t" IsPointer="NO"' in text
    print("\n" + text)


def test_fig3_datatype_excerpt(benchmark):
    text = benchmark(fig3_excerpt)
    assert 'DataType Name="xm_u32_t"' in text
    for value in ("0", "1", "2", "16", "4294967295"):
        assert f">{value}</Value>" in text
    print("\n" + text)
