"""Extension — the automated oracle (§V's proposed logic model).

The paper detected Silent/Hindering failures by manual cross-checking
and proposed an automated reference model as future work.  This bench
exercises that model: expectation computation over the full campaign,
and the Silent detection it enables (the negative-interval finding is
invisible without it).
"""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.classify import Severity
from repro.fault.oracle import ReferenceOracle


@pytest.fixture(scope="module")
def all_specs():
    return list(Campaign.paper_campaign().iter_specs())


def test_oracle_covers_every_generated_test(all_specs):
    oracle = ReferenceOracle()
    for spec in all_specs:
        assert oracle.expect(spec) is not None


def test_oracle_throughput_benchmark(benchmark, all_specs):
    oracle = ReferenceOracle()

    def expect_all():
        return [oracle.expect(spec) for spec in all_specs]

    expectations = benchmark(expect_all)
    assert len(expectations) == 2864


def test_silent_detection_requires_oracle(vulnerable_result):
    """Without the oracle, XM-ST-3 is undetectable: the call returns a
    success code and no HM event fires."""
    silent = [
        (record, classification)
        for record, _expectation, classification in vulnerable_result.classified
        if classification.severity is Severity.SILENT
    ]
    assert silent
    for record, _classification in silent:
        assert record.first_rc == 0  # looks perfectly healthy...
        assert not record.kernel_halted
        assert not record.sim_crashed
        assert record.resets == []


def test_no_hindering_failures_on_this_kernel(vulnerable_result):
    """The model kernel returns the documented codes everywhere else, so
    the Hindering bucket stays empty — matching the paper, which found
    none (and left their systematic detection as future work)."""
    counts = vulnerable_result.severity_counts()
    assert counts[Severity.HINDERING] == 0
