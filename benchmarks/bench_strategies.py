"""Ablation — dataset generation strategies.

The paper generates all combinations (Eq. 1).  This bench quantifies
the campaign-size/detection trade-off of pairwise and random sampling
on the finding-bearing hypercalls: pairwise keeps 2-way findings but
can miss the timer crashes, which need a specific *3-way* combination
(clock, absTime=1, interval=1).
"""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.combinator import (
    CartesianStrategy,
    OneFactorStrategy,
    PairwiseStrategy,
    RandomSampleStrategy,
)

from conftest import VULNERABLE_FUNCTIONS


def _run(strategy):
    campaign = Campaign(functions=VULNERABLE_FUNCTIONS, strategy=strategy)
    result = campaign.run()
    found = {i.matched_vulnerability for i in result.issues}
    return result.total_tests, found


@pytest.fixture(scope="module")
def outcomes():
    return {
        "cartesian": _run(CartesianStrategy()),
        "one-factor": _run(OneFactorStrategy()),
        "pairwise": _run(PairwiseStrategy()),
        "random25": _run(RandomSampleStrategy(fraction=0.25, seed=2016)),
    }


class TestStrategyTradeoff:
    def test_cartesian_is_reference(self, outcomes):
        tests, found = outcomes["cartesian"]
        assert tests == 62
        assert len(found) == 9

    def test_one_factor_finds_all_nine_cheaply(self, outcomes):
        """The §V idea quantified: with a valid base vector (no
        masking by construction), one-factor-at-a-time keeps all nine
        findings at a fraction of the cartesian cost."""
        tests, found = outcomes["one-factor"]
        assert len(found) == 9
        assert tests < 62 / 2

    def test_pairwise_shrinks_campaign(self, outcomes):
        tests, _found = outcomes["pairwise"]
        assert tests < 62

    def test_pairwise_keeps_two_way_findings(self, outcomes):
        _tests, found = outcomes["pairwise"]
        # All 1- and 2-way findings survive.
        assert {"XM-RS-1", "XM-RS-2", "XM-RS-3", "XM-ST-3"} <= found

    def test_random_sampling_loses_findings(self, outcomes):
        tests, found = outcomes["random25"]
        assert tests < 62
        assert len(found) < 9  # detection is luck-dependent

    def test_report_table(self, outcomes):
        print("\nstrategy    tests  findings")
        for name, (tests, found) in outcomes.items():
            print(f"{name:<10}  {tests:>5}  {len(found)}/9 {sorted(found)}")


def test_strategy_tradeoff_benchmark(benchmark, outcomes):
    """Benchmark result access; asserts the strategy trade-off table on
    the `--benchmark-only` path."""
    summary = benchmark(lambda: {k: (t, len(f)) for k, (t, f) in outcomes.items()})
    assert summary["cartesian"] == (62, 9)
    assert summary["one-factor"][1] == 9
    assert summary["one-factor"][0] < 31
    assert summary["random25"][1] < 9


def test_pairwise_generation_benchmark(benchmark):
    from repro.fault.apimodel import api_model_from_table
    from repro.fault.dictionaries import DictionarySet
    from repro.fault.matrix import build_matrix

    fn = api_model_from_table().lookup("XM_memory_copy")
    matrix = build_matrix(fn, DictionarySet())

    def generate():
        return list(PairwiseStrategy().generate(matrix))

    datasets = benchmark(generate)
    assert 0 < len(datasets) < 1200
