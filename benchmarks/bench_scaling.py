"""Performance — parallel scaling of sharded batch dispatch.

Sweeps worker count (1/2/4/8) and shard size (per-spec, fixed 8, auto)
over the same mid-sized scope bench_executor_parallel uses, recording a
``parallel_scaling`` section into ``BENCH_campaign.json``: tests/s per
configuration plus the speedup of each worker count over the serial
baseline.  Sharded dispatch must beat per-spec dispatch at equal worker
count on any host — it eliminates per-test submission overhead — while
speedup over *serial* needs real cores, so those assertions are gated
on the host actually having them.

Measurement discipline: every figure is a best-of-N (pool startup and
scheduler noise dominate single runs at this scope), and the headline
sharded-vs-per-spec comparison interleaves its runs so slow drift of a
busy host cancels instead of biasing one side.
"""

import os
import time

import pytest

from conftest import record_bench
from repro.fault.campaign import Campaign

#: Same scope as bench_executor_parallel: 232 tests, no issues expected.
SCOPE = ("XM_reset_partition", "XM_get_partition_status", "XM_halt_partition")
TOTAL = 232

WORKER_SWEEP = (1, 2, 4, 8)
SHARD_SWEEP = (1, 8, None)  # None = auto-sized


def _time_once(campaign, **kwargs):
    start = time.perf_counter()
    result = campaign.run(**kwargs)
    elapsed = time.perf_counter() - start
    assert result.total_tests == TOTAL
    assert result.issue_count() == 0
    return elapsed


def _throughput(campaign, rounds=2, **kwargs):
    best = min(_time_once(campaign, **kwargs) for _ in range(rounds))
    return round(TOTAL / best, 1)


def test_scaling_sweep_recorded():
    """The worker x shard sweep, best-of-2 per configuration.

    Worker counts beyond the host's CPU count are skipped and recorded
    as such: on an undersized host they would measure process
    oversubscription, not scaling, and a reader of the JSON could not
    tell the difference.
    """
    cpus = os.cpu_count() or 1
    campaign = Campaign(functions=SCOPE)
    serial = _throughput(campaign)
    sweep = {}
    skipped = []
    for workers in WORKER_SWEEP:
        for shard in SHARD_SWEEP:
            label = f"w{workers}_shard_{shard if shard else 'auto'}"
            if workers > cpus:
                sweep[label] = None  # scrub any stale recorded figure
            else:
                sweep[label] = _throughput(
                    campaign, processes=workers, shard_size=shard
                )
        if workers > cpus:
            skipped.append(f"w{workers}")
            sweep[f"speedup_over_serial_w{workers}"] = None
    record_bench(
        "parallel_scaling",
        scope_tests=TOTAL,
        serial_warm_tests_per_s=serial,
        skipped_oversubscribed=(
            f"{','.join(skipped)} (host has {cpus} CPUs)" if skipped else ""
        ),
        **sweep,
        **{
            f"speedup_over_serial_w{workers}": round(
                sweep[f"w{workers}_shard_auto"] / serial, 2
            )
            for workers in WORKER_SWEEP
            if sweep.get(f"w{workers}_shard_auto") is not None
        },
    )


def test_sharded_beats_per_spec_dispatch():
    """Auto-sized shards outrun per-spec dispatch at equal worker count.

    This holds on any host, single-CPU included: batching replaces one
    pool task (submit, pickle, future resolution) per *test* with one
    per *shard*, and the relay's index/sparse wire format shrinks what
    crosses the pipe — pure overhead elimination, no parallelism
    required.  Runs are interleaved a/b, a/b, ... so host drift hits
    both sides equally.
    """
    campaign = Campaign(functions=SCOPE)
    per_spec, sharded = [], []
    for _ in range(3):
        per_spec.append(_time_once(campaign, processes=4, shard_size=1))
        sharded.append(_time_once(campaign, processes=4))
    per_spec_tps = round(TOTAL / min(per_spec), 1)
    sharded_tps = round(TOTAL / min(sharded), 1)
    record_bench(
        "parallel_scaling",
        per_spec_dispatch_4w_tests_per_s=per_spec_tps,
        sharded_dispatch_4w_tests_per_s=sharded_tps,
        sharded_over_per_spec=round(sharded_tps / per_spec_tps, 2),
    )
    assert sharded_tps > per_spec_tps


@pytest.mark.skipif(
    os.cpu_count() is None or os.cpu_count() < 2, reason="needs >= 2 CPUs"
)
def test_sharded_parallel_beats_serial():
    """With real cores, the sharded parallel campaign outruns serial.

    Workers are capped at the host CPU count so the comparison measures
    parallelism, never oversubscription.
    """
    campaign = Campaign(functions=SCOPE)
    workers = min(4, os.cpu_count() or 1)
    serial = _throughput(campaign)
    sharded = _throughput(campaign, processes=workers)
    assert sharded > serial
