"""Extension — the §VI dry run and the dictionary feedback loop.

Benchmarks the truth-base dry run over the full campaign scope and the
feedback-driven regression campaign, and quantifies the one failure
class a return-code-only dry run cannot see.
"""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.feedback import (
    offending_values,
    regression_dictionaries,
    value_effectiveness,
)
from repro.fault.truthbase import build_truthbase, compare_to_truthbase


@pytest.fixture(scope="module")
def full_truthbase():
    return build_truthbase(Campaign.paper_campaign())


class TestDryRun:
    def test_truthbase_covers_full_campaign(self, full_truthbase):
        assert len(full_truthbase) == 2864

    def test_error_share_is_majority(self, full_truthbase):
        """Most generated datasets are invalid by construction — the
        point of the fault model."""
        assert full_truthbase.expected_error_share() > 0.5

    def test_dry_run_misses_only_isolation_break(self, full_result, full_truthbase):
        divergences = {d.test_id for d in compare_to_truthbase(full_result, full_truthbase)}
        failures = {r.test_id for r, _e, _c in full_result.failures()}
        invisible = failures - divergences
        # Exactly one: the temporal-isolation break returns a documented
        # value while overrunning its slot.
        assert len(invisible) == 1
        assert divergences <= failures


class TestFeedbackLoop:
    def test_offending_values_on_full_campaign(self, full_result):
        offending = offending_values(full_result)
        dictionaries = {v.dictionary for v in offending}
        assert "xm_u32_t" in dictionaries      # reset_system modes
        assert "xmTime_t" in dictionaries      # timer values
        assert "batch_ptr_start" in dictionaries

    def test_regression_campaign_is_much_smaller(self, full_result):
        trimmed = regression_dictionaries(full_result)
        regression = Campaign(dictionaries=trimmed)
        full = Campaign()
        assert regression.total_tests() < full.total_tests() / 4

    def test_regression_campaign_finds_all_nine(self, full_result):
        regression = Campaign(dictionaries=regression_dictionaries(full_result))
        rerun = regression.run()
        found = {i.matched_vulnerability for i in rerun.issues}
        assert len(found) == 9


def test_truthbase_build_benchmark(benchmark):
    campaign = Campaign.paper_campaign()
    base = benchmark.pedantic(build_truthbase, args=(campaign,), rounds=3, iterations=1)
    assert len(base) == 2864


def test_effectiveness_scoring_benchmark(benchmark, full_result):
    scored = benchmark(value_effectiveness, full_result)
    assert scored
    offenders = offending_values(full_result)
    assert {"xm_u32_t", "xmTime_t", "batch_ptr_start"} <= {
        v.dictionary for v in offenders
    }
