"""Durability overhead: streaming checkpoints and worker supervision.

The streaming log flushes every record as it arrives and the supervised
parallel runner relays every record back the moment it exists; both
must stay in the noise next to test execution itself.  Measures a scoped campaign
with and without a streamed log, and a supervised parallel run that
absorbs one injected worker kill, recording the costs into
``BENCH_campaign.json``.
"""

import os
import time

from conftest import record_bench
from repro.fault.campaign import Campaign
from repro.fault.executor import KILL_SPEC_ENV
from repro.fault.testlog import CampaignLog

#: Mid-sized scope, a few seconds serial.
SCOPE = ("XM_reset_partition", "XM_get_partition_status", "XM_halt_partition")


def test_streaming_log_overhead(tmp_path):
    campaign = Campaign(functions=SCOPE)
    campaign.run()  # warm-up: snapshot build stays out of both timings
    plain_s = streamed_s = None
    for round_no in range(2):  # best of 2: single runs are noisy
        start = time.perf_counter()
        plain = campaign.run()
        elapsed = time.perf_counter() - start
        plain_s = elapsed if plain_s is None else min(plain_s, elapsed)

        path = tmp_path / f"stream{round_no}.jsonl"
        start = time.perf_counter()
        streamed = campaign.run(log_path=path)
        elapsed = time.perf_counter() - start
        streamed_s = elapsed if streamed_s is None else min(streamed_s, elapsed)

        assert streamed.total_tests == plain.total_tests == 232
        assert len(CampaignLog.load(path)) == 232
    record_bench(
        "durability",
        serial_tests=plain.total_tests,
        serial_s=round(plain_s, 2),
        serial_streamed_s=round(streamed_s, 2),
        streaming_overhead_pct=round(100 * (streamed_s - plain_s) / plain_s, 1),
    )


def test_fsync_checkpoint_overhead(tmp_path):
    """``--log-fsync`` extends durability from process crashes to host
    power loss at the price of one disk sync per checkpoint; the delta
    against the flush-only stream is what that claim costs."""
    campaign = Campaign(functions=SCOPE)
    campaign.run()  # warm-up: snapshot build stays out of both timings
    flushed_s = synced_s = None
    for round_no in range(2):  # best of 2: single runs are noisy
        start = time.perf_counter()
        flushed = campaign.run(log_path=tmp_path / f"flush{round_no}.jsonl")
        elapsed = time.perf_counter() - start
        flushed_s = elapsed if flushed_s is None else min(flushed_s, elapsed)

        path = tmp_path / f"fsync{round_no}.jsonl"
        start = time.perf_counter()
        synced = campaign.run(log_path=path, log_fsync=True)
        elapsed = time.perf_counter() - start
        synced_s = elapsed if synced_s is None else min(synced_s, elapsed)

        assert synced.total_tests == flushed.total_tests == 232
        assert len(CampaignLog.load(path)) == 232
    record_bench(
        "durability",
        streamed_flush_s=round(flushed_s, 2),
        streamed_fsync_s=round(synced_s, 2),
        fsync_overhead_pct=round(100 * (synced_s - flushed_s) / flushed_s, 1),
    )


def test_supervised_kill_recovery_cost(tmp_path, monkeypatch):
    """A pool that loses a worker mid-campaign still finishes; the
    respawn + probe cost of absorbing one kill is the measured delta."""
    campaign = Campaign(functions=("XM_reset_system", "XM_switch_sched_plan"))
    victim = [
        s for s in campaign.iter_specs() if s.function == "XM_switch_sched_plan"
    ][0]

    clean_s = survived_s = None
    for round_no in range(2):  # best of 2: single runs are noisy
        monkeypatch.delenv(KILL_SPEC_ENV, raising=False)
        start = time.perf_counter()
        clean = campaign.run(processes=2)
        elapsed = time.perf_counter() - start
        clean_s = elapsed if clean_s is None else min(clean_s, elapsed)

        monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
        start = time.perf_counter()
        survived = campaign.run(
            processes=2, log_path=tmp_path / f"killed{round_no}.jsonl"
        )
        elapsed = time.perf_counter() - start
        survived_s = elapsed if survived_s is None else min(survived_s, elapsed)

        assert survived.total_tests == clean.total_tests
        assert sum(1 for r in survived.log if r.worker_killed) == 1
    record_bench(
        "durability",
        parallel_clean_s=round(clean_s, 2),
        parallel_one_kill_s=round(survived_s, 2),
        kill_recovery_cost_s=round(survived_s - clean_s, 2),
    )
