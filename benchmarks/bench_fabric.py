"""Performance — distributed campaign fabric (socket coordinator).

PR 9 measured the mp-pool parallel path at 0.48x serial with one worker
(``parallel_scaling.speedup_over_serial_w1``): per-record relay pumping
cost more than the tests.  The fabric ships records in batched frames,
so its loopback single-worker path must land within 10% of serial
throughput — that is this bench's gate.

Throughput is measured over the **execute window**: the wall time from
the first record's arrival to the last.  Worker bringup (fork, spec
table regeneration, plan compilation, warm-boot snapshot) is a
campaign-size-independent constant that the window excludes, exactly as
the serial figures exclude interpreter startup.  Ratios are *paired* —
serial and fabric trials alternate so both sides of each ratio share a
host window (see bench_compiled.py for why unpaired best-ofs lie).

Scaling points that would oversubscribe the host (workers > cpus) are
skipped and stamped, not recorded: a 4-worker figure from a 1-CPU host
measures the scheduler, not the fabric.
"""

import os
import statistics
import time

import multiprocessing

import pytest
from conftest import record_bench

from repro.fabric import coordinate
from repro.fault.campaign import Campaign
from repro.fault.executor import FAULT_ONCE_DIR_ENV, KILL_SPEC_ENV

#: Same mid-sized scope as bench_warm_boot / bench_compiled (232 tests).
SCOPE = ("XM_reset_partition", "XM_get_partition_status", "XM_halt_partition")

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

TRIALS = 2 if QUICK else 5

#: The gate: loopback fabric at one worker keeps at least this fraction
#: of serial throughput in the cleanest paired window.  Quick mode (CI
#: perf smoke on noisy shared runners) only guards against the relay
#: pathology this PR removed, not the full margin.
W1_GATE = 0.6 if QUICK else 0.9

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="local fabric workers require the fork start method",
)


def execute_window(run, expected=232):
    """Seconds from the first record's arrival to the last's."""
    stamps = []

    def progress(done, total, record):
        stamps.append(time.perf_counter())

    result = run(progress)
    assert result.total_tests == expected
    assert len(stamps) == expected
    return stamps[-1] - stamps[0]


@needs_fork
class TestFabricLoopback:
    """The w1 gate: a fabric of one must not tax the campaign."""

    def test_w1_execute_window_within_gate_and_records(self):
        campaign = Campaign(functions=SCOPE)
        campaign.run()  # warm the parent-side caches once

        serial_s = fabric_s = float("inf")
        ratios = []
        for _ in range(TRIALS):
            s = execute_window(lambda p: campaign.run(progress=p))
            f = execute_window(
                lambda p: coordinate(campaign, workers=1, progress=p)
            )
            serial_s = min(serial_s, s)
            fabric_s = min(fabric_s, f)
            ratios.append(s / f)  # fabric throughput as a share of serial

        serial_tps = 231 / serial_s
        fabric_tps = 231 / fabric_s
        record_bench(
            "fabric",
            scope_tests=232,
            serial_tests_per_s=round(serial_tps, 1),
            loopback_w1_tests_per_s=round(fabric_tps, 1),
            w1_over_serial_best=round(max(ratios), 3),
            w1_over_serial_median=round(statistics.median(ratios), 3),
            estimator=f"paired execute windows, {TRIALS} trials",
        )
        assert max(ratios) >= W1_GATE, (
            f"loopback fabric w1 kept only {max(ratios):.2f}x of serial "
            f"throughput in its best paired window (gate {W1_GATE}); "
            f"fabric {fabric_tps:.1f} vs serial {serial_tps:.1f} tests/s"
        )


@needs_fork
class TestFabricScaling:
    """Scaling curve over worker counts the host can actually run."""

    def test_scaling_curve_skips_oversubscribed(self):
        campaign = Campaign(functions=SCOPE)
        campaign.run()
        cpus = os.cpu_count() or 1
        points = (1, 2, 4)
        measured: dict[int, float] = {}
        skipped = [w for w in points if w > cpus]
        for workers in points:
            if workers in skipped:
                continue
            window = min(
                execute_window(
                    lambda p: coordinate(campaign, workers=workers, progress=p)
                )
                for _ in range(TRIALS)
            )
            measured[workers] = 231 / window
        values = {
            f"scaling_w{w}_tests_per_s": (
                round(measured[w], 1) if w in measured else None
            )
            for w in points
        }
        record_bench(
            "fabric",
            skipped_oversubscribed=(
                ",".join(f"w{w}" for w in skipped) + f" (host has {cpus} CPUs)"
                if skipped
                else None
            ),
            **values,
        )
        assert measured  # at least w1 always runs


@needs_fork
class TestFabricKillRecovery:
    """What one worker death costs a fabric campaign, end to end."""

    def test_kill_recovery_cost(self, monkeypatch, tmp_path):
        campaign = Campaign(functions=SCOPE)
        campaign.run()
        victim = list(campaign.iter_specs())[100]

        def wall(run):
            start = time.perf_counter()
            result = run()
            assert result.total_tests == 232
            return time.perf_counter() - start

        clean = min(
            wall(lambda: coordinate(campaign, workers=2)) for _ in range(TRIALS)
        )

        killed = []
        for index in range(TRIALS):
            once_dir = tmp_path / f"once{index}"
            once_dir.mkdir()
            monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
            monkeypatch.setenv(FAULT_ONCE_DIR_ENV, str(once_dir))
            killed.append(wall(lambda: coordinate(campaign, workers=2)))
            monkeypatch.delenv(KILL_SPEC_ENV)
            monkeypatch.delenv(FAULT_ONCE_DIR_ENV)

        record_bench(
            "fabric",
            kill_clean_s=round(clean, 2),
            kill_one_death_s=round(min(killed), 2),
            kill_recovery_cost_s=round(min(killed) - clean, 2),
        )
