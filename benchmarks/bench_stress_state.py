"""Extension — state-based stress campaigns (§V).

Quantifies the paper's claim that robustness results depend on system
state: under HM-log pressure, ``XM_hm_seek`` outcomes diverge from the
quiet-system baseline, while the nine vulnerability findings are stable
under every phantom state.
"""

import pytest

from repro.fault.phantom import PhantomState
from repro.fault.stress import run_stress_comparison


@pytest.fixture(scope="module")
def hm_pressure():
    return run_stress_comparison(
        PhantomState.HM_PRESSURE,
        functions=("XM_hm_seek", "XM_hm_read", "XM_hm_status"),
    )


class TestStateSensitivity:
    def test_hm_seek_diverges_under_pressure(self, hm_pressure):
        sensitive = {s.function for s in hm_pressure.sensitivities}
        assert sensitive == {"XM_hm_seek"}
        assert len(hm_pressure.sensitivities) == 6

    def test_divergences_are_oracle_context_effects(self, hm_pressure):
        """All six move Pass -> Silent: offsets the quiet-system oracle
        rejects are legal once the log holds events — the paper's case
        for a state-tracking logic model."""
        for s in hm_pressure.sensitivities:
            assert s.nominal.severity.value == "Pass"
            assert s.stressed.severity.value == "Silent"

    def test_findings_stable_under_ipc_saturation(self):
        comparison = run_stress_comparison(
            PhantomState.IPC_SATURATED,
            functions=("XM_reset_system",),
        )
        assert comparison.nominal.issue_count() == 3
        assert comparison.sensitivities == []


class TestStatefulOracleResolution:
    def test_full_logic_model_resolves_divergences(self):
        """§V's proposal, closed: the state-aware oracle removes every
        divergence the static oracle reports under HM pressure, while
        real defects remain detected."""
        from repro.fault.stateful_oracle import stateful_stress_comparison

        static_div, stateful_div = stateful_stress_comparison(
            PhantomState.HM_PRESSURE,
            ("XM_hm_seek", "XM_hm_read", "XM_hm_status"),
        )
        assert len(static_div) == 6
        assert stateful_div == []


def test_stress_comparison_benchmark(benchmark):
    result = benchmark.pedantic(
        run_stress_comparison,
        args=(PhantomState.TIMER_ARMED,),
        kwargs={"functions": ("XM_switch_sched_plan",)},
        rounds=2,
        iterations=1,
    )
    assert result.sensitivities == []
