"""Tests for the consolidated report, heatmap and compare CLI."""

import pytest

from repro.fault import report
from repro.fault.campaign import Campaign


@pytest.fixture(scope="module")
def result():
    return Campaign(functions=("XM_set_timer", "XM_multicall")).run()


class TestHeatmap:
    def test_heatmap_renders_failure_columns(self, result):
        text = report.severity_heatmap(result)
        assert "Catast" in text
        assert "Time Management" in text
        assert "Pass" not in text.splitlines()[0]

    def test_heatmap_counts(self, result):
        lines = report.severity_heatmap(result).splitlines()
        time_row = next(l for l in lines if l.startswith("Time Management"))
        # 2 catastrophic (halt + crash) in the Time Management row.
        assert time_row.split()[-5] == "2"


class TestFullReport:
    def test_contains_all_sections(self, result):
        text = report.full_report(result)
        assert "Kernel under test" in text
        assert "Hypercall Category" in text
        assert "XM-ST-1" in text
        assert "Severity" in text

    def test_full_report_on_clean_result(self):
        clean = Campaign(functions=("XM_switch_sched_plan",)).run()
        text = report.full_report(clean)
        assert "No robustness issues raised." in text


class TestCompareCli:
    def test_compare_command(self, tmp_path, capsys):
        from repro.cli import main

        left = tmp_path / "old.jsonl"
        right = tmp_path / "new.jsonl"
        main(["run", "--functions", "XM_reset_system", "--quiet", "--log", str(left)])
        main(
            [
                "run",
                "--functions",
                "XM_reset_system",
                "--quiet",
                "--version",
                "3.4.1",
                "--log",
                str(right),
            ]
        )
        capsys.readouterr()
        assert main(["compare", "--left", str(left), "--right", str(right)]) == 0
        out = capsys.readouterr().out
        assert "| issues | 3 | 0 |" in out
        assert "XM-RS-1" in out
