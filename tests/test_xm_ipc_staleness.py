"""Tests for sampling-message freshness (refresh-period semantics)."""

from repro.xm import rc

from conftest import BootedSystem


def read_with_validity(system, advance_us: int):
    """Store telemetry, advance time, then read through FDIR's port."""
    out = {}

    def payload(ctx, xm):
        if "port" not in out:
            out["port"] = xm.create_sampling_port(
                "TM_MON", 64, rc.XM_DESTINATION_PORT, 300_000
            )
            chan = ctx.kernel.ipc.channels["CH_TM_AOCS"]
            chan.store(b"t" * 64, ctx.kernel.sim.now_us)
            return
        if "read" not in out and ctx.now_us >= advance_us:
            out["read"] = xm.read_sampling_message(out["port"], 64)

    system = BootedSystem(fdir_payload=payload)
    frames = max(2, advance_us // 250_000 + 2)
    system.run_frames(frames)
    return out.get("read")


class TestSamplingFreshness:
    def test_fresh_message_valid(self):
        code, data, validity = read_with_validity(None, advance_us=250_000)
        assert code == 64
        assert validity == 1

    def test_stale_message_invalid_flag(self):
        """Silence the publisher: the last frame outlives its 300 ms
        refresh window and reads back with validity 0."""
        out = {}

        def payload(ctx, xm):
            if "port" not in out:
                out["port"] = xm.create_sampling_port(
                    "TM_MON", 64, rc.XM_DESTINATION_PORT, 300_000
                )
                xm.call("XM_halt_partition", 1)  # AOCS publishes no more
                chan = ctx.kernel.ipc.channels["CH_TM_AOCS"]
                chan.store(b"t" * 64, ctx.kernel.sim.now_us)
                return
            if "read" not in out and ctx.now_us >= 500_000:
                out["read"] = xm.read_sampling_message(out["port"], 64)

        system = BootedSystem(fdir_payload=payload)
        system.run_frames(3)
        code, data, validity = out["read"]
        assert code == 64
        assert data == b"t" * 64
        assert validity == 0

    def test_zero_refresh_never_stale(self):
        system = BootedSystem()
        from repro.xm.config import ChannelConfig
        from repro.xm.svc_ipc import SamplingChannel

        chan = SamplingChannel(ChannelConfig("c", "sampling", 8, refresh_us=0))
        chan.store(b"x", 0)
        assert chan.is_valid(10**12)

    def test_platform_app_counts_stale_frames(self):
        """The PLATFORM consumer notices when AOCS stops publishing."""
        from repro.xm.errors import NoReturnFromHypercall

        system = BootedSystem()
        system.run_frames(2)  # telemetry established
        system.call("XM_halt_partition", 1)  # silence AOCS
        system.run_frames(3)  # > 300 ms without fresh frames
        platform_app = system.kernel.partitions[2].app
        assert platform_app.stale_frames >= 1
        del NoReturnFromHypercall
