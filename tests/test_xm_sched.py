"""Unit tests for the cyclic scheduler and temporal isolation."""

import pytest

from repro.xm.hm import HmEvent
from repro.xm.partition import PartitionState

from conftest import BootedSystem


class TestCyclicExecution:
    def test_each_partition_steps_once_per_frame(self):
        system = BootedSystem()
        system.run_frames(3)
        # run_until includes the boundary slot of the next frame for FDIR.
        steps = {p.ident: p.app.steps for p in system.kernel.partitions.values()}
        assert steps[1] == steps[2] == steps[3] == steps[4] == 3
        assert steps[0] == 4

    def test_major_frame_counter(self):
        system = BootedSystem()
        system.run_frames(5)
        assert system.kernel.sched.major_frame_count == 6  # boundary frame starts

    def test_exec_clock_accumulates(self):
        system = BootedSystem()
        system.run_frames(2)
        aocs = system.kernel.partitions[1]
        # AOCS consumes 800us app time plus hypercall costs per slot.
        assert aocs.exec_clock_us >= 2 * 800

    def test_halted_partition_not_scheduled(self):
        system = BootedSystem()
        system.call("XM_halt_partition", 3)
        system.run_frames(2)
        assert system.kernel.partitions[3].app.steps == 0

    def test_suspended_partition_resumes(self):
        system = BootedSystem()
        system.call("XM_suspend_partition", 1)
        system.run_frames(1)
        assert system.kernel.partitions[1].app.steps == 0
        system.call("XM_resume_partition", 1)
        system.run_frames(1)
        assert system.kernel.partitions[1].app.steps >= 1

    def test_boot_state_becomes_normal_after_first_slot(self):
        system = BootedSystem()
        assert system.kernel.partitions[1].state is PartitionState.BOOT
        system.run_frames(1)
        assert system.kernel.partitions[1].state is PartitionState.NORMAL


class TestPlanSwitch:
    def test_maintenance_plan_parks_payload(self):
        system = BootedSystem()
        system.call("XM_switch_sched_plan", 1)
        system.run_frames(1)  # finish current frame, switch at boundary
        payload_steps = system.kernel.partitions[3].app.steps
        system.run_frames(3)
        assert system.kernel.sched.current_plan_id == 1
        # The payload has no slot in plan 1.
        assert system.kernel.partitions[3].app.steps == payload_steps

    def test_switch_back(self):
        system = BootedSystem()
        system.call("XM_switch_sched_plan", 1)
        system.run_frames(2)
        system.call("XM_switch_sched_plan", 0)
        system.run_frames(2)
        assert system.kernel.sched.current_plan_id == 0


class TestTemporalAccounting:
    def test_consume_negative_rejected(self):
        system = BootedSystem()
        with pytest.raises(ValueError):
            system.kernel.sched.consume(-1)

    def test_app_overrun_detected(self):
        def hog(ctx, xm):
            ctx.consume(60_000)  # slot is 50 ms

        system = BootedSystem(fdir_payload=hog)
        system.run_frames(1)
        violations = system.kernel.hm.events_of(HmEvent.TEMPORAL_VIOLATION)
        assert violations
        assert violations[0].partition_id == 0
        assert violations[0].payload >= 10_000

    def test_nominal_apps_do_not_overrun(self):
        system = BootedSystem()
        system.run_frames(4)
        assert system.kernel.sched.overruns == []

    def test_app_memory_fault_contained(self):
        def wild(ctx, xm):
            # Touch another partition's memory directly.
            ctx.partition.address_space.read(0x40140000, 4)

        system = BootedSystem(fdir_payload=wild)
        system.run_frames(1)
        events = system.kernel.hm.events_of(HmEvent.MEM_PROTECTION)
        assert events
        # Default action for MEM_PROTECTION halts the offender.
        assert system.kernel.partitions[0].state is PartitionState.HALTED
        # The rest of the system keeps flying.
        assert system.kernel.partitions[1].state.runnable()

    def test_determinism_across_runs(self):
        def snapshot():
            system = BootedSystem()
            system.run_frames(3)
            return (
                system.kernel.hypercall_count,
                system.sim.dispatched_events,
                tuple(p.exec_clock_us for p in system.kernel.partitions.values()),
            )

        assert snapshot() == snapshot()
