"""Tests for the §V extensions: masking analysis and phantom parameters."""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.masking import (
    MaskingPair,
    masked_issue_comparison,
    masking_pairs,
)
from repro.fault.phantom import PhantomCampaign, PhantomState
from repro.xm.vulns import FIXED_VERSION


class TestMaskingAnalysis:
    @pytest.fixture(scope="class")
    def ablation(self):
        return masked_issue_comparison(
            functions=("XM_multicall", "XM_set_timer", "XM_reset_system")
        )

    def test_full_campaign_finds_all_nine(self, ablation):
        assert len(ablation.full_issue_ids) == 9

    def test_stripped_campaign_loses_masked_issues(self, ablation):
        assert len(ablation.stripped_issue_ids) < 9
        assert ablation.masked_issue_ids

    def test_endaddr_issue_is_masked(self, ablation):
        """Fig. 7's exact scenario: without a valid startAddr, every test
        faults on the first parameter and the endAddr defect is hidden."""
        assert "XM-MC-2" in ablation.masked_issue_ids
        assert "XM-MC-1" in ablation.stripped_issue_ids

    def test_temporal_issue_requires_both_valid(self, ablation):
        assert "XM-MC-3" in ablation.masked_issue_ids

    def test_masking_pairs_mined_from_campaign(self):
        result = Campaign(functions=("XM_multicall",)).run()
        pairs = masking_pairs(result)
        assert pairs
        assert any(
            p.masking_param == "startAddr" and p.masked_param == "endAddr"
            for p in pairs
        )

    def test_masking_pair_fields(self):
        result = Campaign(functions=("XM_multicall",)).run()
        pair = next(
            p
            for p in masking_pairs(result)
            if p.masked_param == "endAddr"
        )
        assert isinstance(pair, MaskingPair)
        assert pair.function == "XM_multicall"
        assert pair.failing_case != pair.masked_case


class TestPhantomCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return PhantomCampaign().run()

    def test_covers_all_parameterless_calls_and_states(self, result):
        assert len(result.records) == 10 * len(PhantomState)

    def test_no_failures_on_parameterless_calls(self, result):
        assert result.failures == []

    def test_states_recorded_in_ids(self, result):
        ids = {r.test_id for r in result.records}
        assert "XM_halt_system@nominal" in ids
        assert "XM_sparc_get_psr@hm_pressure" in ids

    def test_halt_system_never_returns(self, result):
        for record in result.records:
            if record.function == "XM_halt_system":
                assert record.never_returned
                assert record.kernel_halted

    def test_hm_pressure_state_applied(self, result):
        pressured = [
            r
            for r in result.records
            if "hm_pressure" in r.test_id and r.function == "XM_hm_reset_events"
        ]
        assert pressured
        # The HM log carried many injected events before the call.
        assert len(pressured[0].hm_events) > 100 or pressured[0].first_rc == 0

    def test_by_state_accounting(self, result):
        by_state = result.by_state()
        assert set(by_state) == set(PhantomState)
        assert sum(by_state.values()) == len(result.failures)

    def test_single_state_campaign(self):
        campaign = PhantomCampaign(states=(PhantomState.NOMINAL,))
        assert len(campaign.cases()) == 10

    def test_fixed_kernel_phantom_also_clean(self):
        result = PhantomCampaign(
            kernel_version=FIXED_VERSION, states=(PhantomState.NOMINAL,)
        ).run()
        assert result.failures == []
