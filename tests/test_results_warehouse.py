"""Results warehouse: ingest idempotence, diffing, drift, dashboard."""

import json

import pytest

from repro.fault.campaign import Campaign
from repro.fault.testlog import CampaignLog, TestRecord
from repro.results import (
    ResultsWarehouse,
    diff_campaigns,
    drift_audit,
    flaky_specs,
    verdict_of,
)
from repro.results.dashboard import export, render_html
from repro.xm.vulns import FIXED_VERSION


@pytest.fixture(scope="module")
def reset_result():
    """One uninterrupted XM_reset_system campaign (5 specs)."""
    return Campaign(functions=("XM_reset_system",)).run()


@pytest.fixture(scope="module")
def fixed_result():
    """The same suite on the fixed kernel (verdicts flip)."""
    return Campaign(
        functions=("XM_reset_system",), kernel_version=FIXED_VERSION
    ).run()


def make_record(test_id, **overrides):
    return TestRecord(
        test_id=test_id,
        function=overrides.pop("function", "XM_mask_irq"),
        category=overrides.pop("category", "Interrupt Management"),
        **overrides,
    )


class TestVerdict:
    def test_process_level_outranks_kernel_outcome(self):
        record = make_record("a", worker_killed=True, sim_crashed=True)
        assert verdict_of(record) == "worker_killed"

    def test_quarantine_skip_matches_fresh_kill(self):
        # A skip-with-record must not read as drift against the run
        # that confirmed the kill.
        fresh = make_record("a", worker_killed=True)
        skipped = make_record("a", worker_killed=True, quarantined=True)
        assert verdict_of(fresh) == verdict_of(skipped)

    def test_rc_verdict_uses_symbolic_name(self):
        from repro.fault.testlog import Invocation

        record = make_record(
            "a", invocations=[Invocation(returned=True, rc=-3)]
        )
        assert verdict_of(record).startswith("rc:")

    def test_not_invoked_and_no_return_distinct(self):
        from repro.fault.testlog import Invocation

        silent = make_record("a")
        no_return = make_record("b", invocations=[Invocation(returned=False)])
        assert verdict_of(silent) == "not_invoked"
        assert verdict_of(no_return) == "no_return"


class TestIngest:
    def test_reingest_adds_zero_rows(self, reset_result):
        with ResultsWarehouse() as wh:
            first = wh.ingest(reset_result.log, campaign_id="a")
            again = wh.ingest(reset_result.log, campaign_id="a")
        assert first.inserted == len(reset_result.log)
        assert again.inserted == 0
        assert again.duplicates == len(reset_result.log)

    def test_ingest_from_path_defaults_campaign_id(
        self, reset_result, tmp_path
    ):
        path = tmp_path / "nightly.jsonl"
        reset_result.log.save(path)
        with ResultsWarehouse(tmp_path / "wh.sqlite") as wh:
            report = wh.ingest(path)
        assert report.campaign_id == "nightly"

    def test_partial_then_full_ingest_is_resume_safe(self, reset_result):
        records = list(reset_result.log)
        with ResultsWarehouse() as wh:
            wh.ingest(CampaignLog(records[:2]), campaign_id="a")
            grown = wh.ingest(CampaignLog(records), campaign_id="a")
            assert grown.inserted == len(records) - 2
            assert wh.row_count("a") == len(records)

    def test_provenance_and_stats_round_trip(self, reset_result, tmp_path):
        path = tmp_path / "a.jsonl"
        result = Campaign(functions=("XM_reset_system",)).run(log_path=path)
        with ResultsWarehouse() as wh:
            wh.ingest(path, strategy="cartesian@r1")
            info = wh.campaign("a")
        assert info.kernel_version == result.kernel_version
        assert info.strategy == "cartesian@r1"
        assert info.execution_stats == result.execution_stats

    def test_in_memory_log_requires_campaign_id(self, reset_result):
        with ResultsWarehouse() as wh:
            with pytest.raises(ValueError):
                wh.ingest(reset_result.log)

    def test_schema_version_guard(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        with ResultsWarehouse(path) as wh:
            wh.connection.execute(
                "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
            )
            wh.connection.commit()
        with pytest.raises(RuntimeError, match="schema version"):
            ResultsWarehouse(path)


class TestDiff:
    def test_self_diff_reports_zero_drift(self, reset_result):
        with ResultsWarehouse() as wh:
            wh.ingest(reset_result.log, campaign_id="a")
            diff = diff_campaigns(wh, "a", "a")
        assert not diff.drifted
        assert diff.changed == []
        assert diff.common == len(reset_result.log)
        assert diff.only_left == diff.only_right == 0

    def test_interrupted_resumed_diffs_clean_against_uninterrupted(
        self, reset_result, tmp_path
    ):
        # The acceptance scenario: an interrupted campaign resumed from
        # its partial log must warehouse-diff with zero verdict drift
        # against the uninterrupted run of the same suite.
        partial = CampaignLog(list(reset_result.log)[:2])
        partial_path = tmp_path / "partial.jsonl"
        partial.save(partial_path)
        resumed = Campaign(functions=("XM_reset_system",)).run(
            resume_from=CampaignLog.load(partial_path),
            log_path=tmp_path / "resumed.jsonl",
        )
        with ResultsWarehouse() as wh:
            wh.ingest(reset_result.log, campaign_id="uninterrupted")
            wh.ingest(tmp_path / "resumed.jsonl", campaign_id="resumed")
            diff = diff_campaigns(wh, "uninterrupted", "resumed")
        assert not diff.drifted
        assert diff.only_left == diff.only_right == 0

    def test_kernel_version_flip_is_reported(self, reset_result, fixed_result):
        with ResultsWarehouse() as wh:
            wh.ingest(reset_result.log, campaign_id="vuln")
            wh.ingest(fixed_result.log, campaign_id="fixed")
            diff = diff_campaigns(wh, "vuln", "fixed")
        assert diff.drifted
        assert all(c.left != c.right for c in diff.changed)

    def test_unknown_campaign_raises(self, reset_result):
        with ResultsWarehouse() as wh:
            wh.ingest(reset_result.log, campaign_id="a")
            with pytest.raises(KeyError):
                diff_campaigns(wh, "a", "nope")

    def test_disjoint_specs_counted_not_drifted(self):
        with ResultsWarehouse() as wh:
            wh.ingest(CampaignLog([make_record("x")]), campaign_id="a")
            wh.ingest(CampaignLog([make_record("y")]), campaign_id="b")
            diff = diff_campaigns(wh, "a", "b")
        assert diff.common == 0
        assert diff.only_left == diff.only_right == 1
        assert not diff.drifted


class TestDrift:
    def test_seeded_verdict_flip_is_flagged(self, reset_result, fixed_result):
        with ResultsWarehouse() as wh:
            wh.ingest(reset_result.log, campaign_id="vuln")
            wh.ingest(fixed_result.log, campaign_id="fixed")
            drifted = drift_audit(wh)
        assert drifted, "kernel-version verdict flip must be flagged"
        for entry in drifted:
            assert entry.drifted
            assert entry.transitions >= 1
            assert entry.flaky_score > 0

    def test_identical_runs_show_no_drift(self, reset_result):
        with ResultsWarehouse() as wh:
            wh.ingest(reset_result.log, campaign_id="r1")
            wh.ingest(reset_result.log, campaign_id="r2")
            assert drift_audit(wh) == []

    def test_arbitration_pressure_scores_without_verdict_change(self):
        record = make_record("a", attempts=3, arbitrated=True)
        with ResultsWarehouse() as wh:
            wh.ingest(CampaignLog([record]), campaign_id="r1")
            wh.ingest(CampaignLog([record]), campaign_id="r2")
            assert drift_audit(wh) == []  # verdicts agree
            flaky = flaky_specs(wh)
        assert [e.test_id for e in flaky] == ["a"]
        assert flaky[0].flaky_score > 0
        assert flaky[0].arbitrated_runs == 2

    def test_churn_counts_adjacent_transitions(self):
        flip = make_record("a", sim_crashed=True)
        calm = make_record("a")
        with ResultsWarehouse() as wh:
            for i, rec in enumerate((calm, flip, calm)):
                wh.ingest(CampaignLog([rec]), campaign_id=f"r{i}")
            (entry,) = drift_audit(wh)
        assert entry.runs == 3
        assert entry.transitions == 2
        assert entry.distinct_verdicts == ("not_invoked", "sim_crashed")


class TestDashboard:
    def test_export_html_and_json(self, reset_result, tmp_path):
        html_path = tmp_path / "dash.html"
        json_path = tmp_path / "dash.json"
        with ResultsWarehouse() as wh:
            wh.ingest(reset_result.log, campaign_id="a")
            data = export(wh, html_path=html_path, json_path=json_path)
        page = html_path.read_text(encoding="utf-8")
        assert "Campaign results warehouse" in page
        assert "a" in page and "Verdicts" in page
        loaded = json.loads(json_path.read_text(encoding="utf-8"))
        assert loaded["total_rows"] == data["total_rows"] == len(
            reset_result.log
        )
        assert loaded["campaigns"][0]["campaign_id"] == "a"

    def test_drifted_specs_marked_in_page(self, reset_result, fixed_result):
        with ResultsWarehouse() as wh:
            wh.ingest(reset_result.log, campaign_id="vuln")
            wh.ingest(fixed_result.log, campaign_id="fixed")
            page = render_html(export(wh))
        assert "drifted" in page

    def test_empty_warehouse_renders(self):
        with ResultsWarehouse() as wh:
            page = render_html(export(wh))
        assert "0 result rows" in page


class TestResultsCli:
    def test_ingest_query_diff_drift_dashboard(self, reset_result, tmp_path, capsys):
        from repro.cli import main

        log_path = tmp_path / "run.jsonl"
        reset_result.log.save(log_path)
        db = str(tmp_path / "wh.sqlite")
        assert main(["results", "ingest", "--db", db, "--log", str(log_path)]) == 0
        assert main(["results", "ingest", "--db", db, "--log", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "0 new row(s)" in out
        assert main(["results", "query", "--db", db]) == 0
        assert main(["results", "query", "--db", db, "--campaign", "run"]) == 0
        assert main(["results", "diff", "--db", db, "--left", "run",
                     "--right", "run"]) == 0
        assert "0 verdict change(s)" in capsys.readouterr().out
        assert main(["results", "drift", "--db", db]) == 0
        html_out = tmp_path / "dash.html"
        assert main(["results", "dashboard", "--db", db, "--out",
                     str(html_out)]) == 0
        assert html_out.exists()

    def test_unknown_campaign_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "wh.sqlite")
        assert main(["results", "query", "--db", db, "--campaign", "x"]) == 2
        assert main(["results", "diff", "--db", db, "--left", "x",
                     "--right", "y"]) == 2
