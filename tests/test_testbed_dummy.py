"""Tests for the §III dummy-partition testbed and testbed retargeting."""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.oracle import OracleContext
from repro.testbed.dummy import (
    DUMMY_MAJOR_FRAME_US,
    build_dummy_system,
    dummy_config,
)


def dummy_oracle_context() -> OracleContext:
    return OracleContext(
        partition_ids=frozenset({0, 1, 2}),
        plan_ids=frozenset({0}),
        partition_names=("TEST", "DUMMY1", "DUMMY2"),
        channel_names=(),
    )


class TestDummyTestbed:
    def test_config_validates(self):
        dummy_config().validate()

    def test_boots_and_runs(self):
        sim = build_dummy_system()
        kernel = sim.boot()
        sim.run_major_frames(5)
        assert not kernel.is_halted()
        assert kernel.major_frame_us == DUMMY_MAJOR_FRAME_US
        for partition in kernel.partitions.values():
            assert partition.app.steps >= 5

    def test_only_test_partition_is_system(self):
        sim = build_dummy_system()
        kernel = sim.boot()
        assert kernel.partitions[0].is_system
        assert not kernel.partitions[1].is_system

    def test_payload_hook_runs_once_per_frame(self):
        hits = []
        sim = build_dummy_system(fdir_payload=lambda ctx, xm: hits.append(ctx.now_us))
        sim.boot()
        sim.run_major_frames(3)
        assert len(hits) == 4  # slots at 0, 30, 60, 90 ms


class TestCampaignOnDummyTestbed:
    @pytest.fixture(scope="class")
    def result(self):
        campaign = Campaign(
            functions=("XM_reset_system", "XM_get_system_status"),
            system_factory=build_dummy_system,
            oracle_context=dummy_oracle_context(),
        )
        return campaign.run()

    def test_reset_findings_reproduce_on_dummy_testbed(self, result):
        """The methodology is testbed-independent: the same three
        XM_reset_system findings surface on the minimal testbed."""
        found = {i.matched_vulnerability for i in result.issues}
        assert found == {"XM-RS-1", "XM-RS-2", "XM-RS-3"}

    def test_no_false_positives_with_matching_context(self, result):
        unmatched = [i for i in result.issues if i.matched_vulnerability is None]
        assert unmatched == []

    def test_mismatched_oracle_context_creates_false_positives(self):
        """Using the EagleEye oracle context against the dummy testbed
        misclassifies plan-switch outcomes — the preparation-phase
        lesson: the logic model must match the system under test."""
        campaign = Campaign(
            functions=("XM_switch_sched_plan",),
            system_factory=build_dummy_system,
        )
        result = campaign.run()
        # The EagleEye context believes plan 1 exists; the dummy testbed
        # rejects it, which the oracle then flags as a wrong error code.
        assert result.issue_count() == 1

    def test_parallel_rejected_for_custom_testbed(self):
        campaign = Campaign(
            functions=("XM_reset_system",), system_factory=build_dummy_system
        )
        with pytest.raises(ValueError, match="default testbed"):
            campaign.run(processes=2)
