"""Integration tests: executor, campaign, issues, logs, reports."""

import pytest

from repro.fault import report
from repro.fault.campaign import Campaign
from repro.fault.classify import FailureKind, Severity
from repro.fault.combinator import PairwiseStrategy, RandomSampleStrategy
from repro.fault.executor import TestExecutor
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.testlog import CampaignLog
from repro.xm import rc
from repro.xm.vulns import FIXED_VERSION, KNOWN_VULNERABILITIES


def make_spec(function, category, *pairs):
    args = tuple(
        ArgSpec(param, label, value=value, symbol=symbol)
        for (param, label, value, symbol) in pairs
    )
    return TestCallSpec(f"{function}#t", function, category, args)


class TestExecutorBehaviour:
    def test_nominal_call_records_rc(self):
        spec = make_spec(
            "XM_mask_irq", "Interrupt Management", ("irqLine", "1", 1, None)
        )
        record = TestExecutor().run(spec)
        assert record.invoked
        assert record.first_rc == rc.XM_OK
        assert not record.sim_crashed
        assert record.test_partition_state == "normal"
        assert record.wall_time_s > 0

    def test_invocation_once_per_frame_boundary(self):
        spec = make_spec(
            "XM_mask_irq", "Interrupt Management", ("irqLine", "1", 1, None)
        )
        record = TestExecutor(frames=3).run(spec)
        # Slots at t=0, 250, 500 and the 750ms boundary.
        assert len(record.invocations) == 4

    def test_reset_recorded(self):
        spec = make_spec(
            "XM_reset_system", "System Management", ("mode", "2", 2, None)
        )
        record = TestExecutor().run(spec)
        assert record.never_returned
        assert record.resets
        assert record.resets[0][0] == "cold"

    def test_sim_crash_recorded(self):
        spec = make_spec(
            "XM_set_timer",
            "Time Management",
            ("clockId", "EXEC_CLOCK", 1, None),
            ("absTime", "1", 1, None),
            ("interval", "1", 1, None),
        )
        record = TestExecutor().run(spec)
        assert record.sim_crashed

    def test_kernel_halt_recorded(self):
        spec = make_spec(
            "XM_set_timer",
            "Time Management",
            ("clockId", "HW_CLOCK", 0, None),
            ("absTime", "1", 1, None),
            ("interval", "1", 1, None),
        )
        record = TestExecutor().run(spec)
        assert record.kernel_halted
        assert "stack overflow" in record.halt_reason

    def test_fresh_system_per_test(self):
        executor = TestExecutor()
        halt = make_spec(
            "XM_halt_partition", "Partition Management", ("partitionId", "1", 1, None)
        )
        executor.run(halt)
        status = make_spec(
            "XM_get_partition_status",
            "Partition Management",
            ("partitionId", "1", 1, None),
            ("status", "VALID", None, "valid_buffer"),
        )
        record = executor.run(status)
        # Partition 1 is alive again on the fresh system.
        assert record.first_rc == rc.XM_OK


class TestCampaignPipeline:
    @pytest.fixture(scope="class")
    def small_result(self):
        campaign = Campaign(
            functions=("XM_reset_system", "XM_set_timer", "XM_multicall")
        )
        return campaign.run()

    def test_expected_test_count(self, small_result):
        assert small_result.total_tests == 5 + 32 + 25

    def test_exactly_nine_issues(self, small_result):
        assert small_result.issue_count() == 9

    def test_all_known_vulnerabilities_found(self, small_result):
        found = {i.matched_vulnerability for i in small_result.issues}
        assert found == {v.ident for v in KNOWN_VULNERABILITIES}

    def test_issue_categories(self, small_result):
        per_cat = {
            "System Management": 3,
            "Time Management": 3,
            "Miscellaneous": 3,
        }
        for category, expected in per_cat.items():
            assert len(small_result.issues_in(category)) == expected

    def test_severity_counts_consistent(self, small_result):
        counts = small_result.severity_counts()
        assert sum(counts.values()) == small_result.total_tests
        assert counts[Severity.CATASTROPHIC] == 3
        assert counts[Severity.RESTART] == 3

    def test_failure_kinds(self, small_result):
        kinds = {i.kind for i in small_result.issues}
        assert FailureKind.SIM_CRASH in kinds
        assert FailureKind.KERNEL_HALT in kinds
        assert FailureKind.TEMPORAL_VIOLATION in kinds
        assert FailureKind.UNHANDLED_TRAP in kinds
        assert FailureKind.UNEXPECTED_RESET in kinds
        assert FailureKind.WRONG_SUCCESS in kinds

    def test_log_roundtrip_and_reanalysis(self, small_result, tmp_path):
        path = tmp_path / "campaign.jsonl"
        small_result.log.save(path)
        loaded = CampaignLog.load(path)
        assert len(loaded) == small_result.total_tests
        campaign = Campaign(
            functions=("XM_reset_system", "XM_set_timer", "XM_multicall")
        )
        reanalysed = campaign.analyse(loaded)
        assert reanalysed.issue_count() == 9

    def test_table3_report_renders(self, small_result):
        text = report.table3(small_result)
        assert "System Management" in text
        assert "Paper Tests" in text

    def test_issue_report_renders(self, small_result):
        text = report.issues_report(small_result)
        assert "XM-ST-1" in text and "XM-MC-3" in text


class TestFixedKernelCampaign:
    def test_no_issues_on_revised_kernel(self):
        campaign = Campaign(
            functions=("XM_reset_system", "XM_set_timer", "XM_multicall"),
            kernel_version=FIXED_VERSION,
        )
        result = campaign.run()
        assert result.issue_count() == 0
        assert not result.failures()


class TestParallelExecution:
    def test_parallel_matches_serial(self):
        campaign = Campaign(functions=("XM_reset_system",))
        serial = campaign.run()
        parallel = campaign.run(processes=2)
        assert serial.total_tests == parallel.total_tests
        s = {(r.test_id, r.first_rc, r.never_returned) for r in serial.log}
        p = {(r.test_id, r.first_rc, r.never_returned) for r in parallel.log}
        assert s == p
        assert parallel.issue_count() == serial.issue_count() == 3


class TestAlternativeStrategies:
    def test_pairwise_campaign_runs(self):
        campaign = Campaign(
            functions=("XM_set_timer",), strategy=PairwiseStrategy()
        )
        result = campaign.run()
        assert 0 < result.total_tests <= 32
        # The negative-interval defect is 2-way (any clock, any absTime)
        # so pairwise always finds it.  The crash defects need the 3-way
        # combination (clock, absTime=1, interval=1): pairwise only
        # guarantees the pair, so it may pair interval=1 with a
        # disarming absTime and miss them — the classic t-wise coverage
        # limitation, demonstrated by the generation-strategy bench.
        found = {i.matched_vulnerability for i in result.issues}
        assert "XM-ST-3" in found

    def test_random_campaign_runs(self):
        campaign = Campaign(
            functions=("XM_reset_system",),
            strategy=RandomSampleStrategy(fraction=0.6, minimum=2),
        )
        result = campaign.run()
        assert 2 <= result.total_tests <= 5

    def test_progress_hook_called(self):
        seen = []
        campaign = Campaign(functions=("XM_switch_sched_plan",))
        campaign.run(progress=lambda done, total, rec: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]
