"""Small-gap tests: extended types, multi-reader IPC, arg conversion."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xtypes.extended import EXTENDED_ALIASES, XM_ADDRESS, XM_SSIZE, XM_TIME

from conftest import BootedSystem


class TestExtendedTypes:
    def test_alias_map_is_complete(self):
        assert set(EXTENDED_ALIASES) == {
            "xmWord_t",
            "xmAddress_t",
            "xmIoAddress_t",
            "xmSize_t",
            "xmId_t",
            "xmSSize_t",
            "xmTime_t",
        }

    def test_alias_descriptors_match_basic_semantics(self):
        for name, (descriptor, basic) in EXTENDED_ALIASES.items():
            assert descriptor.name == name
            signed = basic.startswith("xm_s")
            assert descriptor.signed == signed, name

    def test_time_is_signed_64(self):
        assert XM_TIME.bits == 64 and XM_TIME.signed
        assert XM_TIME.convert(2**63) == -(2**63)

    def test_address_is_unsigned_32(self):
        assert XM_ADDRESS.convert(-1) == 0xFFFFFFFF

    def test_ssize_is_signed_32(self):
        assert XM_SSIZE.convert(0x80000000) == -(2**31)


class TestMultiReaderSamplingChannel:
    def test_platform_and_fdir_see_same_telemetry(self):
        """CH_TM_AOCS has two destination ports: last-value semantics
        mean both readers observe the same frame."""
        seen = {}

        def payload(ctx, xm):
            if "port" not in seen:
                seen["port"] = xm.create_sampling_port(
                    "TM_MON", 64, 1, 300_000
                )
                return
            if "frame" not in seen:
                code, data, valid = xm.read_sampling_message(seen["port"], 64)
                if code > 0:
                    seen["frame"] = data

        system = BootedSystem(fdir_payload=payload)
        system.run_frames(2)
        # FDIR read a complete, well-formed AOCS frame (the publisher
        # keeps writing after the read, so it need not be the latest).
        timestamp, angle, steps = struct.unpack(">qII", seen["frame"][:16])
        assert 0 <= timestamp <= system.sim.now_us
        assert angle == (steps * 7) % 3600
        # The platform app consumed the same channel independently.
        assert system.kernel.partitions[2].app.steps >= 1

    def test_reads_do_not_consume_sampling_messages(self):
        system = BootedSystem()
        system.run_frames(2)
        chan = system.kernel.ipc.channels["CH_TM_AOCS"]
        before = chan.message
        # Both FDIR (monitor) and PLATFORM read every frame; the value
        # is still there.
        assert before is not None


class TestArgumentConversionProperty:
    @given(st.integers(min_value=-(2**70), max_value=2**70))
    @settings(max_examples=40, deadline=None)
    def test_dispatch_conversion_matches_type_descriptor(self, value):
        """kernel._convert_args applies exactly the declared C conversion."""
        from repro.xm.api import hypercall_by_name
        from repro.xtypes import default_registry

        system = BootedSystem()
        hdef = hypercall_by_name("XM_reset_partition")
        converted = system.kernel._convert_args(hdef, (value, value, value))
        registry = default_registry()
        assert converted[0] == registry.descriptor("xm_s32_t").convert(value)
        assert converted[1] == registry.descriptor("xm_u32_t").convert(value)

    def test_pointer_args_masked_to_machine_word(self):
        from repro.xm.api import hypercall_by_name

        system = BootedSystem()
        hdef = hypercall_by_name("XM_get_system_status")
        (converted,) = system.kernel._convert_args(hdef, (2**40 + 5,))
        assert converted == (2**40 + 5) & 0xFFFFFFFF


class TestStatusStructRoundTrips:
    def test_all_status_structs_pack_unpack(self):
        from repro.xm import status

        for cls, kwargs in [
            (status.XmSystemStatus, dict(reset_counter=3, current_time_us=-1)),
            (status.XmPartitionStatus, dict(ident=-1, exec_clock_us=2**40)),
            (status.XmPlanStatus, dict(current_plan=1, major_frame_count=99)),
            (status.XmPortStatus, dict(port_id=-1, last_timestamp_us=7)),
            (status.XmHmStatus, dict(total_events=5)),
            (status.XmHmLogEntry, dict(event_code=4, partition_id=-1)),
            (status.XmTraceEvent, dict(opcode=9, word=0xFFFFFFFF)),
            (status.XmTraceStatus, dict(lost_events=2)),
        ]:
            original = cls(**kwargs)
            packed = original.pack()
            assert len(packed) == cls.SIZE
            assert cls.unpack(packed) == original

    def test_unpack_tolerates_trailing_bytes(self):
        from repro.xm.status import XmHmStatus

        packed = XmHmStatus(total_events=1).pack() + b"extra"
        assert XmHmStatus.unpack(packed).total_events == 1

    def test_layouts_are_big_endian(self):
        from repro.xm.status import XmPlanStatus

        packed = XmPlanStatus(current_plan=1).pack()
        assert packed[:4] == struct.pack(">I", 1)
