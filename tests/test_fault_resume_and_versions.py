"""Campaign resume semantics and the differential version sweep."""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.testlog import CampaignLog
from repro.xm.hm import HmEvent
from repro.xm.vulns import FIXED_VERSION

DEFECT_FUNCTIONS = {"XM_reset_system", "XM_set_timer", "XM_multicall"}


class TestResume:
    def test_resume_skips_executed_tests(self):
        campaign = Campaign(functions=("XM_set_timer",))
        first = campaign.run()
        executed = []
        resumed = campaign.run(
            resume_from=first.log,
            progress=lambda d, t, r: executed.append(r.test_id),
        )
        assert executed == []  # nothing left to run
        assert resumed.total_tests == first.total_tests
        assert resumed.issue_count() == first.issue_count()

    def test_resume_completes_partial_log(self):
        campaign = Campaign(functions=("XM_reset_system",))
        full = campaign.run()
        partial = CampaignLog(full.log.records[:2])
        executed = []
        resumed = campaign.run(
            resume_from=partial,
            progress=lambda d, t, r: executed.append(r.test_id),
        )
        assert len(executed) == 3
        assert resumed.total_tests == 5
        assert resumed.issue_count() == 3

    def test_resume_preserves_spec_order(self):
        campaign = Campaign(functions=("XM_reset_system",))
        full = campaign.run()
        partial = CampaignLog(full.log.records[2:3])
        resumed = campaign.run(resume_from=partial)
        ids = [record.test_id for record in resumed.log]
        # Resumed and newly-run records merge back into spec order, so
        # the analysed log is indistinguishable from an uninterrupted run.
        assert len(set(ids)) == 5
        assert ids == sorted(ids)


class TestDifferentialVersionSweep:
    """The revised kernel must differ ONLY at the three fixed services."""

    SCOPE = (
        "XM_get_partition_status",
        "XM_halt_partition",
        "XM_get_time",
        "XM_switch_sched_plan",
        "XM_hm_seek",
        "XM_trace_open",
        "XM_mask_irq",
        "XM_write_console",
        "XM_sparc_inport",
        "XM_flush_port",
    )

    @pytest.fixture(scope="class")
    def pair(self):
        old = Campaign(functions=self.SCOPE).run()
        new = Campaign(functions=self.SCOPE, kernel_version=FIXED_VERSION).run()
        return old, new

    def test_non_defect_services_identical_across_versions(self, pair):
        old, new = pair

        def signature(log):
            return sorted(
                (r.test_id, r.first_rc, r.never_returned, r.sim_crashed,
                 r.kernel_halted, tuple(sorted(r.hm_event_names())))
                for r in log
            )

        assert signature(old.log) == signature(new.log)

    def test_no_issues_either_side(self, pair):
        old, new = pair
        assert old.issue_count() == 0
        assert new.issue_count() == 0


class TestTraceMirrorsHm:
    def test_hm_events_traced_to_kernel_stream(self):
        from conftest import BootedSystem

        system = BootedSystem()
        system.kernel.hm_raise(HmEvent.PARTITION_ERROR, 2, detail="x", payload=7)
        stream = system.kernel.tracemgr.streams[-1]
        assert stream.total == 1
        event = stream.events[0]
        assert event.opcode == HmEvent.PARTITION_ERROR.value
        assert event.partition_id == 2
        assert event.word == 7

    def test_fdir_can_read_hm_trace(self):
        from conftest import BootedSystem

        system = BootedSystem()
        system.kernel.hm_raise(HmEvent.PARTITION_ERROR, 2)
        addr = system.scratch()
        count = system.call("XM_trace_read", -1, addr, 8)
        assert count == 1

    def test_quiet_system_keeps_streams_empty(self):
        from conftest import BootedSystem

        system = BootedSystem()
        system.run_frames(3)
        # The nominal mission raises no HM events, so the oracle's
        # empty-stream assumption for trace_seek holds during campaigns.
        assert system.kernel.tracemgr.streams[-1].total == 0
