"""Shared fixtures: booted EagleEye systems and hypercall helpers."""

from __future__ import annotations

import pytest

from repro.testbed import build_system
from repro.testbed.eagleeye import partition_area_base
from repro.xm.vulns import FIXED_VERSION, VULNERABLE_VERSION


class BootedSystem:
    """A booted EagleEye system with direct hypercall access."""

    def __init__(self, version: str = VULNERABLE_VERSION, fdir_payload=None):
        self.sim = build_system(fdir_payload=fdir_payload, kernel_version=version)
        self.kernel = self.sim.boot()

    @property
    def fdir(self):
        return self.kernel.partitions[0]

    @property
    def aocs(self):
        return self.kernel.partitions[1]

    def call(self, name: str, *args: int, caller=None) -> int:
        """Invoke a hypercall directly (outside the schedule)."""
        partition = caller if caller is not None else self.fdir
        return self.kernel.hypercall(partition, name, args)

    def scratch(self, partition_id: int = 0, offset: int = 0) -> int:
        """An address inside a partition's scratch window."""
        return partition_area_base(partition_id) + 0x10000 + offset

    def run_frames(self, count: int) -> None:
        self.sim.run_major_frames(count)


@pytest.fixture
def system() -> BootedSystem:
    """Booted EagleEye on the vulnerable kernel (3.4.0)."""
    return BootedSystem()


@pytest.fixture
def fixed_system() -> BootedSystem:
    """Booted EagleEye on the revised kernel (3.4.1)."""
    return BootedSystem(version=FIXED_VERSION)
