"""Tests for the state-aware oracle (the full §V logic model)."""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.classify import Severity
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.phantom import PhantomState
from repro.fault.stateful_oracle import (
    StatefulOracle,
    capture_state,
    classify_stateful,
    stateful_stress_comparison,
)
from repro.xm import rc

from conftest import BootedSystem


def hm_seek_spec(offset: int, whence: int) -> TestCallSpec:
    return TestCallSpec(
        "s#0",
        "XM_hm_seek",
        "Health Monitor Management",
        (
            ArgSpec("offset", str(offset), value=offset),
            ArgSpec("whence", str(whence), value=whence),
        ),
    )


class TestCaptureState:
    def test_snapshot_fields(self):
        system = BootedSystem()
        state = capture_state(system.kernel)
        assert state["hm_len"] == 0
        assert state["tm_message"] == 0
        assert "-1" in state["trace_lens"]

    def test_snapshot_tracks_hm_growth(self):
        from repro.xm.hm import HmEvent

        system = BootedSystem()
        for _ in range(3):
            system.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, 0)
        assert capture_state(system.kernel)["hm_len"] == 3

    def test_snapshot_is_json_serialisable(self):
        import json

        system = BootedSystem()
        json.dumps(capture_state(system.kernel))


class TestStatefulExpectations:
    def test_hm_seek_offset_valid_when_log_full(self):
        oracle = StatefulOracle()
        state = {"hm_len": 20, "hm_cursor": 0, "hm_unread": 20,
                 "trace_lens": {}, "trace_cursors": {}, "tm_message": 0}
        expectation = oracle.expect_in_state(hm_seek_spec(16, 0), state)
        assert expectation.rc_acceptable(rc.XM_OK)

    def test_hm_seek_offset_invalid_when_log_empty(self):
        oracle = StatefulOracle()
        state = {"hm_len": 0, "hm_cursor": 0, "hm_unread": 0,
                 "trace_lens": {}, "trace_cursors": {}, "tm_message": 0}
        expectation = oracle.expect_in_state(hm_seek_spec(16, 0), state)
        assert expectation.allowed == {rc.XM_INVALID_PARAM}

    def test_missing_state_falls_back_to_static(self):
        oracle = StatefulOracle()
        static = oracle.expect(hm_seek_spec(16, 0))
        assert oracle.expect_in_state(hm_seek_spec(16, 0), None) == static

    def test_bad_whence_still_invalid_regardless_of_state(self):
        oracle = StatefulOracle()
        state = {"hm_len": 50, "hm_cursor": 0, "hm_unread": 50,
                 "trace_lens": {}, "trace_cursors": {}, "tm_message": 0}
        expectation = oracle.expect_in_state(hm_seek_spec(0, 16), state)
        assert expectation.allowed == {rc.XM_INVALID_PARAM}


class TestEndToEnd:
    def test_static_divergences_resolved_by_state(self):
        static_div, stateful_div = stateful_stress_comparison(
            PhantomState.HM_PRESSURE,
            ("XM_hm_seek", "XM_hm_read", "XM_hm_status"),
        )
        assert len(static_div) == 6
        assert stateful_div == []

    def test_stateful_classification_on_quiet_campaign(self):
        """On the quiet testbed the stateful oracle agrees with the
        static one for every HM/trace test."""
        campaign = Campaign(functions=("XM_hm_seek", "XM_trace_seek"))
        result = campaign.run()
        oracle = StatefulOracle()
        spec_index = {spec.test_id: spec for spec in campaign.iter_specs()}
        for record, _expectation, static_cls in result.classified:
            stateful_cls = classify_stateful(
                record, spec_index[record.test_id], oracle
            )
            assert stateful_cls.severity == static_cls.severity, record.test_id

    def test_real_defects_still_detected_statefully(self):
        campaign = Campaign(functions=("XM_set_timer",))
        result = campaign.run()
        oracle = StatefulOracle()
        spec_index = {spec.test_id: spec for spec in campaign.iter_specs()}
        severities = [
            classify_stateful(record, spec_index[record.test_id], oracle).severity
            for record, _e, _c in result.classified
        ]
        assert Severity.CATASTROPHIC in severities
        assert Severity.SILENT in severities
