"""Unit tests for the API Header / Data Type XML round trip."""

import pytest

from repro.fault.apimodel import api_model_from_table
from repro.fault.dictionaries import DictionarySet
from repro.fault.xmlio import (
    XmlFormatError,
    api_model_from_xml,
    api_model_to_xml,
    dictionaries_from_xml,
    dictionaries_to_xml,
    fig2_excerpt,
    fig3_excerpt,
)


class TestApiHeaderRoundTrip:
    def test_full_model_roundtrip(self):
        model = api_model_from_table()
        parsed = api_model_from_xml(api_model_to_xml(model))
        assert len(parsed) == len(model) == 61
        for fn in model:
            other = parsed.lookup(fn.name)
            assert other == fn

    def test_untested_reasons_preserved(self):
        parsed = api_model_from_xml(api_model_to_xml(api_model_from_table()))
        halt = parsed.lookup("XM_halt_system")
        assert not halt.tested
        assert "parameter-less" in (halt.untested_reason or "")

    def test_dictionary_hints_preserved(self):
        parsed = api_model_from_xml(api_model_to_xml(api_model_from_table()))
        set_timer = parsed.lookup("XM_set_timer")
        assert set_timer.params[0].dictionary == "clock_id"
        assert set_timer.params[1].dictionary is None

    def test_fig2_excerpt_matches_paper_shape(self):
        text = fig2_excerpt()
        assert 'Function Name="XM_reset_partition"' in text
        assert 'ReturnType="xm_s32_t"' in text
        assert text.count("<Parameter ") == 3
        assert 'Name="resetMode" Type="xm_u32_t" IsPointer="NO"' in text

    def test_malformed_xml_rejected(self):
        with pytest.raises(XmlFormatError, match="malformed"):
            api_model_from_xml("<ApiHeader><oops")

    def test_wrong_root_rejected(self):
        with pytest.raises(XmlFormatError, match="expected <ApiHeader>"):
            api_model_from_xml("<Nope/>")

    def test_function_without_name_rejected(self):
        with pytest.raises(XmlFormatError, match="without Name"):
            api_model_from_xml("<ApiHeader><Function/></ApiHeader>")

    def test_parameter_without_type_rejected(self):
        text = (
            '<ApiHeader><Function Name="F"><ParametersList>'
            '<Parameter Name="x"/></ParametersList></Function></ApiHeader>'
        )
        with pytest.raises(XmlFormatError, match="missing Name/Type"):
            api_model_from_xml(text)


class TestDataTypeRoundTrip:
    def test_full_roundtrip(self):
        dicts = DictionarySet()
        parsed = dictionaries_from_xml(dictionaries_to_xml(dicts))
        assert set(parsed.dictionaries) == set(dicts.dictionaries)
        for name, original in dicts.dictionaries.items():
            assert parsed.lookup(name).values == original.values

    def test_fig3_excerpt_matches_paper(self):
        text = fig3_excerpt()
        assert 'DataType Name="xm_u32_t"' in text
        assert "<Value" in text
        for value in ("0", "1", "2", "16", "4294967295"):
            assert f">{value}</Value>" in text

    def test_symbols_round_trip(self):
        parsed = dictionaries_from_xml(dictionaries_to_xml(DictionarySet()))
        batch = parsed.lookup("batch_ptr_start")
        assert any(v.is_symbolic for v in batch.values)

    def test_unknown_symbol_rejected(self):
        text = (
            '<DataTypes><DataType Name="d" BasicType="xm_u32_t">'
            '<TestValues><Symbol Name="bogus"/></TestValues>'
            "</DataType></DataTypes>"
        )
        with pytest.raises(XmlFormatError, match="unknown symbol"):
            dictionaries_from_xml(text)

    def test_empty_value_rejected(self):
        text = (
            '<DataTypes><DataType Name="d" BasicType="xm_u32_t">'
            "<TestValues><Value/></TestValues></DataType></DataTypes>"
        )
        with pytest.raises(XmlFormatError, match="empty"):
            dictionaries_from_xml(text)

    def test_missing_testvalues_rejected(self):
        text = '<DataTypes><DataType Name="d" BasicType="xm_u32_t"/></DataTypes>'
        with pytest.raises(XmlFormatError, match="missing <TestValues>"):
            dictionaries_from_xml(text)

    def test_maybe_valid_flag_round_trips(self):
        parsed = dictionaries_from_xml(dictionaries_to_xml(DictionarySet()))
        s32 = parsed.lookup("xm_s32_t")
        assert [v.maybe_valid for v in s32.values] == [
            False, True, True, True, True, True, True, False,
        ]
