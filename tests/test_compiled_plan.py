"""Compiled suite execution: plan units and planned==unplanned identity.

The plan (:mod:`repro.fault.plan`) is an optimisation, never a semantic
fork — these tests pin that claim: record streams must be
field-for-field identical between the compiled/batched paths and the
per-spec interpretation, across serial, sharded-parallel and
interrupted+resumed runs, and the ``--verify-plan`` audit must catch a
plan that lies.
"""

import multiprocessing

import pytest

from repro.fault.campaign import Campaign
from repro.fault.executor import KILL_SPEC_ENV, PlanVerifyError, TestExecutor
from repro.fault.mutant import ArgSpec, TestCallSpec, default_layout
from repro.fault.plan import CompiledPlan, group_consecutive
from repro.fault.testlog import CampaignLog
from repro.xm import rc

#: The three hypercalls carrying the paper's findings: 62 tests, 9 issues.
TRIO = ("XM_reset_system", "XM_set_timer", "XM_multicall")

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel execution requires the fork start method",
)


def strip_wall_time(record):
    data = record.to_dict()
    data.pop("wall_time_s")
    data.pop("host_context")
    return data


def stream(result):
    return [strip_wall_time(r) for r in result.log]


# -- plan construction -------------------------------------------------------


class TestPlanConstruction:
    def compile_one(self, spec):
        return CompiledPlan([spec], default_layout(), "3.4.0", 2).entries[0]

    def test_unknown_hypercall_prechecked(self):
        entry = self.compile_one(
            TestCallSpec("XM_bogus#0", "XM_bogus", "None", ())
        )
        assert entry.precheck_rc == rc.XM_UNKNOWN_HYPERCALL

    def test_arity_mismatch_prechecked(self):
        entry = self.compile_one(
            TestCallSpec(
                "XM_halt_partition#0",
                "XM_halt_partition",
                "Partitioning",
                (
                    ArgSpec("id", "zero", 0),
                    ArgSpec("extra", "zero", 0),
                ),
            )
        )
        assert entry.precheck_rc == rc.XM_INVALID_PARAM

    def test_dispatchable_spec_has_no_precheck(self):
        campaign = Campaign(functions=("XM_halt_partition",))
        plan = campaign.plan()
        assert all(e.precheck_rc is None for e in plan.entries)

    def test_converted_args_are_masked_ints(self):
        campaign = Campaign(functions=TRIO)
        for entry in campaign.plan().entries:
            if entry.precheck_rc is not None:
                continue
            assert len(entry.converted) == len(entry.resolved)
            # Typed converters may legitimately produce signed values
            # (e.g. xm_s64 time arguments); every slot is still an int.
            assert all(isinstance(v, int) for v in entry.converted)

    def test_record_base_matches_spec(self):
        campaign = Campaign(functions=("XM_halt_partition",))
        for entry in campaign.plan().entries:
            base = entry.record_base
            assert base["test_id"] == entry.spec.test_id
            assert base["arg_labels"] == entry.spec.arg_labels()
            assert base["resolved_args"] == entry.spec.resolve_args(
                campaign.plan().layout
            )

    def test_entry_for_rejects_drifted_spec(self):
        campaign = Campaign(functions=("XM_halt_partition",))
        plan = campaign.plan()
        spec = plan.entries[0].spec
        drifted = TestCallSpec(spec.test_id, spec.function, spec.category, ())
        assert plan.entry_for(spec) is plan.entries[0]
        assert plan.entry_for(drifted) is None

    def test_groups_are_maximal_consecutive_runs(self):
        campaign = Campaign(functions=TRIO)
        plan = campaign.plan()
        groups = plan.groups
        # Suites are generated per hypercall: one group per function.
        assert [g[0].function for g in groups] == list(TRIO)
        assert sum(len(g) for g in groups) == len(plan)
        for group in groups:
            assert len({e.function for e in group}) == 1
        # Flattened groups preserve campaign order exactly.
        flat = [e.test_id for g in groups for e in g]
        assert flat == [e.test_id for e in plan.entries]

    def test_group_consecutive_splits_on_function_change(self):
        campaign = Campaign(functions=("XM_set_timer", "XM_halt_partition"))
        entries = campaign.plan().entries
        interleaved = [entries[0], entries[-1], entries[1]]
        groups = group_consecutive(interleaved)
        assert [len(g) for g in groups] == [1, 1, 1]

    def test_plan_is_cached_per_campaign(self):
        campaign = Campaign(functions=("XM_halt_partition",))
        assert campaign.plan() is campaign.plan()

    def test_plan_memo_is_shared_across_equal_campaigns(self):
        # Suites (and therefore plans) are memoized process-wide: two
        # campaigns over the same configuration share one compilation.
        a = Campaign(functions=("XM_halt_partition",))
        b = Campaign(functions=("XM_halt_partition",))
        assert a.plan() is b.plan()
        # A different configuration compiles its own plan.
        c = Campaign(functions=("XM_halt_partition",), frames=3)
        assert c.plan() is not a.plan()


# -- oracle consistency ------------------------------------------------------


class TestPlannedOracle:
    def test_expect_planned_equals_expect(self):
        from repro.fault.oracle import ReferenceOracle

        campaign = Campaign(functions=TRIO)
        oracle = ReferenceOracle(campaign.kernel_version, campaign.oracle_context)
        for entry in campaign.plan().entries:
            assert oracle.expect_planned(entry) == oracle.expect(entry.spec)


# -- planned == unplanned identity -------------------------------------------


class TestSerialIdentity:
    @pytest.fixture(scope="class")
    def unplanned(self):
        return Campaign(functions=TRIO, compiled_plan=False).run()

    def test_compiled_batched_equals_unplanned(self, unplanned):
        compiled = Campaign(functions=TRIO).run()
        assert stream(compiled) == stream(unplanned)

    def test_compiled_unbatched_equals_unplanned(self, unplanned):
        unbatched = Campaign(functions=TRIO, batch_hypercalls=False).run()
        assert stream(unbatched) == stream(unplanned)

    def test_verify_plan_audit_passes(self, unplanned):
        audited = Campaign(functions=TRIO, verify_plan=True).run()
        assert stream(audited) == stream(unplanned)
        modes = audited.execution_stats["reset_modes"]
        assert modes["plan_verified"] == len(audited.log)

    def test_issues_and_classification_identical(self, unplanned):
        compiled = Campaign(functions=TRIO).run()
        assert [
            (i.hypercall, i.kind, i.severity, i.description)
            for i in compiled.issues
        ] == [
            (i.hypercall, i.kind, i.severity, i.description)
            for i in unplanned.issues
        ]
        assert [
            (c.severity, c.kind) for _r, _e, c in compiled.classified
        ] == [(c.severity, c.kind) for _r, _e, c in unplanned.classified]


@needs_fork
class TestParallelIdentity:
    def test_sharded_compiled_equals_serial_unplanned(self):
        serial = Campaign(functions=TRIO, compiled_plan=False).run()
        sharded = Campaign(functions=TRIO).run(processes=2)
        assert stream(sharded) == stream(serial)

    def test_kill_and_resume_equals_uninterrupted(self, tmp_path, monkeypatch):
        baseline = Campaign(functions=TRIO).run()
        victim = list(Campaign(functions=TRIO).iter_specs())[10]
        log_path = tmp_path / "campaign.jsonl"

        monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
        interrupted = Campaign(functions=TRIO).run(
            processes=2, log_path=log_path
        )
        monkeypatch.delenv(KILL_SPEC_ENV)
        killed = [r.test_id for r in interrupted.log if r.worker_killed]
        assert killed == [victim.test_id]

        # Resume from the checkpoint stream: only the killed spec
        # reruns, and the merged result is indistinguishable from an
        # uninterrupted compiled campaign.
        partial = CampaignLog(
            records=[r for r in interrupted.log if not r.worker_killed]
        )
        resumed = Campaign(functions=TRIO).run(resume_from=partial)
        assert stream(resumed) == stream(baseline)


class TestResumeIdentity:
    def test_interrupted_serial_resume_is_identical(self):
        baseline = Campaign(functions=TRIO).run()
        records = list(baseline.log)
        partial = CampaignLog(records=records[: len(records) // 2])
        resumed = Campaign(functions=TRIO).run(resume_from=partial)
        assert stream(resumed) == stream(baseline)


# -- batched-pass fallbacks --------------------------------------------------


class TestBatchFallbacks:
    def test_quarantined_specs_skip_without_breaking_batches(self, tmp_path):
        import json

        campaign = Campaign(functions=TRIO)
        specs = list(campaign.iter_specs())
        victims = [specs[3].test_id, specs[20].test_id]
        quarantine = tmp_path / "quarantine.json"
        quarantine.write_text(
            json.dumps(
                {
                    "entries": {
                        test_id: {"verdict": "worker_killed", "attempts": 3}
                        for test_id in victims
                    }
                }
            )
        )
        unbatched = Campaign(functions=TRIO, batch_hypercalls=False).run(
            quarantine_path=quarantine
        )
        batched = Campaign(functions=TRIO).run(quarantine_path=quarantine)
        assert stream(batched) == stream(unbatched)
        skipped = [r for r in batched.log if r.quarantined]
        assert sorted(r.test_id for r in skipped) == sorted(victims)

    def test_watchdog_forces_per_spec_path(self):
        # A per-test wall-clock watchdog must bracket exactly one test,
        # so run_group degrades to the per-spec planned path.
        campaign = Campaign(functions=("XM_halt_partition",))
        plan = campaign.plan()
        executor = TestExecutor(timeout_s=30.0)
        ran = []
        original = TestExecutor.run_planned

        def spying(self, entry):
            ran.append(entry.test_id)
            return original(self, entry)

        TestExecutor.run_planned = spying
        try:
            records = executor.run_group(plan.groups[0])
        finally:
            TestExecutor.run_planned = original
        assert ran == [e.test_id for e in plan.groups[0]]
        assert [r.test_id for r in records] == ran

    def test_batched_group_uses_shared_loop(self):
        campaign = Campaign(functions=("XM_halt_partition",))
        plan = campaign.plan()
        executor = TestExecutor()
        records = executor.run_group(plan.groups[0])
        assert [r.test_id for r in records] == [
            e.test_id for e in plan.groups[0]
        ]
        # One restore armed the loop; every later test was a delta revert.
        assert executor.reset_stats["restore"] == 1
        assert executor.reset_stats["delta"] == len(records) - 1


# -- the audit catches a lying plan ------------------------------------------


class TestVerifyPlan:
    def test_tampered_plan_raises(self):
        campaign = Campaign(functions=("XM_suspend_partition",))
        plan = campaign.plan()
        executor = TestExecutor(verify_plan=True)
        # Corrupt one entry's precomputed record skeleton: the planned
        # record now disagrees with the unplanned reference run, and
        # the audit must refuse it.
        entry = plan.entries[0]
        honest = entry.record_base
        entry.record_base = dict(honest, resolved_args=(0xDEAD,))
        try:
            with pytest.raises(PlanVerifyError):
                executor.run_planned(entry)
        finally:
            entry.record_base = honest

    def test_honest_plan_verifies(self):
        campaign = Campaign(functions=("XM_halt_partition",))
        plan = campaign.plan()
        executor = TestExecutor(verify_plan=True)
        for entry in plan.entries:
            executor.run_planned(entry)
        assert executor.reset_stats["plan_verified"] == len(plan)


# -- profile flag ------------------------------------------------------------


class TestProfile:
    def test_phase_times_collected(self):
        result = Campaign(functions=("XM_halt_partition",), profile=True).run()
        times = result.execution_stats["phase_times"]
        assert set(times) >= {"bringup", "run", "record", "reset"}
        assert all(v > 0 for v in times.values())

    def test_phase_times_absent_by_default(self):
        result = Campaign(functions=("XM_halt_partition",)).run()
        assert "phase_times" not in result.execution_stats
