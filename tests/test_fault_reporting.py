"""Tests for reports, stats, the test log and the CLI."""

import json

import pytest

from repro.fault import report, stats
from repro.fault.campaign import Campaign
from repro.fault.testlog import CampaignLog, Invocation, TestRecord
from repro.xm import rc


@pytest.fixture(scope="module")
def result():
    return Campaign(
        functions=("XM_reset_system", "XM_set_timer", "XM_switch_sched_plan")
    ).run()


class TestTableOne:
    def test_rows_match_paper(self):
        rows = {r["basic"]: r for r in report.table1_rows()}
        assert rows["xm_u32_t"]["extended"] == [
            "xmWord_t",
            "xmAddress_t",
            "xmIoAddress_t",
            "xmSize_t",
            "xmId_t",
        ]
        assert rows["xm_s64_t"]["extended"] == ["xmTime_t"]
        assert rows["xm_u8_t"]["c_decl"] == "unsigned char"

    def test_render(self):
        text = report.table1()
        assert "xm_u64_t" in text and "unsigned long long" in text


class TestTableTwo:
    def test_rows_match_paper(self):
        rows = report.table2_rows()
        assert [r["value"] for r in rows] == [
            -2147483648, -16, -1, 0, 1, 2, 16, 2147483647,
        ]

    def test_render_marks_asterisks(self):
        text = report.table2()
        assert "MIN_S32" in text
        assert "-16*" in text
        assert "valid / invalid input depending on hypercall" in text


class TestTableThree:
    def test_rows_in_paper_order(self, result):
        rows = report.table3_rows(result)
        assert [r.category for r in rows][:3] == [
            "System Management",
            "Partition Management",
            "Time Management",
        ]

    def test_partial_campaign_counts(self, result):
        rows = {r.category: r for r in report.table3_rows(result)}
        assert rows["System Management"].tests == 5
        assert rows["Time Management"].tests == 32
        assert rows["Plan Management"].tests == 2
        assert rows["System Management"].raised_issues == 3

    def test_totals_row(self, result):
        totals = report.table3_totals(result)
        assert totals.tests == 39
        assert totals.total_hypercalls == 61
        assert totals.hypercalls_tested == 39

    def test_render_with_and_without_paper(self, result):
        assert "Paper Tests" in report.table3(result)
        assert "Paper Tests" not in report.table3(result, compare_paper=False)


class TestFig8:
    def test_distribution_matches_paper(self):
        data = report.fig8_data()
        assert data.total_hypercalls == 61
        assert data.tested == 39
        assert data.untested_parameterless == 10
        assert data.untested_other == 12
        assert round(data.tested_share * 100) == 64
        assert round(data.parameterless_share_of_all * 100) == 16
        assert 0.40 <= data.parameterless_share_of_untested < 0.50

    def test_render(self):
        text = report.fig8()
        assert "64%" in text and "16%" in text


class TestSummaries:
    def test_campaign_summary(self, result):
        text = report.campaign_summary(result)
        assert "XtratuM 3.4.0" in text
        assert "Issues raised     : 6" in text

    def test_severity_summary(self, result):
        text = report.severity_summary(result)
        assert "Catastrophic" in text

    def test_empty_issue_report(self):
        clean = Campaign(functions=("XM_switch_sched_plan",)).run()
        assert report.issues_report(clean) == "No robustness issues raised."


class TestStats:
    def test_tests_per_category(self, result):
        counts = stats.tests_per_category(result.log)
        assert counts["System Management"] == 5
        assert counts["Time Management"] == 32

    def test_rc_distribution(self, result):
        dist = stats.rc_distribution(result.log)
        assert dist[rc.XM_OK] > 0
        assert sum(dist.values()) <= result.total_tests

    def test_wall_time_stats(self, result):
        wall = stats.wall_time_stats(result.log)
        assert 0 < wall["min"] <= wall["median"] <= wall["p95"] <= wall["max"]
        assert wall["total"] > wall["max"]

    def test_wall_time_empty_log(self):
        wall = stats.wall_time_stats(CampaignLog())
        assert wall["total"] == 0.0

    def test_severity_matrix_shape(self, result):
        categories, matrix = stats.severity_matrix(result)
        assert matrix.shape == (len(categories), 6)
        assert matrix.sum() == result.total_tests

    def test_failure_rate_by_function(self, result):
        rates = stats.failure_rate_by_function(result)
        assert rates["XM_reset_system"] == 3 / 5
        assert rates["XM_switch_sched_plan"] == 0.0

    def test_response_diversity(self, result):
        diversity = stats.response_diversity(result, "XM_set_timer")
        crash_case = diversity["EXEC_CLOCK, 1, 1"]
        assert "simulator crash" in crash_case
        silent_case = diversity["HW_CLOCK, 1, LLONG_MIN"]
        assert "XM_OK" in silent_case
        # §V's point: the hypercall exhibits several distinct responses.
        assert stats.distinct_response_count(result, "XM_set_timer") >= 4

    def test_response_diversity_clean_function(self, result):
        diversity = stats.response_diversity(result, "XM_switch_sched_plan")
        assert all(r == {"XM_OK"} for r in diversity.values())


class TestTestLog:
    def test_record_roundtrip(self):
        record = TestRecord(
            test_id="t#1",
            function="XM_x",
            category="c",
            arg_labels=("a", "b"),
            resolved_args=(1, 2),
            invocations=[Invocation(returned=True, rc=0)],
            resets=[("cold", "src")],
            hm_events=[("FATAL_ERROR", -1, "boom")],
        )
        clone = TestRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone == record

    def test_log_save_load(self, tmp_path, result):
        path = tmp_path / "log.jsonl"
        result.log.save(path)
        loaded = CampaignLog.load(path)
        assert len(loaded) == len(result.log)
        assert loaded.records[0] == result.log.records[0]

    def test_by_function_filter(self, result):
        assert len(result.log.by_function("XM_reset_system")) == 5

    def test_first_rc_semantics(self):
        record = TestRecord(test_id="t", function="f", category="c")
        assert record.first_rc is None
        record.invocations.append(Invocation(returned=False))
        assert record.first_rc is None and record.never_returned


class TestCli:
    def test_tables_command(self, capsys):
        from repro.cli import main

        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "xm_u32_t" in out

    def test_run_command_with_log(self, tmp_path, capsys):
        from repro.cli import main

        log_path = tmp_path / "out.jsonl"
        code = main(
            [
                "run",
                "--functions",
                "XM_reset_system",
                "--quiet",
                "--log",
                str(log_path),
            ]
        )
        assert code == 0
        assert log_path.exists()
        out = capsys.readouterr().out
        assert "Issues raised     : 3" in out

    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        log_path = tmp_path / "out.jsonl"
        main(["run", "--functions", "XM_reset_system", "--quiet", "--log", str(log_path)])
        capsys.readouterr()
        assert main(["report", "--log", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "XM-RS-1" in out

    def test_phantom_command(self, capsys):
        from repro.cli import main

        assert main(["phantom"]) == 0
        out = capsys.readouterr().out
        assert "phantom cases executed : 50" in out

    def test_run_fixed_version(self, capsys):
        from repro.cli import main

        assert main(["run", "--functions", "XM_multicall", "--quiet", "--version", "3.4.1"]) == 0
        out = capsys.readouterr().out
        assert "Issues raised     : 0" in out
