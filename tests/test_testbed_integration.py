"""Integration tests: the full EagleEye OBSW flying nominally."""

from repro.testbed import build_eagleeye_image, build_system
from repro.xm.hm import HmEvent

from conftest import BootedSystem


class TestNominalMission:
    def test_ten_frames_clean(self):
        system = BootedSystem()
        system.run_frames(10)
        kernel = system.kernel
        assert not kernel.is_halted()
        assert kernel.reset_log == []
        assert kernel.sched.overruns == []
        assert not kernel.hm.events_of(HmEvent.UNHANDLED_TRAP)
        assert not kernel.hm.events_of(HmEvent.MEM_PROTECTION)

    def test_telemetry_chain_flows(self):
        system = BootedSystem()
        system.run_frames(5)
        # AOCS publishes on the sampling channel every slot.
        chan = system.kernel.ipc.channels["CH_TM_AOCS"]
        assert chan.writes >= 5
        assert chan.message is not None

    def test_payload_data_downlinked(self):
        system = BootedSystem()
        system.run_frames(5)
        io_app = system.kernel.partitions[4].app
        assert io_app.downlinked >= 4

    def test_commands_consumed_by_payload(self):
        system = BootedSystem()
        system.run_frames(6)
        cmd = system.kernel.ipc.channels["CH_CMD"]
        assert cmd.sent >= 2
        # The payload drains commands, so the queue never overflows.
        assert cmd.dropped == 0

    def test_all_partitions_make_progress(self):
        system = BootedSystem()
        system.run_frames(4)
        for partition in system.kernel.partitions.values():
            assert partition.app.steps >= 4

    def test_image_metadata(self):
        image = build_eagleeye_image()
        assert image.metadata["testbed"] == "EagleEye TSP"
        assert image.partition_names() == ["FDIR", "AOCS", "PLATFORM", "PAYLOAD", "IO"]

    def test_event_budget_override(self):
        sim = build_system(event_budget=123)
        assert sim.event_budget == 123


class TestFdirMonitoring:
    def test_fdir_forwards_hm_events(self):
        system = BootedSystem()
        # Inject a partition error so FDIR's duty loop reports it.
        system.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 2, 0)
        system.run_frames(3)
        fdir_app = system.kernel.partitions[0].app
        assert fdir_app.hm_events_seen >= 1
        io_lines = system.sim.machine.uart.lines("IO")
        assert any("FDIR event" in line for line in io_lines)

    def test_quiet_system_reports_nothing(self):
        system = BootedSystem()
        system.run_frames(3)
        assert system.kernel.partitions[0].app.hm_events_seen == 0
