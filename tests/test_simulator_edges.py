"""Edge-case tests for the simulator, machine and kernel lifecycle."""

import pytest

from repro.sparc.memory import Access, MemoryArea
from repro.testbed import build_system
from repro.testbed.eagleeye import eagleeye_config
from repro.tsim.machine import TargetMachine
from repro.tsim.simulator import SimState

from conftest import BootedSystem


class TestMachineEdges:
    def test_leon3_map_ram_variant(self):
        machine = TargetMachine.leon3(map_ram=True)
        assert machine.memory.area_at(0x40000000) is not None

    def test_default_board_has_no_ram_mapped(self):
        machine = TargetMachine.leon3()
        assert machine.memory.area_at(0x40000000) is None

    def test_ram_contains(self):
        machine = TargetMachine.leon3()
        assert machine.ram_contains(0x40000000, 16)
        assert not machine.ram_contains(0x3FFFFFFF, 16)
        assert not machine.ram_contains(0x40000000 + machine.ram_size, 1)

    def test_cold_reset_clears_memory_warm_keeps(self):
        machine = TargetMachine.leon3()
        machine.memory.add_area(MemoryArea("a", 0x40000000, 0x100, Access.RW))
        machine.memory.write(0x40000000, b"live")
        machine.reset(cold=False)
        assert machine.memory.read(0x40000000, 4) == b"live"
        machine.reset(cold=True)
        assert machine.memory.read(0x40000000, 4) == bytes(4)

    def test_uart_mmio_write_reaches_console(self):
        from repro.tsim.machine import UART_BASE

        machine = TargetMachine.leon3()
        for ch in b"hi\n":
            machine.iobus.write(UART_BASE, ch)
        assert machine.uart.lines() == ["hi"]

    def test_irqmp_mmio_registers(self):
        from repro.tsim.machine import IRQMP_BASE

        machine = TargetMachine.leon3()
        machine.iobus.write(IRQMP_BASE + 0x40, 0xFF00)
        assert machine.iobus.read(IRQMP_BASE + 0x40) == 0xFF00
        machine.iobus.write(IRQMP_BASE + 0x04, 1 << 9)
        assert machine.iobus.read(IRQMP_BASE + 0x04) == 1 << 9


class TestKernelEdges:
    def test_area_outside_board_ram_panics_at_boot(self):
        from repro.xm.config import MemoryAreaConfig, PartitionConfig
        from repro.xm.errors import KernelPanic

        config = eagleeye_config()
        config.partitions[4] = PartitionConfig(
            ident=4,
            name="IO",
            memory_areas=(MemoryAreaConfig("io_ram", 0x7000_0000, 0x1000),),
            ports=config.partitions[4].ports,
        )
        sim = build_system(config=config)
        with pytest.raises(KernelPanic, match="outside board RAM"):
            sim.boot()

    def test_hypercall_count_increments(self):
        system = BootedSystem()
        before = system.kernel.hypercall_count
        system.call("XM_mask_irq", 1)
        assert system.kernel.hypercall_count == before + 1

    def test_console_transcript_carries_boot_banner(self):
        system = BootedSystem()
        assert "XM 3.4.0 boot: 5 partitions" in system.sim.machine.uart.transcript()

    def test_reset_log_kinds(self):
        from repro.xm.errors import NoReturnFromHypercall

        system = BootedSystem()
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", 1)
        system.run_frames(1)
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", 0)
        kinds = [record.kind for record in system.kernel.reset_log]
        assert kinds == ["warm", "cold"]

    def test_multiple_resets_keep_schedule_alive(self):
        from repro.xm.errors import NoReturnFromHypercall

        system = BootedSystem()
        for _ in range(3):
            with pytest.raises(NoReturnFromHypercall):
                system.call("XM_reset_system", 1)
            system.run_frames(1)
        assert not system.kernel.is_halted()
        assert system.kernel.warm_reset_counter == 3
        assert system.kernel.boot_epoch == 3


class TestSimulatorLifecycle:
    def test_state_transitions(self):
        system = BootedSystem()
        assert system.sim.state is SimState.RUNNING
        system.kernel.halt("test")
        system.run_frames(1)
        assert system.sim.state is SimState.STOPPED

    def test_run_until_is_monotonic(self):
        system = BootedSystem()
        system.sim.run_until(100)
        system.sim.run_until(50)  # already past; no-op
        assert system.sim.now_us == 100

    def test_dispatched_events_grow(self):
        system = BootedSystem()
        system.run_frames(1)
        first = system.sim.dispatched_events
        system.run_frames(1)
        assert system.sim.dispatched_events > first

    def test_crashed_simulator_stays_crashed(self):
        from repro.tsim.simulator import SimulatorCrash

        system = BootedSystem()
        system.call("XM_set_timer", 1, 1, 1)
        with pytest.raises(SimulatorCrash):
            system.run_frames(1)
        # Further runs are inert: the process died.
        system.sim.run_until(10**9)
        assert system.sim.state is SimState.CRASHED


class TestMemoryEdgeCases:
    def test_cstring_across_area_boundary_faults_cleanly(self):
        from repro.sparc.memory import AddressSpace, MemoryFault, PhysicalMemory

        memory = PhysicalMemory()
        memory.add_area(MemoryArea("a", 0x1000, 0x10, Access.RW))
        space = AddressSpace("t", memory)
        space.grant("a", Access.RW)
        space.write(0x1000, b"A" * 16)  # unterminated up to the area end
        with pytest.raises(MemoryFault):
            space.read_cstring(0x1000, max_len=64)

    def test_cstring_terminated_at_last_byte(self):
        from repro.sparc.memory import AddressSpace, PhysicalMemory

        memory = PhysicalMemory()
        memory.add_area(MemoryArea("a", 0x1000, 0x10, Access.RW))
        space = AddressSpace("t", memory)
        space.grant("a", Access.RW)
        space.write(0x1000, b"ABCDEFGHIJKLMNO\0")
        assert space.read_cstring(0x1000) == b"ABCDEFGHIJKLMNO"

    def test_cstring_spanning_adjacent_areas(self):
        from repro.sparc.memory import AddressSpace, PhysicalMemory

        memory = PhysicalMemory()
        memory.add_area(MemoryArea("a", 0x1000, 0x8, Access.RW))
        memory.add_area(MemoryArea("b", 0x1008, 0x8, Access.RW))
        space = AddressSpace("t", memory)
        space.grant("a", Access.RW)
        space.grant("b", Access.RW)
        memory.write(0x1000, b"ABCDEFGH")
        memory.write(0x1008, b"IJ\0" + bytes(5))
        assert space.read_cstring(0x1000) == b"ABCDEFGHIJ"
