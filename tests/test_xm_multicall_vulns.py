"""The three XM_multicall findings (XM-MC-1/2/3) end to end."""

import struct

import pytest

from repro.testbed.eagleeye import partition_area_base
from repro.xal.runtime import TEST_BUFFER_OFFSET
from repro.xm import rc
from repro.xm.api import hypercall_by_name
from repro.xm.errors import NoReturnFromHypercall
from repro.xm.hm import HmEvent
from repro.xm.partition import PartitionState


def write_batch(system, entries, partition_id: int = 0) -> tuple[int, int]:
    """Pack [number, nargs, args...] entries into the test buffer."""
    words: list[int] = []
    for name, args in entries:
        number = hypercall_by_name(name).number
        words.extend([number, len(args), *args])
    data = b"".join(struct.pack(">I", w & 0xFFFFFFFF) for w in words)
    base = partition_area_base(partition_id) + TEST_BUFFER_OFFSET
    system.kernel.machine.memory.write(base, data)
    return base, base + len(data)


class TestInvalidPointers:
    @pytest.mark.parametrize("start", [0, 1, 0x50000000, 0xFFFFFFF0])
    def test_invalid_start_faults(self, system, start):
        with pytest.raises(NoReturnFromHypercall, match="unhandled trap"):
            system.call("XM_multicall", start, start + 64)
        assert system.fdir.state is PartitionState.HALTED
        assert system.kernel.hm.events_of(HmEvent.UNHANDLED_TRAP)

    @pytest.mark.parametrize("end", [0, 1, 0x50000000, 0xFFFFFFF0])
    def test_invalid_end_faults(self, system, end):
        start, _ = write_batch(system, [("XM_mask_irq", (1,))])
        with pytest.raises(NoReturnFromHypercall, match="unhandled trap"):
            system.call("XM_multicall", start, end)
        assert system.fdir.state is PartitionState.HALTED

    def test_fault_contained_to_test_partition(self, system):
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_multicall", 0x50000000, 0x50000040)
        for ident in (1, 2, 3, 4):
            assert system.kernel.partitions[ident].state.runnable()
        assert not system.kernel.is_halted()


class TestValidBatchExecution:
    def test_small_batch_executes_entries(self, system):
        start, end = write_batch(
            system,
            [
                ("XM_mask_irq", (3,)),
                ("XM_unmask_irq", (3,)),
                ("XM_set_irqpend", (4,)),
            ],
        )
        result = system.call("XM_multicall", start, end)
        assert result == 3
        assert system.fdir.virq_pending & (1 << 4)

    def test_batch_inner_calls_charged(self, system):
        start, end = write_batch(system, [("XM_mask_irq", (1,))] * 10)
        before = system.kernel.sched.slot_consumed_us
        system.call("XM_multicall", start, end)
        consumed = system.kernel.sched.slot_consumed_us - before
        # Outer call + 10 inner calls.
        assert consumed == 11 * system.kernel.HYPERCALL_COST_US

    def test_oversized_nargs_is_multicall_error(self, system):
        base = partition_area_base(0) + TEST_BUFFER_OFFSET
        system.kernel.machine.memory.write(base, struct.pack(">II", 1, 99))
        assert system.call("XM_multicall", base, base + 8) == rc.XM_MULTICALL_ERROR

    def test_truncated_entry_is_multicall_error(self, system):
        base = partition_area_base(0) + TEST_BUFFER_OFFSET
        number = hypercall_by_name("XM_mask_irq").number
        system.kernel.machine.memory.write(base, struct.pack(">II", number, 3))
        assert system.call("XM_multicall", base, base + 8) == rc.XM_MULTICALL_ERROR

    def test_recursive_multicall_entry_skipped(self, system):
        start, end = write_batch(system, [("XM_multicall", (0, 0))])
        assert system.call("XM_multicall", start, end) == 1
        assert system.fdir.state.runnable()


class TestTemporalIsolationBreak:
    """XM-MC-3: a big batch overruns the slot."""

    def make_big_batch(self, system, count=4096):
        return write_batch(system, [("XM_mask_irq", (1,))] * count)

    def run_payload_campaign_frame(self, system_builder_args):
        """Boot a system whose FDIR payload fires the big batch."""
        from conftest import BootedSystem

        calls = {}

        def payload(ctx, xm):
            if "range" not in calls:
                base = partition_area_base(0) + TEST_BUFFER_OFFSET
                entry = struct.pack(
                    ">II I", hypercall_by_name("XM_mask_irq").number, 1, 1
                )
                data = entry * 4096
                xm.write_bytes(base, data)
                calls["range"] = (base, base + len(data))
            start, end = calls["range"]
            calls["rc"] = xm.call("XM_multicall", start, end)

        system = BootedSystem(fdir_payload=payload)
        system.run_frames(1)
        return system, calls

    def test_big_batch_raises_temporal_violation(self):
        # The 1-frame run executes the FDIR slot at t=0 and the one at
        # the t=250ms boundary: one violation per invocation.
        system, calls = self.run_payload_campaign_frame(())
        assert calls["rc"] == 4096
        violations = system.kernel.hm.events_of(HmEvent.TEMPORAL_VIOLATION)
        assert len(violations) == 2
        assert all(v.partition_id == 0 for v in violations)

    def test_overrun_amount_recorded(self):
        system, _ = self.run_payload_campaign_frame(())
        overruns = system.kernel.sched.overruns
        assert len(overruns) == 2
        _, partition_id, overrun = overruns[0]
        assert partition_id == 0
        # 4097 calls x 20us plus app overhead, minus the 50ms slot.
        assert overrun > 30_000


class TestRevisedMulticall:
    def test_service_removed(self, fixed_system):
        assert system_removed_rc(fixed_system, 0, 0) == rc.XM_NO_SERVICE

    def test_removed_even_with_valid_batch(self, fixed_system):
        start, end = write_batch(fixed_system, [("XM_mask_irq", (1,))])
        assert fixed_system.call("XM_multicall", start, end) == rc.XM_NO_SERVICE
        assert fixed_system.fdir.state.runnable()

    def test_removed_with_bad_pointers_no_fault(self, fixed_system):
        assert (
            fixed_system.call("XM_multicall", 0x50000000, 0x50000100)
            == rc.XM_NO_SERVICE
        )
        assert fixed_system.fdir.state.runnable()


def system_removed_rc(system, start, end):
    return system.call("XM_multicall", start, end)
