"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparc.memory import Access, AddressSpace, MemoryArea, PhysicalMemory
from repro.tsim.events import EventQueue
from repro.xtypes import XM_S8, XM_S16, XM_S32, XM_S64, XM_U8, XM_U16, XM_U32, XM_U64

ALL_TYPES = [XM_U8, XM_S8, XM_U16, XM_S16, XM_U32, XM_S32, XM_U64, XM_S64]

big_ints = st.integers(min_value=-(2**70), max_value=2**70)


class TestIntegerConversionProperties:
    @given(st.sampled_from(ALL_TYPES), big_ints)
    @settings(max_examples=200, deadline=None)
    def test_convert_lands_in_range(self, desc, value):
        converted = desc.convert(value)
        assert desc.min <= converted <= desc.max

    @given(st.sampled_from(ALL_TYPES), big_ints)
    @settings(max_examples=200, deadline=None)
    def test_convert_is_idempotent(self, desc, value):
        once = desc.convert(value)
        assert desc.convert(once) == once

    @given(st.sampled_from(ALL_TYPES), big_ints)
    @settings(max_examples=200, deadline=None)
    def test_convert_preserves_congruence(self, desc, value):
        """C conversion preserves the value modulo 2**bits."""
        assert desc.convert(value) % desc.modulus == value % desc.modulus

    @given(st.sampled_from(ALL_TYPES), big_ints, big_ints)
    @settings(max_examples=200, deadline=None)
    def test_addition_homomorphism(self, desc, a, b):
        """convert(a) + convert(b) == convert(a + b) after conversion."""
        lhs = desc.convert(desc.convert(a) + desc.convert(b))
        rhs = desc.convert(a + b)
        assert lhs == rhs

    @given(big_ints)
    @settings(max_examples=100, deadline=None)
    def test_signed_unsigned_bit_patterns_agree(self, value):
        """Same width signed/unsigned conversions share bit patterns."""
        for signed, unsigned in ((XM_S8, XM_U8), (XM_S32, XM_U32)):
            s = signed.convert(value)
            u = unsigned.convert(value)
            assert signed.to_unsigned(s) == u


@st.composite
def disjoint_areas(draw):
    """Random non-overlapping area lists within a 1 MiB window."""
    count = draw(st.integers(min_value=1, max_value=6))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=0xFFFFF),
                min_size=count * 2,
                max_size=count * 2,
                unique=True,
            )
        )
    )
    base = 0x40000000
    areas = []
    for i in range(count):
        start, end = cuts[2 * i], cuts[2 * i + 1]
        areas.append(MemoryArea(f"a{i}", base + start, end - start))
    return areas


class TestMemoryIsolationProperties:
    @given(disjoint_areas())
    @settings(max_examples=50, deadline=None)
    def test_disjoint_areas_always_map(self, areas):
        memory = PhysicalMemory()
        for area in areas:
            memory.add_area(area)
        assert len(list(memory.areas())) == len(areas)

    @given(disjoint_areas(), st.integers(min_value=0, max_value=0xFFFFF))
    @settings(max_examples=50, deadline=None)
    def test_every_byte_owned_by_at_most_one_area(self, areas, offset):
        memory = PhysicalMemory()
        for area in areas:
            memory.add_area(area)
        address = 0x40000000 + offset
        owners = [a for a in memory.areas() if a.contains(address)]
        assert len(owners) <= 1
        assert (memory.area_at(address) is not None) == bool(owners)

    @given(disjoint_areas())
    @settings(max_examples=30, deadline=None)
    def test_ungranted_space_sees_nothing(self, areas):
        memory = PhysicalMemory()
        for area in areas:
            memory.add_area(area)
        space = AddressSpace("p", memory)
        import pytest

        for area in areas:
            with pytest.raises(Exception):
                space.read(area.start, 1)
        space.grant(areas[0].name, Access.READ)
        assert space.read(areas[0].start, 1) == b"\0"


class TestEventQueueProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=10_000), st.integers()),
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_pop_order_is_time_then_fifo(self, items):
        queue = EventQueue()
        for seq, (time_us, tag) in enumerate(items):
            queue.schedule(time_us, lambda t: None, name=f"{seq}:{tag}")
        popped = []
        while queue:
            event = queue.pop()
            popped.append((event.time_us, event.seq))
        assert popped == sorted(popped)
        assert len(popped) == len(items)


class TestSchedulerProperties:
    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=8, deadline=None)
    def test_slot_time_never_exceeds_frame(self, frames):
        from conftest import BootedSystem

        system = BootedSystem()
        system.run_frames(frames)
        plan = system.kernel.config.plan(0)
        assert sum(s.duration_us for s in plan.slots) <= plan.major_frame_us
        # Without overruns, accumulated exec time per partition never
        # exceeds its share of the schedule.
        for partition in system.kernel.partitions.values():
            share = sum(
                s.duration_us for s in plan.slots if s.partition_id == partition.ident
            )
            assert partition.exec_clock_us <= share * (frames + 1)


class TestClassifierDeterminism:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_reset_system_oracle_total_on_u32(self, mode):
        """The oracle yields a verdict for any converted u32 mode."""
        from repro.fault.mutant import ArgSpec, TestCallSpec
        from repro.fault.oracle import ReferenceOracle

        spec = TestCallSpec(
            "p#0",
            "XM_reset_system",
            "System Management",
            (ArgSpec("mode", str(mode), value=mode),),
        )
        expectation = ReferenceOracle().expect(spec)
        if mode in (0, 1):
            assert expectation.allow_no_return
        else:
            assert expectation.invalid_params == ("mode",)
