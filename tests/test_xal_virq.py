"""Tests for virtual interrupt delivery to partition applications."""

from repro.testbed import build_eagleeye_image
from repro.testbed.partitions import FdirApp
from repro.tsim.machine import TargetMachine
from repro.tsim.simulator import Simulator
from repro.xal.app import PartitionApplication
from repro.xal.runtime import Libxm
from repro.xm import rc
from repro.xm.svc_time import TIMER_VIRQ


class VirqRecorder(PartitionApplication):
    """Records delivered virtual interrupts."""

    def __init__(self):
        super().__init__()
        self.delivered: list[tuple[int, int]] = []

    def on_virq(self, ctx, xm: Libxm, line: int) -> None:
        self.delivered.append((ctx.now_us, line))


def boot_with_fdir_app(app_factory):
    image = build_eagleeye_image()
    image.partitions["FDIR"] = type(image.partitions["FDIR"])(
        "FDIR", app_factory
    )
    sim = Simulator(TargetMachine.leon3(), image)
    kernel = sim.boot()
    return sim, kernel


class TestVirqDelivery:
    def test_masked_virqs_stay_pending(self):
        app = VirqRecorder()
        sim, kernel = boot_with_fdir_app(lambda: app)
        fdir = kernel.partitions[0]
        fdir.virq_pending |= 1 << 5  # pend while masked
        sim.run_major_frames(1)
        assert app.delivered == []
        assert fdir.virq_pending & (1 << 5)

    def test_unmasked_virq_delivered_once(self):
        app = VirqRecorder()
        sim, kernel = boot_with_fdir_app(lambda: app)
        fdir = kernel.partitions[0]
        fdir.virq_mask |= 1 << 5
        fdir.virq_pending |= 1 << 5
        sim.run_major_frames(1)
        lines = [line for (_t, line) in app.delivered]
        assert lines == [5]
        assert not fdir.virq_pending & (1 << 5)

    def test_delivery_order_highest_first(self):
        app = VirqRecorder()
        sim, kernel = boot_with_fdir_app(lambda: app)
        fdir = kernel.partitions[0]
        fdir.virq_mask |= (1 << 3) | (1 << 9)
        fdir.virq_pending |= (1 << 3) | (1 << 9)
        sim.run_major_frames(1)
        lines = [line for (_t, line) in app.delivered]
        assert lines == [9, 3]

    def test_timer_expiry_reaches_the_application(self):
        class TimerApp(VirqRecorder):
            def on_boot(self, ctx, xm):
                xm.call("XM_unmask_irq", TIMER_VIRQ)
                xm.set_timer(rc.XM_HW_CLOCK, 100_000, 0)

        app = TimerApp()
        sim, kernel = boot_with_fdir_app(lambda: app)
        sim.run_major_frames(2)
        lines = [line for (_t, line) in app.delivered]
        assert TIMER_VIRQ in lines
        # Delivered at the slot after the 100 ms expiry (t = 250 ms).
        first_time = next(t for (t, line) in app.delivered if line == TIMER_VIRQ)
        assert first_time == 250_000

    def test_set_irqpend_self_delivery_next_slot(self):
        class PendApp(VirqRecorder):
            def on_step(self, ctx, xm):
                if self.steps == 1:
                    xm.call("XM_unmask_irq", 7)
                    xm.call("XM_set_irqpend", 7)

        app = PendApp()
        sim, kernel = boot_with_fdir_app(lambda: app)
        sim.run_major_frames(2)
        lines = [line for (_t, line) in app.delivered]
        assert lines == [7]

    def test_nominal_testbed_unaffected(self):
        """The stock EagleEye apps ignore virqs; the mission still flies."""
        from conftest import BootedSystem

        system = BootedSystem()
        system.run_frames(4)
        assert not system.kernel.is_halted()
        assert system.kernel.sched.overruns == []
