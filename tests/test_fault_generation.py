"""Unit + property tests for matrix building and dataset generation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fault.apimodel import ApiFunction, ApiParameter, api_model_from_table
from repro.fault.combinator import (
    CartesianStrategy,
    PairwiseStrategy,
    RandomSampleStrategy,
    combinations_total,
)
from repro.fault.dictionaries import DictionarySet, TestValue, TypeDictionary
from repro.fault.matrix import build_matrix


def make_function(n_params: int, dict_names: list[str]) -> ApiFunction:
    params = tuple(
        ApiParameter(f"p{i}", "xm_u32_t", dictionary=dict_names[i])
        for i in range(n_params)
    )
    return ApiFunction("F_test", "xm_s32_t", params, category="Test")


def make_dicts(sizes: list[int]) -> DictionarySet:
    dicts = DictionarySet({})
    for i, size in enumerate(sizes):
        dicts.add(
            TypeDictionary(
                f"d{i}",
                "xm_u32_t",
                tuple(TestValue(str(v), value=v) for v in range(size)),
            )
        )
    return dicts


class TestMatrix:
    def test_shape_and_total(self):
        fn = make_function(3, ["d0", "d1", "d2"])
        matrix = build_matrix(fn, make_dicts([2, 3, 4]))
        assert matrix.shape == (2, 3, 4)
        assert matrix.total_combinations == 24

    def test_missing_dictionary_raises(self):
        fn = make_function(1, ["ghost"])
        with pytest.raises(KeyError, match="ghost"):
            build_matrix(fn, make_dicts([2]))

    def test_parameterless_function_rejected(self):
        fn = ApiFunction("F", "xm_s32_t", (), tested=False, untested_reason="x")
        with pytest.raises(ValueError, match="no parameters"):
            build_matrix(fn, make_dicts([]))

    def test_default_dictionary_is_type_name(self):
        param = ApiParameter("x", "xm_u32_t")
        assert param.dictionary_key == "xm_u32_t"

    def test_real_model_matrices_build(self):
        model = api_model_from_table()
        dicts = DictionarySet()
        for fn in model.tested_functions():
            matrix = build_matrix(fn, dicts)
            assert matrix.total_combinations >= 1


class TestEquationOne:
    """Eq. 1: combinations_total == product of per-parameter counts."""

    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_cartesian_count_matches_eq1(self, sizes):
        fn = make_function(len(sizes), [f"d{i}" for i in range(len(sizes))])
        matrix = build_matrix(fn, make_dicts(sizes))
        expected = 1
        for s in sizes:
            expected *= s
        assert combinations_total(matrix) == expected
        generated = list(CartesianStrategy().generate(matrix))
        assert len(generated) == expected
        assert CartesianStrategy().count(matrix) == expected

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_cartesian_datasets_unique(self, sizes):
        fn = make_function(len(sizes), [f"d{i}" for i in range(len(sizes))])
        matrix = build_matrix(fn, make_dicts(sizes))
        generated = list(CartesianStrategy().generate(matrix))
        labels = [tuple(tv.label for tv in ds) for ds in generated]
        assert len(set(labels)) == len(labels)

    def test_paper_total_matches_eq1_per_call(self):
        """Every suite size equals the product of its dictionary sizes."""
        model = api_model_from_table()
        dicts = DictionarySet()
        for fn in model.tested_functions():
            matrix = build_matrix(fn, dicts)
            product = 1
            for param in fn.params:
                product *= len(dicts.lookup(param.dictionary_key))
            assert matrix.total_combinations == product


class TestPairwise:
    @given(st.lists(st.integers(min_value=2, max_value=4), min_size=2, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_pairwise_covers_all_pairs(self, sizes):
        fn = make_function(len(sizes), [f"d{i}" for i in range(len(sizes))])
        matrix = build_matrix(fn, make_dicts(sizes))
        datasets = list(PairwiseStrategy().generate(matrix))
        indexed = [
            tuple(matrix.columns[i].index(tv) for i, tv in enumerate(ds))
            for ds in datasets
        ]
        for (i, si), (j, sj) in itertools.combinations(enumerate(sizes), 2):
            for a in range(si):
                for b in range(sj):
                    assert any(ds[i] == a and ds[j] == b for ds in indexed), (
                        f"pair ({i}={a}, {j}={b}) uncovered"
                    )

    @given(st.lists(st.integers(min_value=2, max_value=4), min_size=2, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_pairwise_no_larger_than_cartesian(self, sizes):
        fn = make_function(len(sizes), [f"d{i}" for i in range(len(sizes))])
        matrix = build_matrix(fn, make_dicts(sizes))
        assert PairwiseStrategy().count(matrix) <= matrix.total_combinations

    def test_pairwise_single_param_is_cartesian(self):
        fn = make_function(1, ["d0"])
        matrix = build_matrix(fn, make_dicts([4]))
        assert PairwiseStrategy().count(matrix) == 4

    def test_pairwise_reduces_large_spaces(self):
        fn = make_function(4, ["d0", "d1", "d2", "d3"])
        matrix = build_matrix(fn, make_dicts([4, 4, 4, 4]))
        assert PairwiseStrategy().count(matrix) < 256


class TestOneFactor:
    def make_matrix(self, sizes):
        fn = make_function(len(sizes), [f"d{i}" for i in range(len(sizes))])
        return build_matrix(fn, make_dicts(sizes))

    def test_size_is_sum_not_product(self):
        from repro.fault.combinator import OneFactorStrategy

        matrix = self.make_matrix([4, 5, 6])
        # base + (4-1) + (5-1) + (6-1): base values fold into the base.
        assert OneFactorStrategy().count(matrix) == 1 + 3 + 4 + 5

    def test_every_value_appears(self):
        from repro.fault.combinator import OneFactorStrategy

        matrix = self.make_matrix([3, 4])
        datasets = list(OneFactorStrategy().generate(matrix))
        for index, column in enumerate(matrix.columns):
            seen = {ds[index].label for ds in datasets}
            assert seen == {tv.label for tv in column}

    def test_base_uses_maybe_valid_values(self):
        from repro.fault.combinator import OneFactorStrategy
        from repro.fault.apimodel import api_model_from_table
        from repro.fault.dictionaries import DictionarySet

        fn = api_model_from_table().lookup("XM_multicall")
        matrix = build_matrix(fn, DictionarySet())
        base = next(OneFactorStrategy().generate(matrix))
        assert [tv.label for tv in base] == ["VALID", "VALID"]

    def test_no_duplicate_datasets(self):
        from repro.fault.combinator import OneFactorStrategy

        matrix = self.make_matrix([2, 2, 2])
        datasets = [
            tuple(tv.label for tv in ds)
            for ds in OneFactorStrategy().generate(matrix)
        ]
        assert len(set(datasets)) == len(datasets)

    def test_full_scope_size(self):
        from repro.fault.campaign import Campaign
        from repro.fault.combinator import OneFactorStrategy

        campaign = Campaign(strategy=OneFactorStrategy())
        assert campaign.total_tests() == 329


class TestRandomSample:
    def test_deterministic_for_seed(self):
        fn = make_function(2, ["d0", "d1"])
        matrix = build_matrix(fn, make_dicts([5, 5]))
        strat = RandomSampleStrategy(fraction=0.5, seed=7)
        a = [tuple(tv.label for tv in ds) for ds in strat.generate(matrix)]
        b = [tuple(tv.label for tv in ds) for ds in strat.generate(matrix)]
        assert a == b

    def test_respects_fraction_and_minimum(self):
        fn = make_function(2, ["d0", "d1"])
        matrix = build_matrix(fn, make_dicts([10, 10]))
        assert RandomSampleStrategy(fraction=0.25).count(matrix) == 25
        assert RandomSampleStrategy(fraction=0.0, minimum=4).count(matrix) == 4

    def test_sample_never_exceeds_space(self):
        fn = make_function(1, ["d0"])
        matrix = build_matrix(fn, make_dicts([3]))
        assert RandomSampleStrategy(fraction=1.0, minimum=10).count(matrix) == 3

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_samples_are_valid_datasets(self, seed):
        fn = make_function(3, ["d0", "d1", "d2"])
        dicts = make_dicts([3, 4, 5])
        matrix = build_matrix(fn, dicts)
        strat = RandomSampleStrategy(fraction=0.3, seed=seed)
        for ds in strat.generate(matrix):
            assert len(ds) == 3
            for col, tv in zip(matrix.columns, ds):
                assert tv in col


class TestCampaignSizes:
    """The measured Table III test counts, fixed by construction."""

    EXPECTED = {
        "System Management": 8,
        "Partition Management": 256,
        "Time Management": 36,
        "Plan Management": 2,
        "Inter-Partition Communication": 632,
        "Memory Management": 1200,
        "Health Monitor Management": 48,
        "Trace Management": 392,
        "Interrupt Management": 140,
        "Miscellaneous": 45,
        "Sparc V8 Specific": 105,
    }

    def test_per_category_counts(self):
        model = api_model_from_table()
        dicts = DictionarySet()
        totals: dict[str, int] = {}
        for fn in model.tested_functions():
            matrix = build_matrix(fn, dicts)
            totals[fn.category] = totals.get(fn.category, 0) + matrix.total_combinations
        assert totals == self.EXPECTED

    def test_grand_total(self):
        assert sum(self.EXPECTED.values()) == 2864

    def test_category_ordering_matches_paper(self):
        """The per-category ranking must match Table III's."""
        paper = {
            "Memory Management": 991,
            "Inter-Partition Communication": 598,
            "Trace Management": 428,
            "Partition Management": 236,
            "Interrupt Management": 172,
            "Sparc V8 Specific": 88,
            "Health Monitor Management": 64,
            "Miscellaneous": 41,
            "Time Management": 34,
            "System Management": 8,
            "Plan Management": 2,
        }
        ours_sorted = sorted(self.EXPECTED, key=self.EXPECTED.get, reverse=True)
        paper_sorted = sorted(paper, key=paper.get, reverse=True)
        assert ours_sorted == paper_sorted
