"""Tests for the dry-run truth base and dictionary feedback loop."""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.dictionaries import DictionarySet
from repro.fault.feedback import (
    extend_dictionaries,
    feedback_report,
    offending_values,
    regression_dictionaries,
    value_effectiveness,
)
from repro.fault.truthbase import (
    TruthBase,
    build_truthbase,
    compare_to_truthbase,
)
from repro.xm.vulns import FIXED_VERSION

SCOPE = ("XM_reset_system", "XM_set_timer", "XM_multicall")


@pytest.fixture(scope="module")
def campaign():
    return Campaign(functions=SCOPE)


@pytest.fixture(scope="module")
def result(campaign):
    return campaign.run()


@pytest.fixture(scope="module")
def truthbase(campaign):
    return build_truthbase(campaign)


class TestTruthBase:
    def test_one_entry_per_test(self, campaign, truthbase):
        assert len(truthbase) == campaign.total_tests() == 62

    def test_entries_carry_documented_expectation(self, truthbase):
        entry = truthbase.lookup("XM_reset_system#0002")
        assert entry is not None
        assert entry.call == "XM_reset_system(2)"
        assert entry.describe_expected() == "XM_INVALID_PARAM"

    def test_no_return_entries(self, truthbase):
        entry = truthbase.lookup("XM_reset_system#0000")
        assert entry.allow_no_return
        assert "no return" in entry.describe_expected()

    def test_save_load_roundtrip(self, truthbase, tmp_path):
        path = tmp_path / "truth.jsonl"
        truthbase.save(path)
        loaded = TruthBase.load(path)
        assert loaded.kernel_version == truthbase.kernel_version
        assert len(loaded) == len(truthbase)
        assert loaded.lookup("XM_set_timer#0000") == truthbase.lookup(
            "XM_set_timer#0000"
        )

    def test_expected_error_share(self, truthbase):
        share = truthbase.expected_error_share()
        assert 0.0 < share < 1.0

    def test_divergences_almost_equal_failures(self, result, truthbase):
        """Return-code cross-checking (the paper's §VI dry run) sees all
        failures except the temporal-isolation break: that test returns
        a perfectly documented value while overrunning its slot.  Only
        the HM-aware classifier catches it — one reason the full
        pipeline beats pure return-code auditing."""
        divergences = {d.test_id for d in compare_to_truthbase(result, truthbase)}
        failures = {r.test_id for r, _e, _c in result.failures()}
        assert divergences <= failures
        invisible = failures - divergences
        assert len(invisible) == 1
        (test_id,) = invisible
        record = next(r for r in result.log if r.test_id == test_id)
        assert record.function == "XM_multicall"
        assert record.overruns > 0

    def test_fixed_kernel_has_no_divergences(self):
        campaign = Campaign(functions=SCOPE, kernel_version=FIXED_VERSION)
        base = build_truthbase(campaign)
        result = campaign.run()
        assert compare_to_truthbase(result, base) == []

    def test_divergence_content(self, result, truthbase):
        divergences = {d.test_id: d for d in compare_to_truthbase(result, truthbase)}
        crash = divergences["XM_set_timer#0021"]  # (EXEC_CLOCK, 1, 1)
        assert crash.observed == "simulator crash"


class TestFeedback:
    def test_effectiveness_covers_all_values(self, result):
        scored = value_effectiveness(result)
        assert scored
        # Every appearance is counted: totals match the test count
        # multiplied by arity per function.
        total_appearances = sum(v.tests for v in scored)
        assert total_appearances == 5 * 1 + 32 * 3 + 25 * 2

    def test_offending_values_subset(self, result):
        offending = offending_values(result)
        assert offending
        assert all(v.failures > 0 for v in offending)
        labels = {(v.dictionary, v.label) for v in offending}
        assert ("xm_u32_t", "2") in labels  # reset_system(2)

    def test_clean_campaign_has_no_offenders(self):
        clean = Campaign(functions=("XM_switch_sched_plan",)).run()
        assert offending_values(clean) == []

    def test_report_renders(self, result):
        text = feedback_report(result, top=5)
        assert "failures" in text
        assert len(text.splitlines()) == 7

    def test_extend_dictionaries_adds_offenders(self, result):
        bare = DictionarySet().without_valid_values()
        extended = extend_dictionaries(bare, result)
        # The stripped u32 dictionary regains the offending values.
        labels = extended.lookup("xm_u32_t").labels()
        assert "2" in labels and "16" in labels

    def test_extend_is_idempotent(self, result):
        base = DictionarySet()
        extended = extend_dictionaries(base, result)
        assert {
            name: d.labels() for name, d in extended.dictionaries.items()
        } == {name: d.labels() for name, d in base.dictionaries.items()}

    def test_regression_dictionaries_shrink_full_campaign(self, result):
        trimmed = regression_dictionaries(result)
        full = Campaign()
        regression = Campaign(dictionaries=trimmed)
        assert regression.total_tests() < full.total_tests() / 4

    def test_regression_campaign_still_finds_everything(self, result):
        regression = Campaign(
            functions=SCOPE, dictionaries=regression_dictionaries(result)
        )
        rerun = regression.run()
        found = {i.matched_vulnerability for i in rerun.issues}
        assert len(found) == 9

    def test_regression_on_fixed_kernel_clean(self, result):
        regression = Campaign(
            functions=SCOPE,
            dictionaries=regression_dictionaries(result),
            kernel_version=FIXED_VERSION,
        )
        assert regression.run().issue_count() == 0
